"""Deterministic fault injection for the execution runtime.

The fault-tolerance layer (checkpoint/resume, per-item retry) needs
reproducible failures to test against: a work item that dies on its
first attempt and succeeds on the retry, a worker that is killed
mid-sweep, a checkpoint file that arrives corrupted.  This module
expresses those as a declarative :class:`FaultPlan` — a list of
stateless :class:`FaultRule` records matched on *(item index, item
label, attempt number)* — so the same plan produces the same failures
on every backend and in every worker process.

Spec grammar (the CLI's ``--inject-faults`` and :func:`parse_fault_plan`)::

    SPEC    := RULE (';' RULE)*
    RULE    := KIND [':' FIELD (',' FIELD)*]
    KIND    := 'raise' | 'kill' | 'slow' | 'corrupt'
    FIELD   := 'item=' INT      -- match one work-item index
             | 'label=' GLOB    -- fnmatch pattern on the item label
             | 'attempt=' INT   -- fire only on that attempt number
             | 'times=' INT     -- fire while attempt < times (-1 = always)
             | 'seconds=' FLOAT -- sleep duration for 'slow'
             | 'exc=' NAME      -- 'fault' (default) | 'kill' | 'strict'

Examples::

    raise:item=2                     # item 2 fails its first attempt
    raise:item=2,times=-1            # item 2 fails every attempt
    kill:label=content:*,attempt=0   # every content solve dies once
    slow:item=1,seconds=0.05         # item 1 takes 50 ms longer
    corrupt:item=0                   # item 0's checkpoint is corrupted
    raise:item=0,exc=strict          # item 0 raises StrictNumericsError

Matching is **stateless**: a rule with ``times=1`` (the default) fires
when ``attempt == 0`` and never again, regardless of which process
re-executes the item — that is what makes transient-fault tests
deterministic across serial and process-pool backends.  The attempt
counter is threaded in by the retry loop of
:class:`~repro.runtime.resumable.ResumableExecutor`; plain executors
always run attempt 0.

Activation: :func:`install_faults` installs a plan in-process and (by
default) exports it via the ``REPRO_INJECT_FAULTS`` environment
variable so freshly spawned pool workers pick it up on their first
work item.  :func:`repro.runtime.plan.execute_item` consults
:func:`active_fault_plan` before running each item.
"""

from __future__ import annotations

import fnmatch
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

FAULT_ENV_VAR = "REPRO_INJECT_FAULTS"
"""Environment variable carrying the active fault spec to workers."""

FAULT_KINDS = ("raise", "kill", "slow", "corrupt")


class FaultSpecError(ValueError):
    """A fault spec string that does not parse."""


class InjectedFault(RuntimeError):
    """The transient failure raised by a ``raise`` rule."""


class WorkerKilled(InjectedFault):
    """Raised by a ``kill`` rule: simulates a worker dying mid-item.

    A subclass (not ``SystemExit``/``os._exit``) on purpose: a real
    process kill would take the whole ``ProcessPoolExecutor`` down as
    ``BrokenProcessPool``, which is unrecoverable by design — the
    retry/resume machinery treats any in-item exception as the worker
    loss it recovers from.
    """


@dataclass(frozen=True)
class FaultRule:
    """One stateless trigger inside a fault plan.

    ``attempt`` (exact match) takes precedence over ``times``
    (``attempt < times``); ``times=-1`` means every attempt.
    """

    kind: str
    item: Optional[int] = None
    label: Optional[str] = None
    attempt: Optional[int] = None
    times: int = 1
    seconds: float = 0.0
    exc: str = "fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.exc not in ("fault", "kill", "strict"):
            raise FaultSpecError(
                f"unknown exception name {self.exc!r}; expected fault/kill/strict"
            )
        if self.kind == "slow" and self.seconds < 0:
            raise FaultSpecError(f"slow seconds must be >= 0, got {self.seconds}")

    def matches(self, index: int, label: str, attempt: int) -> bool:
        if self.item is not None and index != self.item:
            return False
        if self.label is not None and not fnmatch.fnmatchcase(label, self.label):
            return False
        if self.attempt is not None:
            return attempt == self.attempt
        if self.times < 0:
            return True
        return attempt < self.times

    def build_exception(self, label: str, attempt: int) -> BaseException:
        detail = f"injected fault on {label or 'item'}[attempt {attempt}]"
        if self.kind == "kill" or self.exc == "kill":
            return WorkerKilled(detail)
        if self.exc == "strict":
            # Imported here to keep this module import-light; the
            # strict exception lives with the telemetry facade.
            from repro.obs.telemetry import StrictNumericsError

            return StrictNumericsError("injected", detail)
        return InjectedFault(detail)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules plus the spec that produced it."""

    rules: Tuple[FaultRule, ...]
    spec: str = ""

    def before_item(self, index: int, label: str, attempt: int = 0) -> None:
        """Apply every matching pre-execution rule for this attempt.

        ``slow`` rules sleep (all that match); the first matching
        ``raise``/``kill`` rule raises.  ``corrupt`` rules are not
        handled here — they fire in the checkpoint-save path via
        :meth:`corrupts`.
        """
        for rule in self.rules:
            if rule.kind == "slow" and rule.matches(index, label, attempt):
                time.sleep(rule.seconds)
        for rule in self.rules:
            if rule.kind in ("raise", "kill") and rule.matches(index, label, attempt):
                raise rule.build_exception(label, attempt)

    def corrupts(self, index: int, label: str) -> bool:
        """Whether a just-saved checkpoint for this item must be damaged."""
        return any(
            rule.kind == "corrupt" and rule.matches(index, label, 0)
            for rule in self.rules
        )


_INT_FIELDS = ("item", "attempt", "times")


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``--inject-faults`` spec string into a :class:`FaultPlan`.

    Raises :class:`FaultSpecError` on anything malformed — unknown
    kinds or fields, non-numeric values, empty clauses.
    """
    text = str(spec).strip()
    if not text:
        raise FaultSpecError("fault spec is empty")
    rules = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            raise FaultSpecError(f"empty fault clause in spec {spec!r}")
        kind, _, rest = clause.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        fields = {}
        if rest.strip():
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                key, value = key.strip().lower(), value.strip()
                if not sep or not key or not value:
                    raise FaultSpecError(
                        f"fault field {pair!r} in {clause!r} is not key=value"
                    )
                if key in _INT_FIELDS:
                    try:
                        fields[key] = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"fault field {key!r} needs an integer, got {value!r}"
                        ) from None
                elif key == "seconds":
                    try:
                        fields[key] = float(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"fault field 'seconds' needs a number, got {value!r}"
                        ) from None
                elif key in ("label", "exc"):
                    fields[key] = value
                else:
                    raise FaultSpecError(
                        f"unknown fault field {key!r} in {clause!r}"
                    )
        try:
            rules.append(FaultRule(kind=kind, **fields))
        except FaultSpecError:
            raise
        except TypeError as err:
            raise FaultSpecError(f"bad fault clause {clause!r}: {err}") from None
    return FaultPlan(rules=tuple(rules), spec=text)


# ----------------------------------------------------------------------
# Activation (process-global, worker-inherited)
# ----------------------------------------------------------------------
_UNSET = object()
_active = _UNSET  # _UNSET -> consult the environment once; None -> off


def install_faults(plan, export_env: bool = True) -> FaultPlan:
    """Activate a fault plan (spec string or :class:`FaultPlan`).

    With ``export_env`` the spec is also written to
    :data:`FAULT_ENV_VAR`, so process-pool workers spawned after this
    call inherit the same plan.
    """
    global _active
    if isinstance(plan, str):
        plan = parse_fault_plan(plan)
    _active = plan
    if export_env and plan.spec:
        os.environ[FAULT_ENV_VAR] = plan.spec
    return plan


def clear_faults() -> None:
    """Deactivate fault injection and drop the environment export."""
    global _active
    _active = None
    os.environ.pop(FAULT_ENV_VAR, None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The currently active plan, if any.

    First call in a fresh process (e.g. a pool worker) parses
    :data:`FAULT_ENV_VAR`; the result — including "nothing active" —
    is cached until :func:`install_faults`/:func:`clear_faults`.
    """
    global _active
    if _active is _UNSET:
        spec = os.environ.get(FAULT_ENV_VAR)
        _active = parse_fault_plan(spec) if spec else None
    return _active
