"""Tests for the Alg. 1 framework driver."""

import numpy as np
import pytest

from repro.content.catalog import ContentCatalog
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.core.solver import MFGCPSolver


class TestSingleContentSolve:
    def test_solve_delegates_to_best_response(self, fast_config):
        result = MFGCPSolver(fast_config).solve()
        assert result.report.converged
        assert result.config is fast_config


class TestPerContentConfig:
    def test_overrides(self, fast_config):
        solver = MFGCPSolver(fast_config)
        cfg = solver.per_content_config(
            content_size=60.0, popularity=0.4, timeliness=1.0, n_requests=8.0
        )
        assert cfg.content_size == 60.0
        assert cfg.popularity == 0.4
        assert cfg.n_requests == 8.0
        # Everything else inherited.
        assert cfg.w5 == fast_config.w5

    def test_popularity_clipped(self, fast_config):
        cfg = MFGCPSolver(fast_config).per_content_config(100.0, 1.7, 1.0, 5.0)
        assert cfg.popularity == 1.0


class TestEpochLoop:
    def make_inputs(self, n_contents=3, rate=40.0, seed=0):
        catalog = ContentCatalog.uniform(n_contents, size_mb=100.0)
        requests = RequestProcess(
            n_contents=n_contents,
            rate_per_edp=rate,
            timeliness_model=TimelinessModel(l_max=3.0),
            rng=np.random.default_rng(seed),
        )
        return catalog, requests

    def test_single_epoch(self, fast_config):
        catalog, requests = self.make_inputs()
        epochs = MFGCPSolver(fast_config).run_epochs(catalog, requests, n_epochs=1)
        assert len(epochs) == 1
        epoch = epochs[0]
        assert epoch.epoch == 0
        assert len(epoch.active_contents) >= 1
        for k in epoch.active_contents:
            assert epoch.equilibria[k].report.n_iterations >= 1
        assert epoch.popularity.shape == (3,)
        assert np.isfinite(epoch.total_utility())

    def test_active_contents_sorted_by_popularity(self, fast_config):
        catalog, requests = self.make_inputs()
        epoch = MFGCPSolver(fast_config).run_epochs(catalog, requests)[0]
        pops = [epoch.popularity[k] for k in epoch.active_contents]
        assert pops == sorted(pops, reverse=True)

    def test_max_active_contents_cap(self, fast_config):
        catalog, requests = self.make_inputs(rate=100.0)
        epoch = MFGCPSolver(fast_config).run_epochs(
            catalog, requests, max_active_contents=1
        )[0]
        assert len(epoch.active_contents) == 1

    def test_contents_without_requests_skipped(self, fast_config):
        catalog, requests = self.make_inputs(rate=0.0)
        epoch = MFGCPSolver(fast_config).run_epochs(catalog, requests)[0]
        assert epoch.active_contents == []
        assert epoch.total_utility() == 0.0

    def test_popularity_updates_across_epochs(self, fast_config):
        catalog, requests = self.make_inputs(rate=60.0, seed=1)
        epochs = MFGCPSolver(fast_config).run_epochs(
            catalog, requests, n_epochs=2, max_active_contents=1
        )
        # Eq. (3) keeps the vector a distribution each epoch.
        for epoch in epochs:
            assert epoch.popularity.sum() == pytest.approx(1.0)

    def test_validation(self, fast_config):
        catalog, requests = self.make_inputs()
        with pytest.raises(ValueError, match="n_epochs"):
            MFGCPSolver(fast_config).run_epochs(catalog, requests, n_epochs=0)
        bad_requests = RequestProcess(n_contents=5, rate_per_edp=1.0)
        with pytest.raises(ValueError, match="catalog"):
            MFGCPSolver(fast_config).run_epochs(catalog, bad_requests)

    @pytest.mark.parametrize("cap", [0, -1])
    def test_rejects_non_positive_active_cap(self, fast_config, cap):
        catalog, requests = self.make_inputs()
        with pytest.raises(ValueError, match="max_active_contents"):
            MFGCPSolver(fast_config).run_epochs(
                catalog, requests, max_active_contents=cap
            )


class TestEpochCapacityAllocation:
    @pytest.fixture(scope="class")
    def epoch(self):
        from repro.core.parameters import MFGCPConfig

        catalog = ContentCatalog.uniform(3, size_mb=100.0)
        requests = RequestProcess(
            n_contents=3,
            rate_per_edp=60.0,
            timeliness_model=TimelinessModel(l_max=3.0),
            rng=np.random.default_rng(2),
        )
        return MFGCPSolver(MFGCPConfig.fast()).run_epochs(catalog, requests)[0]

    def test_desired_occupancy_positive(self, epoch):
        occupancy = epoch.desired_occupancy()
        assert set(occupancy) == set(epoch.active_contents)
        assert all(v >= 1.0 for v in occupancy.values())

    def test_unconstrained_passthrough(self, epoch):
        desired = epoch.desired_occupancy()
        granted = epoch.capacity_allocation(capacity=1e9)
        assert granted == desired

    def test_tight_capacity_scales_down(self, epoch):
        desired = epoch.desired_occupancy()
        capacity = 0.5 * sum(desired.values())
        granted = epoch.capacity_allocation(capacity)
        assert sum(granted.values()) <= capacity + 1e-9
        assert any(granted[k] < desired[k] for k in desired)

    def test_values_nonnegative(self, epoch):
        assert all(v >= 0.0 for v in epoch.content_values().values())
