"""Tests for the forward FPK solver (Eq. (15))."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.best_response import build_grid
from repro.core.fpk import FPKSolver, initial_density
from repro.core.parameters import CachingParameters, ChannelParameters, MFGCPConfig


@pytest.fixture
def setup(fast_config):
    grid = build_grid(fast_config)
    return fast_config, grid, FPKSolver(fast_config, grid)


def constant_policy(grid, level):
    return np.full(grid.path_shape, level)


class TestInitialDensity:
    def test_unit_mass(self, setup):
        cfg, grid, _ = setup
        density = initial_density(grid, cfg)
        assert grid.integrate(density) == pytest.approx(1.0)

    def test_centered_at_configured_mean(self, setup):
        cfg, grid, _ = setup
        density = initial_density(grid, cfg)
        mean_q = grid.expectation(density, grid.q_mesh())
        target, _ = cfg.initial_density_moments()
        assert mean_q == pytest.approx(target, abs=2.0)

    def test_custom_moments(self, setup):
        cfg, grid, _ = setup
        density = initial_density(grid, cfg, mean_q=30.0, std_q=5.0)
        mean_q = grid.expectation(density, grid.q_mesh())
        assert mean_q == pytest.approx(30.0, abs=2.0)

    def test_rejects_bad_std(self, setup):
        cfg, grid, _ = setup
        with pytest.raises(ValueError, match="std_q"):
            initial_density(grid, cfg, std_q=0.0)


class TestForwardSweep:
    def test_mass_conserved_at_every_time(self, setup):
        cfg, grid, solver = setup
        path = solver.solve(constant_policy(grid, 0.5))
        for sheet in path:
            assert grid.integrate(sheet) == pytest.approx(1.0, abs=1e-9)

    def test_density_stays_nonnegative(self, setup):
        _, grid, solver = setup
        path = solver.solve(constant_policy(grid, 1.0))
        assert np.all(path >= 0.0)

    def test_caching_moves_mass_to_lower_q(self, setup):
        cfg, grid, solver = setup
        # Full caching has strongly negative drift in q.
        path = solver.solve(constant_policy(grid, 1.0))
        mean_start = grid.expectation(path[0], grid.q_mesh())
        mean_end = grid.expectation(path[-1], grid.q_mesh())
        assert mean_end < mean_start - 10.0

    def test_discarding_moves_mass_to_higher_q(self, setup):
        cfg, grid, solver = setup
        # Zero caching: the discard terms dominate and q grows.
        path = solver.solve(constant_policy(grid, 0.0))
        mean_start = grid.expectation(path[0], grid.q_mesh())
        mean_end = grid.expectation(path[-1], grid.q_mesh())
        assert mean_end > mean_start

    def test_mean_drift_matches_theory(self, fast_config):
        # With zero diffusion and a constant control, the mean of q
        # should move by drift * T (away from the boundaries).
        cfg = replace(
            fast_config,
            caching=CachingParameters(noise=1e-6),
            channel=ChannelParameters(volatility=0.2),
        )
        grid = build_grid(cfg)
        solver = FPKSolver(cfg, grid)
        density0 = initial_density(grid, cfg, mean_q=60.0, std_q=6.0)
        level = 0.5
        path = solver.solve(constant_policy(grid, level), density0)
        drift = float(cfg.drift_rate(np.array(level)))
        expected = 60.0 + drift * cfg.horizon
        mean_end = grid.expectation(path[-1], grid.q_mesh())
        # First-order upwind adds numerical diffusion; allow a few MB.
        assert mean_end == pytest.approx(expected, abs=4.0)

    def test_custom_initial_density_is_normalised(self, setup):
        cfg, grid, solver = setup
        raw = np.ones(grid.shape)
        path = solver.solve(constant_policy(grid, 0.5), density0=raw)
        assert grid.integrate(path[0]) == pytest.approx(1.0)

    def test_policy_shape_checked(self, setup):
        _, grid, solver = setup
        with pytest.raises(ValueError, match="policy table"):
            solver.solve(np.zeros((3, *grid.shape)))

    def test_substeps_positive(self, setup):
        _, _, solver = setup
        assert solver.substeps_per_interval() >= 1

    def test_h_marginal_stays_near_stationary(self, setup):
        cfg, grid, solver = setup
        path = solver.solve(constant_policy(grid, 0.5))
        mean_h_start = grid.expectation(path[0], grid.h_mesh())
        mean_h_end = grid.expectation(path[-1], grid.h_mesh())
        # The OU stationary start should stay near the long-term mean.
        assert mean_h_end == pytest.approx(mean_h_start, abs=0.3)
