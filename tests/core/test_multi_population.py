"""Tests for the multi-population (heterogeneous EDP classes) extension."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator
from repro.core.multi_population import MultiPopulationIterator
from repro.core.parameters import ChannelParameters, MFGCPConfig


def two_class_configs(fast_config):
    """Base stations (good channels, cheap storage) vs smartphones."""
    base_station = replace(
        fast_config,
        channel=ChannelParameters(bandwidth=18.0),
        w5=70.0,
    )
    smartphone = replace(
        fast_config,
        channel=ChannelParameters(bandwidth=10.0),
        w5=140.0,
    )
    return base_station, smartphone


class TestConstruction:
    def test_weights_validated(self, fast_config):
        with pytest.raises(ValueError, match="weights"):
            MultiPopulationIterator([fast_config], [0.5])
        with pytest.raises(ValueError, match="weights"):
            MultiPopulationIterator([fast_config, fast_config], [0.5])
        with pytest.raises(ValueError, match="weights"):
            MultiPopulationIterator([fast_config, fast_config], [1.5, -0.5])

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiPopulationIterator([], [])

    def test_market_fields_must_agree(self, fast_config):
        other = replace(fast_config, p_hat=0.9)
        with pytest.raises(ValueError, match="p_hat"):
            MultiPopulationIterator([fast_config, other], [0.5, 0.5])

    def test_non_market_fields_may_differ(self, fast_config):
        a, b = two_class_configs(fast_config)
        MultiPopulationIterator([a, b], [0.5, 0.5])  # no raise


class TestSingleClassReduction:
    def test_matches_single_population_solver(self, fast_config):
        multi = MultiPopulationIterator([fast_config], [1.0]).solve()
        single = BestResponseIterator(fast_config).solve()
        gap_q = np.max(
            np.abs(multi.market.mean_q - single.mean_field.mean_q)
        )
        gap_p = np.max(np.abs(multi.market.price - single.mean_field.price))
        assert gap_q < 1.0, gap_q
        assert gap_p < 0.01, gap_p
        assert multi.population_utility() == pytest.approx(
            single.accumulated_utility()["total"], rel=0.05
        )


class TestTwoClassEquilibrium:
    @pytest.fixture(scope="class")
    def result(self):
        a, b = two_class_configs(MFGCPConfig.fast())
        return MultiPopulationIterator([a, b], [0.3, 0.7]).solve()

    def test_converges(self, result):
        assert result.report.converged

    def test_shared_market_price_bounds(self, result):
        cfg = result.class_results[0].config
        assert np.all(result.market.price <= cfg.p_hat + 1e-9)
        assert np.all(result.market.price >= 0.0)

    def test_market_control_is_weighted_mixture(self, result):
        mixed = (
            0.3 * result.class_results[0].mean_field.mean_control
            + 0.7 * result.class_results[1].mean_field.mean_control
        )
        # Both class results carry the shared market, so compare against
        # the per-class density/policy integrals instead.
        per_class = [
            res.policy.mean_against(res.density) for res in result.class_results
        ]
        manual = 0.3 * per_class[0] + 0.7 * per_class[1]
        assert np.allclose(result.market.mean_control, manual, atol=1e-9)

    def test_cheap_storage_class_caches_more(self, result):
        # Base stations (lower w5) run a higher average caching rate.
        per_class = [
            res.policy.mean_against(res.density) for res in result.class_results
        ]
        assert per_class[0].mean() > per_class[1].mean()

    def test_cheap_storage_class_earns_more(self, result):
        assert result.class_utility(0) > result.class_utility(1)

    def test_population_utility_weighted(self, result):
        expected = 0.3 * result.class_utility(0) + 0.7 * result.class_utility(1)
        assert result.population_utility() == pytest.approx(expected)

    def test_densities_unit_mass(self, result):
        for res in result.class_results:
            grid = res.grid
            assert grid.integrate(res.density[-1]) == pytest.approx(1.0, abs=1e-9)

    def test_bad_bootstrap_rejected(self, fast_config):
        a, b = two_class_configs(fast_config)
        with pytest.raises(ValueError, match="policy level"):
            MultiPopulationIterator([a, b], [0.5, 0.5]).solve(
                initial_policy_level=2.0
            )
