"""Tests for the MFG-CP configuration."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.parameters import (
    CachingParameters,
    ChannelParameters,
    MFGCPConfig,
    PaperParameters,
)


class TestPaperParameters:
    def test_records_section_v_values(self):
        paper = PaperParameters()
        assert paper.n_contents == 20
        assert paper.n_edps == 300
        assert paper.w5 == 0.65e8
        assert paper.alpha == 0.2
        assert paper.content_size_mb == 100.0


class TestChannelParameters:
    def test_process_round_trip(self):
        ch = ChannelParameters()
        ou = ch.process()
        assert ou.reversion == ch.reversion
        assert ou.mean == ch.mean

    def test_rate_positive_over_fading_range(self):
        ch = ChannelParameters()
        h = np.linspace(1.0, 10.0, 20)
        rates = ch.rate_of_fading(h)
        assert np.all(rates > 0)
        assert np.all(np.diff(rates) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelParameters(reversion=0.0)
        with pytest.raises(ValueError):
            ChannelParameters(bandwidth=0.0)
        with pytest.raises(ValueError):
            ChannelParameters(mean_distance=0.0)


class TestCachingParameters:
    def test_drift_object(self):
        drift = CachingParameters().drift()
        assert drift.w1 == 1.0


class TestMFGCPConfig:
    def test_paper_default_valid(self):
        cfg = MFGCPConfig.paper_default()
        assert cfg.content_size == 100.0
        assert cfg.alpha == 0.2
        assert cfg.horizon == 1.0

    def test_fast_is_coarser(self):
        fast = MFGCPConfig.fast()
        full = MFGCPConfig.paper_default()
        assert fast.n_h <= full.n_h
        assert fast.n_q <= full.n_q

    def test_without_sharing(self):
        cfg = MFGCPConfig.fast().without_sharing()
        assert cfg.include_sharing is False
        assert cfg.economic_parameters().include_sharing is False

    def test_with_content_size(self):
        cfg = MFGCPConfig.fast().with_content_size(60.0)
        assert cfg.content_size == 60.0

    def test_derived_objects(self):
        cfg = MFGCPConfig.fast()
        assert cfg.pricing_model().p_hat == cfg.p_hat
        assert cfg.case_probabilities().alpha == cfg.alpha
        assert cfg.utility_model().content_size == cfg.content_size
        assert cfg.ou_process().mean == cfg.channel.mean

    def test_drift_rate_uses_epoch_demand(self):
        cfg = MFGCPConfig.fast()
        drift = cfg.drift_rate(np.array(0.5))
        manual = cfg.content_size * cfg.caching_drift().rate(
            0.5, cfg.popularity, cfg.timeliness
        )
        assert float(drift) == pytest.approx(float(manual))

    def test_initial_density_moments(self):
        cfg = MFGCPConfig.fast()
        mean, std = cfg.initial_density_moments()
        assert mean == pytest.approx(0.7 * cfg.content_size)
        assert std == pytest.approx(0.1 * cfg.content_size)

    def test_time_axis(self):
        cfg = MFGCPConfig.fast()
        t = cfg.time_axis()
        assert t.shape == (cfg.n_time_steps + 1,)
        assert t[0] == 0.0 and t[-1] == cfg.horizon

    def test_n_requests_at_constant_by_default(self):
        cfg = MFGCPConfig.fast()
        assert float(cfg.n_requests_at(0.7)) == cfg.n_requests

    def test_n_requests_at_decays(self):
        cfg = replace(MFGCPConfig.fast(), demand_decay=1.0)
        assert float(cfg.n_requests_at(0.0)) == pytest.approx(cfg.n_requests)
        assert float(cfg.n_requests_at(1.0)) == pytest.approx(
            cfg.n_requests * np.exp(-1.0)
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("horizon", 0.0),
            ("n_time_steps", 0),
            ("content_size", 0.0),
            ("n_h", 2),
            ("n_edps", 0),
            ("popularity", 1.5),
            ("initial_mean_fraction", 1.0),
            ("initial_std_fraction", 0.0),
            ("max_iterations", 0),
            ("tolerance", 0.0),
            ("damping", 0.0),
            ("sharer_capacity", 0),
            ("demand_decay", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            replace(MFGCPConfig.fast(), **{field: value})

    def test_economic_parameters_flags(self):
        cfg = replace(MFGCPConfig.fast(), include_trading=False)
        assert cfg.economic_parameters().include_trading is False
