"""Tests for the stationary (infinite-horizon) MFG solver."""

import numpy as np
import pytest

from repro.core.parameters import MFGCPConfig
from repro.core.stationary import StationarySolver
from repro.economics.utility import MarketContext


@pytest.fixture(scope="module")
def stationary_result():
    return StationarySolver(MFGCPConfig.fast(), discount=1.0).solve()


class TestStationarySolve:
    def test_converges(self, stationary_result):
        assert stationary_result.converged
        assert stationary_result.n_iterations >= 1

    def test_density_is_invariant(self, stationary_result):
        res = stationary_result
        solver = StationarySolver(res.config, discount=1.0, grid=res.grid)
        drift_q = res.config.drift_rate(res.policy)
        dt = res.grid.dt / solver._fpk.substeps_per_interval()
        stepped = solver._fpk._step(res.density, drift_q, dt)
        assert np.max(np.abs(stepped - res.density)) < 1e-5

    def test_density_unit_mass(self, stationary_result):
        res = stationary_result
        assert res.grid.integrate(res.density) == pytest.approx(1.0, abs=1e-9)

    def test_policy_feasible(self, stationary_result):
        assert np.all(stationary_result.policy >= 0.0)
        assert np.all(stationary_result.policy <= 1.0)

    def test_population_fully_cached(self, stationary_result):
        # With an infinite horizon the population caches down to near
        # zero remaining space and maintains it.
        assert stationary_result.mean_q < 10.0

    def test_maintenance_caching_at_low_q(self, stationary_result):
        # The policy at the cached boundary offsets the discard drift:
        # x ~ x_balance = (w3 xi^L - w2 Pi) / w1 (clipped).
        res = stationary_result
        drift = res.config.caching_drift()
        balance = float(
            drift.equilibrium_control(res.config.popularity, res.config.timeliness)
        )
        boundary_policy = float(res.policy[res.grid.n_h // 2, 0])
        assert boundary_policy == pytest.approx(balance, abs=0.15)

    def test_no_terminal_decay(self, stationary_result):
        # Unlike the finite-horizon policy (x* -> 0 at T), the
        # stationary policy keeps caching active somewhere.
        assert stationary_result.policy.max() > 0.05

    def test_price_consistent_with_control(self, stationary_result):
        res = stationary_result
        cfg = res.config
        expected = cfg.p_hat - cfg.eta1 * cfg.content_size * res.mean_control
        assert res.price == pytest.approx(expected, abs=1e-6)

    def test_utility_rate_positive(self, stationary_result):
        assert stationary_result.utility_rate() > 0.0


class TestDiscountEffects:
    def test_higher_discount_lowers_value(self):
        cfg = MFGCPConfig.fast()
        patient = StationarySolver(cfg, discount=1.0).solve()
        impatient = StationarySolver(cfg, discount=4.0).solve()
        # The discounted value integrates the same utility stream, so
        # heavier discounting shrinks its magnitude.
        assert np.abs(impatient.value).max() < np.abs(patient.value).max()

    def test_rejects_nonpositive_discount(self):
        with pytest.raises(ValueError, match="discount"):
            StationarySolver(MFGCPConfig.fast(), discount=0.0)


class TestInnerSolvers:
    def test_value_iteration_constant_utility(self):
        # With rho V = c the fixed point is V = c / rho; verify against
        # a market context that zeroes the q dependence as much as the
        # model allows by checking the residual equation instead.
        cfg = MFGCPConfig.fast()
        solver = StationarySolver(cfg, discount=2.0)
        ctx = MarketContext(
            n_requests=cfg.n_requests, price=0.6, q_other=50.0, sharing_benefit=0.0
        )
        value, control = solver.value_iteration(ctx)
        # Stationarity: the discounted HJB residual is ~0.
        rhs, _ = solver._hjb._step_rhs(value, ctx)
        residual = rhs - 2.0 * value
        assert np.max(np.abs(residual)) < 1e-2 * (1 + np.abs(value).max())
        assert np.all(control >= 0.0)
