"""Tests for the equilibrium result containers and diagnostics."""

import numpy as np
import pytest

from repro.core.equilibrium import ConvergenceReport, IterationRecord


class TestIterationRecord:
    def test_valid(self):
        rec = IterationRecord(
            iteration=1, policy_change=0.5, mean_field_change=0.1,
            mean_price=0.6, mean_control=0.4,
        )
        assert rec.iteration == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="iteration"):
            IterationRecord(-1, 0.1, 0.1, 0.5, 0.5)
        with pytest.raises(ValueError, match="policy_change"):
            IterationRecord(1, -0.1, 0.1, 0.5, 0.5)


class TestConvergenceReport:
    def make(self, changes):
        history = [
            IterationRecord(i + 1, c, 0.0, 0.5, 0.5) for i, c in enumerate(changes)
        ]
        return ConvergenceReport(
            converged=True,
            n_iterations=len(changes),
            final_policy_change=changes[-1],
            history=history,
        )

    def test_contraction_ratios_geometric(self):
        report = self.make([1.0, 0.5, 0.25, 0.125])
        assert np.allclose(report.contraction_ratios, 0.5)

    def test_contraction_ratios_short_history(self):
        report = self.make([1.0])
        assert report.contraction_ratios.size == 0

    def test_describe(self):
        report = self.make([1.0, 0.1])
        text = report.describe()
        assert "converged" in text
        assert "2 iterations" in text

    def test_describe_not_converged(self):
        report = ConvergenceReport(
            converged=False, n_iterations=3, final_policy_change=0.5, history=[]
        )
        assert "NOT converged" in report.describe()


class TestEquilibriumResult:
    def test_marginal_q_path_shape(self, solved_equilibrium):
        res = solved_equilibrium
        marginal = res.marginal_q_path()
        assert marginal.shape == (res.grid.n_t + 1, res.grid.n_q)
        assert np.all(marginal >= 0.0)

    def test_mean_remaining_space_matches_density(self, solved_equilibrium):
        res = solved_equilibrium
        manual = res.grid.expectation(res.density[0], res.grid.q_mesh())
        assert res.mean_remaining_space()[0] == pytest.approx(manual, rel=1e-9)

    def test_density_at_returns_copy(self, solved_equilibrium):
        res = solved_equilibrium
        sheet = res.density_at(0.0)
        sheet[:] = 0.0
        assert res.density[0].max() > 0.0

    def test_population_utility_identity(self, solved_equilibrium):
        paths = solved_equilibrium.population_utility_path()
        manual = (
            paths["trading_income"]
            + paths["sharing_benefit"]
            - paths["placement_cost"]
            - paths["staleness_cost"]
            - paths["sharing_cost"]
        )
        assert np.allclose(paths["total"], manual, atol=1e-9)

    def test_accumulated_utility_keys(self, solved_equilibrium):
        acc = solved_equilibrium.accumulated_utility()
        assert set(acc) == {
            "trading_income",
            "sharing_benefit",
            "placement_cost",
            "staleness_cost",
            "sharing_cost",
            "total",
        }
        assert acc["placement_cost"] >= 0.0
        assert acc["staleness_cost"] >= 0.0

    def test_mean_state_trajectory_bounded(self, solved_equilibrium):
        res = solved_equilibrium
        path = res.mean_state_trajectory(70.0)
        assert path.shape == (res.grid.n_t + 1,)
        assert path[0] == 70.0
        assert np.all(path >= 0.0)
        assert np.all(path <= res.config.content_size)

    def test_state_utility_rate_path_shape(self, solved_equilibrium):
        res = solved_equilibrium
        series = res.state_utility_rate_path(70.0)
        assert series.shape == (res.grid.n_t + 1,)
        assert np.all(np.isfinite(series))

    def test_state_utility_path_terminal_zero(self, solved_equilibrium):
        res = solved_equilibrium
        series = res.state_utility_path(70.0)
        # V(T) = 0 along any trajectory.
        assert series[-1] == pytest.approx(0.0, abs=1e-9)

    def test_cached_start_beats_empty_start(self, solved_equilibrium):
        res = solved_equilibrium
        v_cached = res.state_utility_path(20.0)[0]
        v_empty = res.state_utility_path(95.0)[0]
        assert v_cached > v_empty
