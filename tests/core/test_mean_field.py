"""Tests for the mean-field estimator (Section IV-B)."""

import numpy as np
import pytest

from repro.core.best_response import build_grid
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.parameters import MFGCPConfig


@pytest.fixture
def setup(fast_config):
    grid = build_grid(fast_config)
    return fast_config, grid, MeanFieldEstimator(fast_config, grid)


def uniform_density_path(grid):
    sheet = grid.normalize(np.ones(grid.shape))
    return np.tile(sheet, (grid.n_t + 1, 1, 1))


class TestEstimate:
    def test_mean_q_of_uniform_density(self, setup):
        cfg, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        # E[q] under the uniform law is Q/2.
        assert np.allclose(mf.mean_q, cfg.content_size / 2, rtol=0.02)

    def test_mean_control_matches_policy_level(self, setup):
        _, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.37)
        )
        assert np.allclose(mf.mean_control, 0.37, rtol=1e-6)

    def test_price_follows_eq17(self, setup):
        cfg, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        expected = cfg.p_hat - cfg.eta1 * cfg.content_size * 0.5
        assert np.allclose(mf.price, expected, rtol=1e-6)

    def test_qualified_fraction_of_uniform(self, setup):
        cfg, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        # Under the uniform law the sub-threshold mass is ~alpha.
        assert np.allclose(mf.qualified_fraction, cfg.alpha, atol=0.05)
        assert np.allclose(
            mf.case3_fraction, (1 - mf.qualified_fraction) ** 2, atol=1e-9
        )

    def test_sharing_disabled_zero_benefit(self, fast_config):
        cfg = fast_config.without_sharing()
        grid = build_grid(cfg)
        estimator = MeanFieldEstimator(cfg, grid)
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        assert np.all(mf.sharing_benefit == 0.0)

    def test_transfer_is_partial_expectation_gap(self, setup):
        cfg, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        q = grid.q_mesh()
        weights = grid.cell_weights()
        density = uniform_density_path(grid)[0]
        low = ((q <= cfg.alpha * cfg.content_size) * q * density * weights).sum()
        high = ((q > cfg.alpha * cfg.content_size) * q * density * weights).sum()
        assert mf.mean_transfer[0] == pytest.approx(abs(low - high), rel=1e-6)

    def test_shape_validation(self, setup):
        _, grid, estimator = setup
        good = uniform_density_path(grid)
        with pytest.raises(ValueError, match="density"):
            estimator.estimate(good[:2], np.full(grid.path_shape, 0.5))
        with pytest.raises(ValueError, match="policy"):
            estimator.estimate(good, np.full((2, 2), 0.5))


class TestMeanFieldPath:
    def test_context_round_trip(self, setup):
        cfg, grid, estimator = setup
        mf = estimator.estimate(
            uniform_density_path(grid), np.full(grid.path_shape, 0.5)
        )
        ctx = mf.context(0)
        assert ctx.price == pytest.approx(float(mf.price[0]))
        assert ctx.q_other == pytest.approx(float(mf.mean_q[0]))
        assert ctx.n_requests == pytest.approx(cfg.n_requests)

    def test_context_index_bounds(self, setup):
        _, grid, estimator = setup
        mf = estimator.constant_guess()
        with pytest.raises(IndexError):
            mf.context(grid.n_t + 1)
        with pytest.raises(IndexError):
            mf.context(-1)

    def test_distance_zero_to_self(self, setup):
        _, _, estimator = setup
        mf = estimator.constant_guess()
        assert mf.distance(mf) == 0.0

    def test_distance_detects_changes(self, setup):
        from dataclasses import replace

        _, grid, estimator = setup
        mf = estimator.constant_guess()
        moved = replace(mf, mean_q=mf.mean_q + 5.0)
        assert mf.distance(moved) == pytest.approx(5.0)

    def test_scalar_requests_broadcast(self, setup):
        _, grid, _ = setup
        n = grid.n_t + 1
        mf = MeanFieldPath(
            grid=grid,
            n_requests=5.0,
            mean_control=np.zeros(n),
            price=np.zeros(n),
            mean_q=np.zeros(n),
            mean_transfer=np.zeros(n),
            sharing_benefit=np.zeros(n),
            qualified_fraction=np.zeros(n),
            case3_fraction=np.zeros(n),
        )
        assert mf.n_requests.shape == (n,)

    def test_wrong_length_rejected(self, setup):
        _, grid, _ = setup
        n = grid.n_t + 1
        with pytest.raises(ValueError, match="price"):
            MeanFieldPath(
                grid=grid,
                n_requests=5.0,
                mean_control=np.zeros(n),
                price=np.zeros(n - 1),
                mean_q=np.zeros(n),
                mean_transfer=np.zeros(n),
                sharing_benefit=np.zeros(n),
                qualified_fraction=np.zeros(n),
                case3_fraction=np.zeros(n),
            )

    def test_constant_guess_price_consistent(self, setup):
        cfg, _, estimator = setup
        mf = estimator.constant_guess(mean_control=0.5)
        expected = cfg.p_hat - cfg.eta1 * cfg.content_size * 0.5
        assert np.allclose(mf.price, expected)

    def test_demand_decay_enters_requests(self, fast_config):
        from dataclasses import replace as dc_replace

        cfg = dc_replace(fast_config, demand_decay=1.0)
        grid = build_grid(cfg)
        mf = MeanFieldEstimator(cfg, grid).constant_guess()
        assert mf.n_requests[0] > mf.n_requests[-1]
