"""Tests for the numerical verification of Lemmas 1-2 and Theorem 2."""

import numpy as np
import pytest

from repro.core import theory
from repro.core.best_response import build_grid
from repro.core.parameters import MFGCPConfig


class TestLemma1:
    def test_hypotheses_hold_for_default_config(self, fast_config):
        report = theory.verify_lemma1(fast_config)
        assert report.satisfied
        assert report.control_space_compact

    def test_drift_lipschitz_is_half_reversion(self, fast_config):
        report = theory.verify_lemma1(fast_config)
        assert report.drift_lipschitz == pytest.approx(
            0.5 * fast_config.channel.reversion
        )

    def test_drift_bound_dominates_components(self, fast_config):
        report = theory.verify_lemma1(fast_config)
        # DF2 at full caching already gives |drift| ~ Q*(w1 - c).
        df2_max = abs(float(fast_config.drift_rate(np.array(1.0))))
        assert report.drift_bound >= df2_max

    def test_bounds_positive_and_finite(self, fast_config):
        report = theory.verify_lemma1(fast_config)
        for value in (
            report.drift_bound,
            report.utility_bound,
            report.utility_gradient_bound,
        ):
            assert np.isfinite(value)
            assert value > 0.0

    def test_reuses_supplied_grid(self, fast_config):
        grid = build_grid(fast_config)
        report = theory.verify_lemma1(fast_config, grid=grid)
        assert report.satisfied

    def test_rejects_too_few_controls(self, fast_config):
        with pytest.raises(ValueError, match="control samples"):
            theory.verify_lemma1(fast_config, n_controls=1)


class TestLemma2:
    def test_coefficients_match_eq25(self, fast_config):
        report = theory.verify_lemma2(fast_config)
        expected = (
            0.5 * fast_config.channel.volatility**2
            + 0.5 * fast_config.caching.noise**2
        )
        assert report.a_diagonal == pytest.approx(expected)
        assert report.a_symmetric
        assert report.c_inf_norm == 0.0
        assert report.d_l2_norm == 0.0

    def test_satisfied_for_default_config(self, fast_config):
        assert theory.verify_lemma2(fast_config).satisfied

    def test_b_bound_comes_from_lemma1(self, fast_config):
        lemma1 = theory.verify_lemma1(fast_config)
        lemma2 = theory.verify_lemma2(fast_config)
        assert lemma2.b_inf_norm == pytest.approx(lemma1.drift_bound)


class TestTheorem2:
    def test_contraction_observed_on_solved_equilibrium(self, solved_equilibrium):
        report = theory.verify_theorem2(solved_equilibrium)
        assert report.converged
        assert report.contraction_observed
        assert report.empirical_contraction_rate < 1.0

    def test_rate_matches_history(self, solved_equilibrium):
        from repro.analysis.convergence import fixed_point_rate

        report = theory.verify_theorem2(solved_equilibrium)
        assert report.empirical_contraction_rate == pytest.approx(
            fixed_point_rate(solved_equilibrium.report)
        )

    def test_iterations_recorded(self, solved_equilibrium):
        report = theory.verify_theorem2(solved_equilibrium)
        assert report.n_iterations == solved_equilibrium.report.n_iterations
