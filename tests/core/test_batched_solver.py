"""Tests for the batched (content-axis) HJB–FPK pipeline.

The batched solvers promise *bit-identity* with the scalar path: every
batched operation is elementwise along the leading content axis and
replays the scalar solvers' floating-point operation order, so a lane
pulled out of a batch must match a scalar solve of that lane alone
exactly — values, densities, policies, and iteration histories.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.best_response import (
    BatchedBestResponseIterator,
    BestResponseIterator,
    build_grid,
)
from repro.core.fpk import BatchedFPKSolver, FPKSolver, batched_initial_density, initial_density
from repro.core.grid import BatchGrid
from repro.core.hjb import BatchedHJBSolver, HJBSolver, validate_shared_lane_params
from repro.core.mean_field import MeanFieldEstimator
from repro.core.operators import (
    batched_central_gradient,
    batched_conservative_advection,
    batched_conservative_diffusion,
    batched_second_derivative,
    batched_upwind_gradient,
    central_gradient,
    conservative_advection,
    conservative_diffusion,
    second_derivative,
    upwind_gradient,
)
from repro.core.parameters import MFGCPConfig
from repro.obs.telemetry import SolverTelemetry, StrictNumericsError


def tiny_config(**overrides):
    base = replace(
        MFGCPConfig.fast(), n_time_steps=12, n_h=5, n_q=11, max_iterations=15
    )
    return replace(base, **overrides)


def lane_configs():
    """Heterogeneous lanes: sizes, popularity, timeliness, demand vary.

    The last lane (large content, heavy demand) needs more best-response
    iterations than the others, so the convergence mask is exercised.
    """
    specs = [
        dict(content_size=4.0, popularity=0.9, timeliness=1.2, n_requests=25.0),
        dict(content_size=8.0, popularity=0.5, timeliness=2.0, n_requests=10.0),
        dict(content_size=20.0, popularity=0.3, timeliness=2.5, n_requests=40.0),
    ]
    return [tiny_config(**spec) for spec in specs]


class TestBatchedOperators:
    """Each batched stencil must equal the scalar stencil per lane."""

    @pytest.fixture()
    def fields(self):
        rng = np.random.default_rng(11)
        fields = rng.normal(size=(3, 6, 9))
        velocity = rng.normal(size=(3, 6, 9))
        spacing = np.array([0.2, 0.5, 1.3])
        return fields, velocity, spacing

    @pytest.mark.parametrize("axis", [0, 1])
    def test_upwind_gradient(self, fields, axis):
        f, v, s = fields
        out = batched_upwind_gradient(f, s, v, axis=axis)
        for b in range(3):
            expected = upwind_gradient(f[b], float(s[b]), v[b], axis=axis)
            assert np.array_equal(out[b], expected)

    @pytest.mark.parametrize("axis", [0, 1])
    def test_central_gradient(self, fields, axis):
        f, _, s = fields
        out = batched_central_gradient(f, s, axis=axis)
        for b in range(3):
            assert np.array_equal(
                out[b], central_gradient(f[b], float(s[b]), axis=axis)
            )

    @pytest.mark.parametrize("axis", [0, 1])
    def test_second_derivative(self, fields, axis):
        f, _, s = fields
        out = batched_second_derivative(f, s, axis=axis)
        for b in range(3):
            assert np.array_equal(
                out[b], second_derivative(f[b], float(s[b]), axis=axis)
            )

    @pytest.mark.parametrize("axis", [0, 1])
    def test_conservative_advection(self, fields, axis):
        f, v, s = fields
        density = np.abs(f)
        out = batched_conservative_advection(density, v, s, axis=axis)
        for b in range(3):
            expected = conservative_advection(
                density[b], v[b], float(s[b]), axis=axis
            )
            assert np.array_equal(out[b], expected)

    @pytest.mark.parametrize("axis", [0, 1])
    def test_conservative_diffusion(self, fields, axis):
        f, _, s = fields
        out = batched_conservative_diffusion(f, 0.37, s, axis=axis)
        for b in range(3):
            expected = conservative_diffusion(f[b], 0.37, float(s[b]), axis=axis)
            assert np.array_equal(out[b], expected)

    def test_shared_scalar_spacing_accepted(self, fields):
        f, _, s = fields
        out = batched_central_gradient(f, 0.4, axis=0)
        for b in range(3):
            assert np.array_equal(out[b], central_gradient(f[b], 0.4, axis=0))

    def test_rejects_non_batched_rank(self):
        with pytest.raises(ValueError, match="3-D"):
            batched_central_gradient(np.zeros((4, 5)), 0.1, axis=0)


class TestBatchGrid:
    def test_from_grids_stacks_lanes(self):
        configs = lane_configs()
        grids = [build_grid(cfg) for cfg in configs]
        batch = BatchGrid.from_grids(grids)
        assert batch.n_lanes == 3
        assert batch.shape == (3, grids[0].n_h, grids[0].n_q)
        for b, grid in enumerate(grids):
            lane = batch.lane(b)
            assert np.array_equal(lane.t, grid.t)
            assert np.array_equal(lane.h, grid.h)
            assert np.array_equal(lane.q, grid.q)

    def test_from_grids_rejects_mismatched_time_axes(self):
        configs = lane_configs()
        grids = [build_grid(configs[0]), build_grid(replace(configs[1], n_time_steps=9))]
        with pytest.raises(ValueError, match="different time axis"):
            BatchGrid.from_grids(grids)

    def test_integrate_matches_per_lane(self):
        grids = [build_grid(cfg) for cfg in lane_configs()]
        batch = BatchGrid.from_grids(grids)
        rng = np.random.default_rng(5)
        fields = rng.random(batch.shape)
        masses = batch.integrate(fields)
        for b, grid in enumerate(grids):
            assert masses[b] == grid.integrate(fields[b])

    def test_select_subsets_lanes(self):
        batch = BatchGrid.from_grids([build_grid(cfg) for cfg in lane_configs()])
        sub = batch.select(np.array([2, 0]))
        assert sub.n_lanes == 2
        assert np.array_equal(sub.q[0], batch.q[2])
        assert np.array_equal(sub.q[1], batch.q[0])

    def test_normalize_zero_mass_names_content(self):
        batch = BatchGrid.from_grids([build_grid(cfg) for cfg in lane_configs()])
        density = np.ones(batch.shape)
        density[1] = 0.0
        with pytest.raises(ValueError, match="content 42"):
            batch.normalize(density, content_ids=[7, 42, 9])


class TestBatchedSweeps:
    """One batched sweep == N scalar sweeps, bit for bit."""

    @pytest.fixture(scope="class")
    def setup(self):
        configs = lane_configs()
        grids = [build_grid(cfg) for cfg in configs]
        batch = BatchGrid.from_grids(grids)
        mean_fields = [
            MeanFieldEstimator(cfg, grid).constant_guess()
            for cfg, grid in zip(configs, grids)
        ]
        return configs, grids, batch, mean_fields

    def test_hjb_backward_sweep_bit_identical(self, setup):
        configs, grids, batch, mean_fields = setup
        values, policies = BatchedHJBSolver(configs, batch).solve(mean_fields)
        for b, (cfg, grid) in enumerate(zip(configs, grids)):
            solution = HJBSolver(cfg, grid).solve(mean_fields[b])
            assert np.array_equal(values[b], solution.value)
            assert np.array_equal(policies[b], solution.policy.table)

    def test_fpk_forward_sweep_bit_identical(self, setup):
        configs, grids, batch, _ = setup
        policy = np.full(batch.path_shape, 0.4)
        paths = BatchedFPKSolver(configs, batch).solve(policy)
        for b, (cfg, grid) in enumerate(zip(configs, grids)):
            expected = FPKSolver(cfg, grid).solve(policy[b])
            assert np.array_equal(paths[b], expected)

    def test_batched_initial_density_matches_scalar(self, setup):
        configs, grids, batch, _ = setup
        stacked = batched_initial_density(batch, configs)
        for b, (cfg, grid) in enumerate(zip(configs, grids)):
            assert np.array_equal(stacked[b], initial_density(grid, cfg))

    def test_lane_subset_solve(self, setup):
        configs, grids, batch, mean_fields = setup
        hjb = BatchedHJBSolver(configs, batch)
        lanes = np.array([0, 2])
        values, policies = hjb.solve(
            [mean_fields[0], mean_fields[2]], lanes=lanes
        )
        full_values, full_policies = hjb.solve(mean_fields)
        assert np.array_equal(values, full_values[lanes])
        assert np.array_equal(policies, full_policies[lanes])

    def test_shared_param_validation_rejects_economics_mismatch(self):
        configs = lane_configs()
        configs[1] = replace(configs[1], eta2=configs[1].eta2 * 2)
        with pytest.raises(ValueError, match="economic parameters"):
            validate_shared_lane_params(configs)


class TestBatchedBestResponse:
    @pytest.fixture(scope="class")
    def solved(self):
        configs = lane_configs()
        batched = BatchedBestResponseIterator(configs).solve()
        solo = [BestResponseIterator(cfg).solve() for cfg in configs]
        return configs, batched, solo

    def test_bit_identical_to_solo_solves(self, solved):
        _, batched, solo = solved
        for rb, rs in zip(batched, solo):
            assert np.array_equal(rb.value, rs.value)
            assert np.array_equal(rb.policy.table, rs.policy.table)
            assert np.array_equal(rb.density, rs.density)
            assert rb.report.converged == rs.report.converged
            assert rb.report.n_iterations == rs.report.n_iterations
            assert (
                rb.report.final_policy_change == rs.report.final_policy_change
            )

    def test_iteration_histories_identical(self, solved):
        _, batched, solo = solved
        for rb, rs in zip(batched, solo):
            assert len(rb.report.history) == len(rs.report.history)
            for hb, hs in zip(rb.report.history, rs.report.history):
                assert hb.policy_change == hs.policy_change
                assert hb.mean_field_change == hs.mean_field_change
                assert hb.mean_price == hs.mean_price
                assert hb.mean_control == hs.mean_control

    def test_masked_lane_is_bit_frozen(self, solved):
        # Lanes converge at different iterations; a lane that left the
        # batch early must carry exactly the state from its own last
        # iteration — bit-equal to the solo solve — even though other
        # lanes kept iterating afterwards.
        _, batched, solo = solved
        iteration_counts = [r.report.n_iterations for r in batched]
        assert len(set(iteration_counts)) > 1, (
            "test needs heterogeneous convergence orders; "
            f"got {iteration_counts}"
        )
        early = int(np.argmin(iteration_counts))
        assert np.array_equal(batched[early].value, solo[early].value)
        assert np.array_equal(batched[early].density, solo[early].density)
        assert np.array_equal(
            batched[early].policy.table, solo[early].policy.table
        )

    def test_rejects_mismatched_iteration_controls(self):
        configs = lane_configs()
        configs[1] = replace(configs[1], tolerance=configs[1].tolerance / 2)
        with pytest.raises(ValueError, match="iteration controls"):
            BatchedBestResponseIterator(configs)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="zero configs"):
            BatchedBestResponseIterator([])

    def test_rejects_content_id_count_mismatch(self):
        with pytest.raises(ValueError, match="content ids"):
            BatchedBestResponseIterator(lane_configs(), content_ids=[1, 2])


class TestPerLaneDiagnostics:
    def test_all_probes_emit_per_lane_events(self):
        configs = lane_configs()
        telemetry = SolverTelemetry.buffered()
        BatchedBestResponseIterator(
            configs, content_ids=[11, 22, 33], telemetry=telemetry
        ).solve()
        lanes_by_check = {}
        for event in telemetry.sink.events:
            if event["ev"].startswith("diag."):
                lanes_by_check.setdefault(event["ev"], set()).add(
                    event.get("content")
                )
        for check in (
            "diag.fpk.mass_drift",
            "diag.density.health",
            "diag.hjb.residual",
            "diag.cfl.margin",
            "diag.exploitability",
            "diag.exploitability.trend",
        ):
            assert lanes_by_check.get(check) == {11, 22, 33}, check

    def test_strict_numerics_failure_names_content(self):
        # A lane-tagged telemetry escalation must say which content
        # lane tripped the check, so a batched abort is actionable.
        from repro.core.best_response import _LaneTelemetry

        telemetry = SolverTelemetry.buffered()
        telemetry.strict_numerics = True
        lane = _LaneTelemetry(telemetry, content=33)
        with pytest.raises(StrictNumericsError, match="content 33"):
            lane.diag("unit.check", "error", value=1.0, message="boom")
        events = [
            e for e in telemetry.sink.events if e["ev"] == "diag.unit.check"
        ]
        assert events and events[0]["content"] == 33

    def test_zero_mass_strict_failure_names_content(self):
        configs = lane_configs()
        grids = [build_grid(cfg) for cfg in configs]
        batch = BatchGrid.from_grids(grids)
        telemetry = SolverTelemetry.buffered()
        telemetry.strict_numerics = True
        fpk = BatchedFPKSolver(
            configs, batch, telemetry=telemetry, content_ids=[5, 6, 7]
        )
        density0 = batched_initial_density(batch, configs)
        density0[1] = 0.0
        with pytest.raises((StrictNumericsError, ValueError), match="content 6"):
            fpk.solve(np.full(batch.path_shape, 0.5), density0)
