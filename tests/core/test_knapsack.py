"""Tests for the capacity-constrained knapsack extension."""

import itertools

import numpy as np
import pytest

from repro.core.knapsack import (
    KnapsackItem,
    capacity_constrained_placement,
    solve_01_knapsack,
    solve_fractional_knapsack,
)


def items_from(weights, values):
    return [
        KnapsackItem(content_id=i, weight=w, value=v)
        for i, (w, v) in enumerate(zip(weights, values))
    ]


def brute_force_01(items, capacity):
    best_value, best_set = 0.0, []
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            weight = sum(it.weight for it in combo)
            value = sum(it.value for it in combo)
            if weight <= capacity and value > best_value:
                best_value = value
                best_set = sorted(it.content_id for it in combo)
    return best_set, best_value


class TestKnapsackItem:
    def test_density(self):
        assert KnapsackItem(0, weight=4.0, value=8.0).density == 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="weight"):
            KnapsackItem(0, weight=0.0, value=1.0)
        with pytest.raises(ValueError, match="value"):
            KnapsackItem(0, weight=1.0, value=-1.0)


class TestFractionalKnapsack:
    def test_everything_fits(self):
        items = items_from([10, 20], [5, 5])
        fractions = solve_fractional_knapsack(items, capacity=100.0)
        assert fractions == {0: 1.0, 1: 1.0}

    def test_greedy_takes_best_density_first(self):
        items = items_from([10, 10], [1, 9])
        fractions = solve_fractional_knapsack(items, capacity=10.0)
        assert fractions[1] == 1.0
        assert fractions[0] == 0.0

    def test_partial_item_at_boundary(self):
        items = items_from([10, 10], [9, 1])
        fractions = solve_fractional_knapsack(items, capacity=15.0)
        assert fractions[0] == 1.0
        assert fractions[1] == pytest.approx(0.5)

    def test_capacity_respected(self):
        rng = np.random.default_rng(0)
        items = items_from(rng.uniform(1, 10, 8), rng.uniform(0, 5, 8))
        fractions = solve_fractional_knapsack(items, capacity=20.0)
        used = sum(fractions[it.content_id] * it.weight for it in items)
        assert used <= 20.0 + 1e-9

    def test_zero_capacity(self):
        items = items_from([5.0], [1.0])
        assert solve_fractional_knapsack(items, 0.0) == {0: 0.0}

    def test_upper_bounds_01_solution(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            items = items_from(rng.uniform(1, 8, 6), rng.uniform(0, 5, 6))
            cap = float(rng.uniform(5, 20))
            fractions = solve_fractional_knapsack(items, cap)
            frac_value = sum(fractions[it.content_id] * it.value for it in items)
            _, best01 = brute_force_01(items, cap)
            assert frac_value >= best01 - 1e-9

    def test_rejects_duplicates_and_bad_capacity(self):
        items = [KnapsackItem(0, 1.0, 1.0), KnapsackItem(0, 2.0, 2.0)]
        with pytest.raises(ValueError, match="unique"):
            solve_fractional_knapsack(items, 10.0)
        with pytest.raises(ValueError, match="capacity"):
            solve_fractional_knapsack([], -1.0)


class TestZeroOneKnapsack:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            weights = rng.integers(1, 8, size=6).astype(float)
            values = rng.uniform(0, 5, 6)
            items = items_from(weights, values)
            cap = float(rng.integers(4, 20))
            selected, value = solve_01_knapsack(items, cap, resolution=1.0)
            bf_set, bf_value = brute_force_01(items, cap)
            assert value == pytest.approx(bf_value)
            chosen_weight = sum(
                it.weight for it in items if it.content_id in selected
            )
            assert chosen_weight <= cap + 1e-9

    def test_empty_inputs(self):
        assert solve_01_knapsack([], 10.0) == ([], 0.0)
        items = items_from([5.0], [1.0])
        assert solve_01_knapsack(items, 0.5, resolution=1.0) == ([], 0.0)

    def test_oversized_item_skipped(self):
        items = items_from([100.0, 2.0], [50.0, 1.0])
        selected, value = solve_01_knapsack(items, 10.0)
        assert selected == [1]
        assert value == pytest.approx(1.0)

    def test_resolution_rounds_weights_up(self):
        # Weight 1.2 rounds to 2 units at resolution 1, so capacity 3
        # fits only one such item.
        items = items_from([1.2, 1.2], [1.0, 1.0])
        selected, _ = solve_01_knapsack(items, 3.0, resolution=1.0)
        assert len(selected) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            solve_01_knapsack([], -1.0)
        with pytest.raises(ValueError, match="resolution"):
            solve_01_knapsack([], 1.0, resolution=0.0)


class TestCapacityConstrainedPlacement:
    def test_passthrough_when_fits(self):
        allocations = {0: 10.0, 1: 20.0}
        granted = capacity_constrained_placement(allocations, {0: 1.0, 1: 2.0}, 50.0)
        assert granted == allocations

    def test_scales_down_when_over(self):
        allocations = {0: 40.0, 1: 40.0}
        values = {0: 10.0, 1: 1.0}
        granted = capacity_constrained_placement(allocations, values, 40.0)
        assert granted[0] == pytest.approx(40.0)
        assert granted[1] == pytest.approx(0.0)

    def test_missing_values_default_zero(self):
        allocations = {0: 40.0, 1: 40.0}
        granted = capacity_constrained_placement(allocations, {0: 5.0}, 40.0)
        assert granted[0] == pytest.approx(40.0)

    def test_total_within_capacity(self):
        rng = np.random.default_rng(3)
        allocations = {k: float(w) for k, w in enumerate(rng.uniform(5, 30, 6))}
        values = {k: float(v) for k, v in enumerate(rng.uniform(0, 5, 6))}
        granted = capacity_constrained_placement(allocations, values, 50.0)
        assert sum(granted.values()) <= 50.0 + 1e-9

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            capacity_constrained_placement({}, {}, -1.0)
