"""Tests for the finite-difference operators."""

import numpy as np
import pytest

from repro.core.operators import (
    central_gradient,
    conservative_advection,
    conservative_diffusion,
    second_derivative,
    stable_time_step,
    upwind_gradient,
)


def linear_field(nh=6, nq=8, ah=2.0, aq=3.0):
    h = np.arange(nh)[:, None] * 0.5
    q = np.arange(nq)[None, :] * 1.5
    return ah * h + aq * q


class TestGradients:
    def test_central_exact_on_linear(self):
        field = linear_field()
        gh = central_gradient(field, 0.5, axis=0)
        gq = central_gradient(field, 1.5, axis=1)
        assert np.allclose(gh, 2.0)
        assert np.allclose(gq, 3.0)

    def test_upwind_exact_on_linear_both_signs(self):
        field = linear_field()
        for vel in (+1.0, -1.0):
            gh = upwind_gradient(field, 0.5, np.full(field.shape, vel), axis=0)
            assert np.allclose(gh, 2.0)

    def test_upwind_selects_direction(self):
        # A kinked field distinguishes forward from backward differences.
        field = np.zeros((1, 5))
        field[0] = [0.0, 0.0, 1.0, 0.0, 0.0]
        back = upwind_gradient(field, 1.0, np.ones((1, 5)), axis=1)
        fwd = upwind_gradient(field, 1.0, -np.ones((1, 5)), axis=1)
        # At the peak: backward difference sees +1, forward sees -1.
        assert back[0, 2] == pytest.approx(1.0)
        assert fwd[0, 2] == pytest.approx(-1.0)

    def test_second_derivative_on_quadratic(self):
        q = np.arange(9)[None, :] * 2.0
        field = np.tile(q**2, (3, 1))
        lap = second_derivative(field, 2.0, axis=1)
        # Interior exactly 2; boundaries use the Neumann closure.
        assert np.allclose(lap[:, 1:-1], 2.0)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError, match="axis"):
            central_gradient(np.ones((3, 3)), 1.0, axis=2)
        with pytest.raises(ValueError, match="axis"):
            upwind_gradient(np.ones((3, 3)), 1.0, np.ones((3, 3)), axis=-1)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            central_gradient(np.ones((3, 3)), 0.0, axis=0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            second_derivative(np.ones(5), 1.0, axis=0)


class TestConservativeOperators:
    def test_advection_conserves_mass(self):
        rng = np.random.default_rng(0)
        density = rng.uniform(0, 1, (6, 10))
        velocity = rng.uniform(-2, 2, (6, 10))
        for axis in (0, 1):
            update = conservative_advection(density, velocity, 0.7, axis=axis)
            assert abs(update.sum()) < 1e-12

    def test_advection_moves_mass_downstream(self):
        density = np.zeros((1, 9))
        density[0, 4] = 1.0
        update = conservative_advection(density, np.ones((1, 9)), 1.0, axis=1)
        # Positive velocity drains cell 4 into cell 5.
        assert update[0, 4] < 0
        assert update[0, 5] > 0
        assert update[0, 3] == 0.0

    def test_diffusion_conserves_mass(self):
        rng = np.random.default_rng(1)
        density = rng.uniform(0, 1, (6, 10))
        for axis in (0, 1):
            update = conservative_diffusion(density, 0.5, 0.7, axis=axis)
            assert abs(update.sum()) < 1e-12

    def test_diffusion_flattens_peak(self):
        density = np.zeros((1, 9))
        density[0, 4] = 1.0
        update = conservative_diffusion(density, 1.0, 1.0, axis=1)
        assert update[0, 4] < 0
        assert update[0, 3] > 0 and update[0, 5] > 0

    def test_diffusion_zero_diffusivity_is_noop(self):
        density = np.random.default_rng(2).uniform(0, 1, (4, 4))
        assert np.allclose(conservative_diffusion(density, 0.0, 1.0, 1), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="spacing"):
            conservative_advection(np.ones((2, 2)), np.ones((2, 2)), 0.0, 1)
        with pytest.raises(ValueError, match="diffusivity"):
            conservative_diffusion(np.ones((2, 2)), -1.0, 1.0, 1)
        with pytest.raises(ValueError, match="axis"):
            conservative_advection(np.ones((2, 2)), np.ones((2, 2)), 1.0, 3)


class TestStableTimeStep:
    def test_advection_limit(self):
        dt = stable_time_step(2.0, 0.0, 0.5, 1.0, 0.0, 0.0, safety=1.0)
        assert dt == pytest.approx(0.25)

    def test_diffusion_limit(self):
        dt = stable_time_step(0.0, 0.0, 0.5, 1.0, 1.0, 0.0, safety=1.0)
        assert dt == pytest.approx(0.125)

    def test_most_restrictive_wins(self):
        dt = stable_time_step(10.0, 10.0, 0.1, 0.1, 1.0, 1.0, safety=1.0)
        assert dt == pytest.approx(min(0.01, 0.005))

    def test_no_dynamics_unbounded(self):
        assert stable_time_step(0.0, 0.0, 1.0, 1.0, 0.0, 0.0) == np.inf

    def test_validation(self):
        with pytest.raises(ValueError, match="spacings"):
            stable_time_step(1.0, 1.0, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="safety"):
            stable_time_step(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, safety=0.0)
