"""Tests for the discretised state space."""

import numpy as np
import pytest

from repro.core.grid import StateGrid


def make(n_t=10, n_h=5, n_q=9, q_max=100.0):
    return StateGrid.regular(
        horizon=1.0, n_time_steps=n_t, h_bounds=(4.0, 6.0), n_h=n_h,
        q_max=q_max, n_q=n_q,
    )


class TestConstruction:
    def test_regular_axes(self):
        grid = make()
        assert grid.t[0] == 0.0 and grid.t[-1] == 1.0
        assert grid.h[0] == 4.0 and grid.h[-1] == 6.0
        assert grid.q[0] == 0.0 and grid.q[-1] == 100.0

    def test_shapes_and_spacings(self):
        grid = make(n_t=10, n_h=5, n_q=9)
        assert grid.n_t == 10
        assert grid.shape == (5, 9)
        assert grid.path_shape == (11, 5, 9)
        assert grid.dt == pytest.approx(0.1)
        assert grid.dh == pytest.approx(0.5)
        assert grid.dq == pytest.approx(12.5)

    def test_rejects_nonuniform_axes(self):
        with pytest.raises(ValueError, match="uniform"):
            StateGrid(
                t=np.array([0.0, 0.1, 0.3]),
                h=np.linspace(4, 6, 5),
                q=np.linspace(0, 100, 9),
            )

    def test_rejects_decreasing_axis(self):
        with pytest.raises(ValueError, match="increasing"):
            StateGrid(
                t=np.linspace(0, 1, 5),
                h=np.array([6.0, 4.0]),
                q=np.linspace(0, 100, 9),
            )

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError, match="empty h range"):
            make_bad = StateGrid.regular(1.0, 5, (6.0, 4.0), 5, 100.0, 9)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            StateGrid.regular(0.0, 5, (4.0, 6.0), 5, 100.0, 9)


class TestMeshes:
    def test_h_mesh_constant_columns(self):
        grid = make()
        mesh = grid.h_mesh()
        assert mesh.shape == grid.shape
        assert np.all(mesh[:, 0] == grid.h)
        assert np.all(mesh[:, 0] == mesh[:, -1])

    def test_q_mesh_constant_rows(self):
        grid = make()
        mesh = grid.q_mesh()
        assert np.all(mesh[0, :] == grid.q)
        assert np.all(mesh[0, :] == mesh[-1, :])


class TestQuadrature:
    def test_weights_sum_to_area(self):
        grid = make()
        area = (grid.h[-1] - grid.h[0]) * (grid.q[-1] - grid.q[0])
        assert grid.cell_weights().sum() == pytest.approx(area)

    def test_integrate_constant(self):
        grid = make()
        area = 2.0 * 100.0
        assert grid.integrate(np.ones(grid.shape)) == pytest.approx(area)

    def test_integrate_bilinear_exact(self):
        # Trapezoid integration is exact for bilinear functions.
        grid = make()
        field = grid.h_mesh() * grid.q_mesh()
        exact = (6.0**2 - 4.0**2) / 2 * (100.0**2) / 2
        assert grid.integrate(field) == pytest.approx(exact)

    def test_normalize_unit_mass(self):
        grid = make()
        density = grid.normalize(np.random.default_rng(0).uniform(0, 1, grid.shape))
        assert grid.integrate(density) == pytest.approx(1.0)

    def test_normalize_rejects_negative(self):
        grid = make()
        field = np.ones(grid.shape)
        field[0, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            grid.normalize(field)

    def test_normalize_rejects_zero_mass(self):
        grid = make()
        with pytest.raises(ValueError, match="zero mass"):
            grid.normalize(np.zeros(grid.shape))

    def test_expectation(self):
        grid = make()
        density = grid.normalize(np.ones(grid.shape))
        # E[q] under the uniform law is Q/2.
        assert grid.expectation(density, grid.q_mesh()) == pytest.approx(50.0, rel=1e-6)

    def test_marginals_integrate_to_one(self):
        grid = make()
        density = grid.normalize(np.random.default_rng(1).uniform(0, 1, grid.shape))
        mq = grid.marginal_q(density)
        mh = grid.marginal_h(density)
        # Trapezoid over the marginals recovers total mass.
        wq = np.full(grid.n_q, grid.dq)
        wq[0] = wq[-1] = grid.dq / 2
        wh = np.full(grid.n_h, grid.dh)
        wh[0] = wh[-1] = grid.dh / 2
        assert (mq * wq).sum() == pytest.approx(1.0)
        assert (mh * wh).sum() == pytest.approx(1.0)

    def test_shape_validation(self):
        grid = make()
        with pytest.raises(ValueError, match="shape"):
            grid.integrate(np.ones((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            grid.marginal_q(np.ones((2, 2)))


class TestLookup:
    def test_nearest_time_index(self):
        grid = make(n_t=10)
        assert grid.nearest_time_index(0.0) == 0
        assert grid.nearest_time_index(0.51) == 5
        assert grid.nearest_time_index(2.0) == 10

    def test_locate_clips_to_grid(self):
        grid = make()
        assert grid.locate(4.0, 0.0) == (0, 0)
        assert grid.locate(100.0, 1e9) == (grid.n_h - 1, grid.n_q - 1)
        assert grid.locate(-100.0, -5.0) == (0, 0)

    def test_interp_weights_interior(self):
        grid = make(n_h=5, n_q=9)
        ih, iq, fh, fq = grid.interp_weights(4.25, 6.25)
        assert (ih, iq) == (0, 0)
        assert fh == pytest.approx(0.5)
        assert fq == pytest.approx(0.5)

    def test_interp_weights_clipped(self):
        grid = make()
        ih, iq, fh, fq = grid.interp_weights(1e9, 1e9)
        assert ih == grid.n_h - 2
        assert iq == grid.n_q - 2
        assert fh == pytest.approx(1.0, abs=1e-9)
