"""Tests for the backward HJB solver (Eq. (20))."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator, build_grid
from repro.core.hjb import HJBSolver
from repro.core.mean_field import MeanFieldEstimator
from repro.core.parameters import MFGCPConfig


@pytest.fixture
def setup(fast_config):
    grid = build_grid(fast_config)
    solver = HJBSolver(fast_config, grid)
    mean_field = MeanFieldEstimator(fast_config, grid).constant_guess()
    return fast_config, grid, solver, mean_field


class TestBackwardSweep:
    def test_terminal_condition_default_zero(self, setup):
        _, grid, solver, mf = setup
        solution = solver.solve(mf)
        assert np.allclose(solution.value[grid.n_t], 0.0)

    def test_custom_terminal_value(self, setup):
        _, grid, solver, mf = setup
        terminal = np.full(grid.shape, 5.0)
        solution = solver.solve(mf, terminal_value=terminal)
        assert np.allclose(solution.value[grid.n_t], 5.0)

    def test_terminal_shape_checked(self, setup):
        _, _, solver, mf = setup
        with pytest.raises(ValueError, match="terminal value"):
            solver.solve(mf, terminal_value=np.zeros((2, 2)))

    def test_value_stays_bounded(self, setup):
        cfg, grid, solver, mf = setup
        solution = solver.solve(mf)
        # A crude bound: |V| <= T * max |running utility| over the grid;
        # the income bound I * p_hat * Q dominates.
        bound = cfg.horizon * 4 * cfg.n_requests * cfg.p_hat * cfg.content_size
        assert np.all(np.abs(solution.value) < bound)

    def test_value_smooth_in_q(self, setup):
        # No checkerboard oscillation: the second difference along q
        # stays moderate relative to the value scale.
        _, grid, solver, mf = setup
        value = solver.solve(mf).value[0]
        second = np.abs(np.diff(value, 2, axis=1))
        assert second.max() < 0.2 * (np.abs(value).max() + 1.0)

    def test_value_decreasing_in_q(self, setup):
        # Being cached up (small remaining space) is worth more.
        _, grid, solver, mf = setup
        value = solver.solve(mf).value[0]
        assert np.all(np.diff(value, axis=1) <= 1e-6)

    def test_policy_in_unit_interval(self, setup):
        _, _, solver, mf = setup
        table = solver.solve(mf).policy.table
        assert np.all(table >= 0.0)
        assert np.all(table <= 1.0)

    def test_terminal_policy_vanishes(self, setup):
        # V(T) = 0 => no value gradient => Eq. (21) clips to zero.
        _, grid, solver, mf = setup
        solution = solver.solve(mf)
        assert np.allclose(solution.policy.table[grid.n_t], 0.0)

    def test_substeps_positive(self, setup):
        _, _, solver, _ = setup
        assert solver.substeps_per_interval() >= 1

    def test_initial_value_lookup(self, setup):
        cfg, grid, solver, mf = setup
        solution = solver.solve(mf)
        v = solution.initial_value(cfg.channel.mean, 50.0)
        ih, iq = grid.locate(cfg.channel.mean, 50.0)
        assert v == solution.value[0, ih, iq]

    def test_value_gradient_helper(self, setup):
        _, grid, solver, mf = setup
        solution = solver.solve(mf)
        grad = solution.value_gradient_q(0)
        assert grad.shape == grid.shape

    def test_control_from_value_consistent(self, setup):
        _, grid, solver, mf = setup
        solution = solver.solve(mf)
        recomputed = solver.control_from_value(solution.value[0])
        assert np.allclose(recomputed, solution.policy.table[0], atol=1e-9)


class TestEconomicShape:
    def test_sharing_value_nonnegative(self, fast_config):
        # Enabling sharing cannot hurt the generic player's value:
        # solve with and without the sharing terms under identical
        # market paths.
        grid = build_grid(fast_config)
        mf = MeanFieldEstimator(fast_config, grid).constant_guess()
        # Give the sharing benefit a visible level.
        mf = replace(mf, sharing_benefit=np.full(grid.n_t + 1, 3.0))
        v_with = HJBSolver(fast_config, grid).solve(mf).value[0]
        cfg_ns = fast_config.without_sharing()
        v_without = HJBSolver(cfg_ns, grid).solve(mf).value[0]
        assert v_with.mean() > v_without.mean() - 1e-6

    def test_cost_only_objective_nonpositive_value(self, fast_config):
        # The UDCS objective (no income, no sharing) accumulates only
        # costs, so its value function is everywhere non-positive.
        cfg = replace(fast_config, include_trading=False, include_sharing=False)
        grid = build_grid(cfg)
        mf = MeanFieldEstimator(cfg, grid).constant_guess()
        value = HJBSolver(cfg, grid).solve(mf).value
        assert np.all(value <= 1e-9)

    def test_higher_price_raises_value(self, fast_config):
        grid = build_grid(fast_config)
        estimator = MeanFieldEstimator(fast_config, grid)
        mf_low = replace(
            estimator.constant_guess(), price=np.full(grid.n_t + 1, 0.3)
        )
        mf_high = replace(
            estimator.constant_guess(), price=np.full(grid.n_t + 1, 0.7)
        )
        solver = HJBSolver(fast_config, grid)
        v_low = solver.solve(mf_low).value[0].mean()
        v_high = solver.solve(mf_high).value[0].mean()
        assert v_high > v_low
