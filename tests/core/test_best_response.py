"""Tests for the iterative best-response scheme (Alg. 2)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator, build_grid
from repro.core.parameters import MFGCPConfig


class TestBuildGrid:
    def test_covers_ou_support(self, fast_config):
        grid = build_grid(fast_config)
        ou = fast_config.ou_process()
        lo, hi = ou.stationary_interval()
        assert grid.h[0] <= max(lo, 1e-6) + 1e-9
        assert grid.h[-1] >= hi - 1e-9

    def test_q_axis_spans_content(self, fast_config):
        grid = build_grid(fast_config)
        assert grid.q[0] == 0.0
        assert grid.q[-1] == fast_config.content_size

    def test_h_axis_positive(self, fast_config):
        assert build_grid(fast_config).h[0] > 0.0

    def test_degenerate_volatility_widened(self):
        from repro.core.parameters import ChannelParameters

        cfg = replace(
            MFGCPConfig.fast(), channel=ChannelParameters(volatility=0.0)
        )
        grid = build_grid(cfg)
        assert grid.h[-1] - grid.h[0] > 0.1


class TestSolve:
    def test_converges_on_fast_config(self, solved_equilibrium):
        assert solved_equilibrium.report.converged
        assert solved_equilibrium.report.final_policy_change < MFGCPConfig.fast().tolerance

    def test_policy_change_shrinks(self, solved_equilibrium):
        changes = [r.policy_change for r in solved_equilibrium.report.history]
        # The tail of the iteration is much smaller than the head.
        assert changes[-1] < 0.1 * max(changes)

    def test_density_path_mass(self, solved_equilibrium):
        grid = solved_equilibrium.grid
        for sheet in solved_equilibrium.density[:: max(1, grid.n_t // 5)]:
            assert grid.integrate(sheet) == pytest.approx(1.0, abs=1e-9)

    def test_policy_bounds(self, solved_equilibrium):
        table = solved_equilibrium.policy.table
        assert np.all(table >= 0.0)
        assert np.all(table <= 1.0)

    def test_equilibrium_is_fixed_point(self, fast_config, solved_equilibrium):
        # One more best-response sweep barely moves the policy.
        iterator = BestResponseIterator(fast_config, grid=solved_equilibrium.grid)
        solution = iterator.hjb.solve(solved_equilibrium.mean_field)
        gap = np.max(np.abs(solution.policy.table - solved_equilibrium.policy.table))
        assert gap < 10 * fast_config.tolerance

    def test_initial_policy_level_validated(self, fast_config):
        iterator = BestResponseIterator(fast_config)
        with pytest.raises(ValueError, match="policy level"):
            iterator.initial_policy(1.5)

    def test_custom_initial_density(self, fast_config):
        from repro.core.fpk import initial_density

        iterator = BestResponseIterator(fast_config)
        density0 = initial_density(iterator.grid, fast_config, mean_q=50.0, std_q=8.0)
        result = iterator.solve(density0=density0)
        assert result.mean_field.mean_q[0] == pytest.approx(50.0, abs=3.0)

    def test_different_bootstrap_same_equilibrium(self, fast_config):
        # Theorem 2: the fixed point is unique, so the iteration should
        # land on the same policy from different starting levels.
        res_a = BestResponseIterator(fast_config).solve(initial_policy_level=0.2)
        res_b = BestResponseIterator(fast_config).solve(initial_policy_level=0.8)
        gap = np.max(np.abs(res_a.policy.table - res_b.policy.table))
        assert gap < 0.05, f"equilibria differ by {gap}"

    def test_warm_start_from_equilibrium_converges_fast(
        self, fast_config, solved_equilibrium
    ):
        iterator = BestResponseIterator(fast_config, grid=solved_equilibrium.grid)
        warm = iterator.solve(initial_policy=solved_equilibrium.policy.table)
        assert warm.report.converged
        # Warm-starting from the fixed point itself needs very few
        # iterations compared to the cold solve.
        assert warm.report.n_iterations <= max(
            3, solved_equilibrium.report.n_iterations // 2
        )

    def test_warm_start_validation(self, fast_config):
        iterator = BestResponseIterator(fast_config)
        with pytest.raises(ValueError, match="initial policy shape"):
            iterator.solve(initial_policy=np.zeros((2, 2)))
        bad = np.full(iterator.grid.path_shape, 1.7)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            iterator.solve(initial_policy=bad)

    def test_records_history(self, solved_equilibrium):
        history = solved_equilibrium.report.history
        assert len(history) == solved_equilibrium.report.n_iterations
        assert history[0].iteration == 1
        for record in history:
            assert 0.0 <= record.mean_control <= 1.0
            assert record.mean_price <= MFGCPConfig.fast().p_hat + 1e-9
