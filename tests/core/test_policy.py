"""Tests for the optimal control (Thm. 1 / Eq. (21)) and policy lookup."""

import numpy as np
import pytest

from repro.core.grid import StateGrid
from repro.core.policy import CachingPolicy, optimal_control


def make_grid(n_t=4, n_h=5, n_q=9):
    return StateGrid.regular(1.0, n_t, (4.0, 6.0), n_h, 100.0, n_q)


class TestOptimalControl:
    KW = dict(content_size=100.0, w1=1.0, w4=2.0, w5=90.0, eta2=10.0, backhaul_rate=20.0)

    def test_eq21_formula_interior(self):
        dq_value = -1.0
        x = optimal_control(dq_value, **self.KW)
        expected = -(2.0 / 180.0 + 10.0 * 100.0 / (2 * 20.0 * 90.0) + 100.0 * (-1.0) / 180.0)
        assert float(x) == pytest.approx(expected)

    def test_zero_gradient_gives_zero_control(self):
        # With d_qV = 0 the linear costs make caching unprofitable.
        assert float(optimal_control(0.0, **self.KW)) == 0.0

    def test_clipped_to_unit_interval(self):
        assert float(optimal_control(-100.0, **self.KW)) == 1.0
        assert float(optimal_control(+100.0, **self.KW)) == 0.0

    def test_monotone_decreasing_in_gradient(self):
        grads = np.linspace(-3, 1, 10)
        xs = optimal_control(grads, **self.KW)
        assert np.all(np.diff(xs) <= 0)

    def test_vectorised(self):
        grads = np.full((3, 4), -1.0)
        xs = optimal_control(grads, **self.KW)
        assert xs.shape == (3, 4)

    def test_larger_w5_damps_control(self):
        kw_small = dict(self.KW)
        kw_large = dict(self.KW, w5=500.0)
        assert optimal_control(-1.0, **kw_large) < optimal_control(-1.0, **kw_small)

    def test_validation(self):
        with pytest.raises(ValueError, match="w5"):
            optimal_control(-1.0, 100.0, 1.0, 2.0, 0.0, 10.0, 20.0)
        with pytest.raises(ValueError, match="backhaul_rate"):
            optimal_control(-1.0, 100.0, 1.0, 2.0, 90.0, 10.0, 0.0)
        with pytest.raises(ValueError, match="content_size"):
            optimal_control(-1.0, 0.0, 1.0, 2.0, 90.0, 10.0, 20.0)


class TestCachingPolicy:
    def make_policy(self):
        grid = make_grid()
        # Policy increasing in q, constant in h, scaled by time index.
        table = np.empty(grid.path_shape)
        for ti in range(grid.n_t + 1):
            scale = 1.0 - ti / (grid.n_t + 1)
            table[ti] = np.tile(np.linspace(0, 1, grid.n_q), (grid.n_h, 1)) * scale
        return CachingPolicy(grid=grid, table=table), grid

    def test_lookup_on_grid_points(self):
        policy, grid = self.make_policy()
        assert policy(0.0, grid.h[0], grid.q[0]) == pytest.approx(0.0)
        assert policy(0.0, grid.h[2], grid.q[-1]) == pytest.approx(1.0)

    def test_bilinear_interpolation_midpoint(self):
        policy, grid = self.make_policy()
        mid_q = 0.5 * (grid.q[0] + grid.q[1])
        expected = 0.5 * (policy.table[0, 0, 0] + policy.table[0, 0, 1])
        assert policy(0.0, grid.h[0], mid_q) == pytest.approx(expected)

    def test_lookup_clamps_out_of_range(self):
        policy, grid = self.make_policy()
        assert policy(0.0, 1e9, 1e9) == pytest.approx(policy.table[0, -1, -1])
        assert policy(0.0, -1e9, -1e9) == pytest.approx(policy.table[0, 0, 0])

    def test_batch_matches_scalar(self):
        policy, grid = self.make_policy()
        hs = np.array([4.3, 5.1, 5.9])
        qs = np.array([10.0, 55.0, 99.0])
        batch = policy.batch(0.4, hs, qs)
        for i in range(3):
            assert batch[i] == pytest.approx(policy(0.4, hs[i], qs[i]))

    def test_batch_shape_mismatch(self):
        policy, _ = self.make_policy()
        with pytest.raises(ValueError, match="shape"):
            policy.batch(0.0, np.zeros(2), np.zeros(3))

    def test_profiles(self):
        policy, grid = self.make_policy()
        q_profile = policy.q_profile(0.0, grid.h[1])
        assert q_profile.shape == (grid.n_q,)
        assert np.all(np.diff(q_profile) >= 0)
        t_profile = policy.time_profile(grid.h[1], 50.0)
        assert t_profile.shape == (grid.n_t + 1,)
        assert np.all(np.diff(t_profile) <= 0)

    def test_at_time_returns_copy(self):
        policy, _ = self.make_policy()
        sheet = policy.at_time(0.0)
        sheet[:] = 99.0
        assert policy.table[0].max() <= 1.0

    def test_mean_against_uniform_density(self):
        policy, grid = self.make_policy()
        density = np.tile(
            grid.normalize(np.ones(grid.shape)), (grid.n_t + 1, 1, 1)
        )
        means = policy.mean_against(density)
        assert means.shape == (grid.n_t + 1,)
        # Mean of a 0..1 ramp under uniform density is ~0.5 at t=0.
        assert means[0] == pytest.approx(0.5, rel=0.05)
        assert np.all(np.diff(means) < 0)

    def test_mean_against_shape_mismatch(self):
        policy, grid = self.make_policy()
        with pytest.raises(ValueError, match="shape"):
            policy.mean_against(np.ones((2, *grid.shape)))

    def test_rejects_out_of_range_table(self):
        grid = make_grid()
        table = np.full(grid.path_shape, 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            CachingPolicy(grid=grid, table=table)

    def test_rejects_wrong_shape(self):
        grid = make_grid()
        with pytest.raises(ValueError, match="shape"):
            CachingPolicy(grid=grid, table=np.zeros((2, 2)))
