"""Tests for the semi-Lagrangian solver backend."""

import numpy as np
import pytest

from repro.core.best_response import build_grid
from repro.core.grid import StateGrid
from repro.core.mean_field import MeanFieldEstimator
from repro.core.parameters import MFGCPConfig
from repro.core.semilagrangian import (
    SLBestResponseIterator,
    SLFPKSolver,
    SLHJBSolver,
    bilinear_deposit,
    bilinear_interpolate,
)


@pytest.fixture
def grid():
    return StateGrid.regular(1.0, 10, (4.0, 6.0), 6, 100.0, 11)


class TestBilinearInterpolate:
    def test_exact_on_grid_nodes(self, grid):
        rng = np.random.default_rng(0)
        field = rng.uniform(0, 1, grid.shape)
        H, Q = np.meshgrid(grid.h, grid.q, indexing="ij")
        out = bilinear_interpolate(field, grid, H, Q)
        assert np.allclose(out, field)

    def test_exact_on_bilinear_function(self, grid):
        field = 2.0 * grid.h_mesh() + 0.3 * grid.q_mesh() + 1.0
        h_pts = np.array([4.3, 5.7])
        q_pts = np.array([12.5, 87.5])
        out = bilinear_interpolate(field, grid, h_pts, q_pts)
        assert np.allclose(out, 2.0 * h_pts + 0.3 * q_pts + 1.0)

    def test_clamps_outside_points(self, grid):
        field = grid.q_mesh().astype(float)
        out = bilinear_interpolate(field, grid, np.array([5.0]), np.array([1e9]))
        assert out[0] == pytest.approx(grid.q[-1])

    def test_shape_checked(self, grid):
        with pytest.raises(ValueError, match="field shape"):
            bilinear_interpolate(np.zeros((2, 2)), grid, np.zeros(1), np.zeros(1))


class TestBilinearDeposit:
    def test_conserves_mass(self, grid):
        rng = np.random.default_rng(1)
        mass = rng.uniform(0, 1, 50)
        h_pts = rng.uniform(3.0, 7.0, 50)   # includes out-of-grid points
        q_pts = rng.uniform(-10.0, 110.0, 50)
        out = bilinear_deposit(mass, grid, h_pts, q_pts)
        assert out.sum() == pytest.approx(mass.sum(), rel=1e-12)

    def test_point_on_node_deposits_there(self, grid):
        out = bilinear_deposit(
            np.array([2.0]), grid, np.array([grid.h[2]]), np.array([grid.q[3]])
        )
        assert out[2, 3] == pytest.approx(2.0)
        assert out.sum() == pytest.approx(2.0)

    def test_adjoint_of_interpolation(self, grid):
        # <interp(f), m> == <f, deposit(m)> for any field/mass pair.
        rng = np.random.default_rng(2)
        field = rng.uniform(0, 1, grid.shape)
        mass = rng.uniform(0, 1, 30)
        h_pts = rng.uniform(4.0, 6.0, 30)
        q_pts = rng.uniform(0.0, 100.0, 30)
        lhs = float((bilinear_interpolate(field, grid, h_pts, q_pts) * mass).sum())
        rhs = float((field * bilinear_deposit(mass, grid, h_pts, q_pts)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestSLSolvers:
    def test_hjb_zero_terminal(self, fast_config):
        grid = build_grid(fast_config)
        mf = MeanFieldEstimator(fast_config, grid).constant_guess()
        solution = SLHJBSolver(fast_config, grid).solve(mf)
        assert np.allclose(solution.value[grid.n_t], 0.0)
        assert np.all(solution.policy.table >= 0.0)
        assert np.all(solution.policy.table <= 1.0)

    def test_hjb_value_decreasing_in_q(self, fast_config):
        grid = build_grid(fast_config)
        mf = MeanFieldEstimator(fast_config, grid).constant_guess()
        value0 = SLHJBSolver(fast_config, grid).solve(mf).value[0]
        assert np.all(np.diff(value0, axis=1) <= 1e-6)

    def test_hjb_rejects_few_controls(self, fast_config):
        grid = build_grid(fast_config)
        with pytest.raises(ValueError, match="control levels"):
            SLHJBSolver(fast_config, grid, n_control_levels=1)

    def test_fpk_mass_conserved(self, fast_config):
        grid = build_grid(fast_config)
        solver = SLFPKSolver(fast_config, grid)
        path = solver.solve(np.full(grid.path_shape, 0.7))
        for sheet in path[:: max(1, grid.n_t // 4)]:
            assert grid.integrate(sheet) == pytest.approx(1.0, abs=1e-9)

    def test_fpk_caching_moves_mass_down(self, fast_config):
        grid = build_grid(fast_config)
        solver = SLFPKSolver(fast_config, grid)
        path = solver.solve(np.full(grid.path_shape, 1.0))
        mean0 = grid.expectation(path[0], grid.q_mesh())
        mean1 = grid.expectation(path[-1], grid.q_mesh())
        assert mean1 < mean0 - 10.0

    def test_fpk_shape_checked(self, fast_config):
        grid = build_grid(fast_config)
        with pytest.raises(ValueError, match="policy table"):
            SLFPKSolver(fast_config, grid).solve(np.zeros((2, 2)))


class TestCrossBackendAgreement:
    @pytest.fixture(scope="class")
    def sl_result(self):
        return SLBestResponseIterator(MFGCPConfig.fast()).solve()

    def test_sl_converges(self, sl_result):
        assert sl_result.report.converged

    def test_mean_state_path_agrees_with_fd(self, sl_result, solved_equilibrium):
        gap = np.max(
            np.abs(sl_result.mean_field.mean_q - solved_equilibrium.mean_field.mean_q)
        )
        assert gap < 5.0, f"backends disagree on mean q by {gap:.2f} MB"

    def test_price_path_agrees_with_fd(self, sl_result, solved_equilibrium):
        gap = np.max(
            np.abs(sl_result.mean_field.price - solved_equilibrium.mean_field.price)
        )
        assert gap < 0.03, f"backends disagree on price by {gap:.4f}"

    def test_total_utility_agrees_with_fd(self, sl_result, solved_equilibrium):
        sl_total = sl_result.accumulated_utility()["total"]
        fd_total = solved_equilibrium.accumulated_utility()["total"]
        assert sl_total == pytest.approx(fd_total, rel=0.15)

    def test_rejects_bad_bootstrap(self):
        with pytest.raises(ValueError, match="policy level"):
            SLBestResponseIterator(MFGCPConfig.fast()).solve(
                initial_policy_level=1.5
            )
