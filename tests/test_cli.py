"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_solve_flags(self):
        args = build_parser().parse_args(
            ["solve", "--fast", "--eta1", "0.003", "--no-sharing"]
        )
        assert args.fast
        assert args.eta1 == 0.003
        assert args.no_sharing


class TestSolveCommand:
    def test_prints_equilibrium(self, capsys):
        assert main(["solve", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "Equilibrium market paths" in out
        assert "Utility decomposition" in out

    def test_overrides_apply(self, capsys):
        assert main(["solve", "--fast", "--content-size", "60"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out


class TestSimulateCommand:
    def test_comparison_rows(self, capsys):
        assert main(["simulate", "--fast", "--schemes", "RR,MPC", "--edps", "15"]) == 0
        out = capsys.readouterr().out
        assert "RR" in out
        assert "MPC" in out
        assert "Finite-population comparison" in out

    def test_empty_schemes_is_error(self, capsys):
        assert main(["simulate", "--fast", "--schemes", ","]) == 2


class TestExperimentCommand:
    def test_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "OU channel evolution" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "policy evolution" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["experiment", "fig8"]) == 0
        assert "w5 sweep" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "mean-field evolution" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        assert "convergence" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        assert "initial distribution" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "eta1 sweep" in out
        assert "income(T)" in out


class TestTelemetryFlag:
    def test_solve_writes_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert f"telemetry written to {out_file}" in out

        from repro.obs import read_events

        iterations = read_events(out_file, kind="iteration")
        assert iterations, "solve should emit per-iteration events"
        assert {"policy_change", "hjb_s", "fpk_s"} <= set(iterations[0])
        assert read_events(out_file, kind="solve_end")

    def test_solve_without_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["solve", "--fast"]) == 0
        assert "telemetry written" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_simulate_accepts_flag(self, tmp_path, capsys):
        out_file = tmp_path / "sim.jsonl"
        assert main([
            "simulate", "--fast", "--schemes", "RR", "--edps", "5",
            "--telemetry", str(out_file),
        ]) == 0
        from repro.obs import read_events

        assert read_events(out_file, kind="sim_end")


class TestRuntimeFlags:
    def test_parser_accepts_backend_and_workers(self):
        args = build_parser().parse_args(
            ["experiment", "fig14", "--backend", "process:2", "--workers", "3"]
        )
        assert args.backend == "process:2"
        assert args.workers == 3

    def test_backend_defaults_to_serial(self):
        args = build_parser().parse_args(["solve", "--fast"])
        assert args.backend == "serial"
        assert args.workers is None

    def test_simulate_with_process_backend(self, capsys):
        assert main([
            "simulate", "--fast", "--schemes", "RR,MPC", "--edps", "10",
            "--seeds", "2", "--backend", "process:2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Finite-population comparison" in out

    def test_backend_matches_serial_output(self, capsys):
        argv = ["simulate", "--fast", "--schemes", "MPC", "--edps", "8",
                "--seeds", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--backend", "process:2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_rejects_bad_backend_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--fast", "--backend", "threads"])
        assert excinfo.value.code == 2
        assert "unknown executor spec" in capsys.readouterr().err


class TestFaultToleranceFlags:
    """Exit-code contract of the fault-tolerance layer.

    0 = success, 1 = a work item exhausted its retries, 2 = usage or
    configuration error (bad spec, bad store), 3 = strict-numerics
    abort.  Usage errors detected while building the executor raise
    ``SystemExit`` (matching the bad-backend convention); runtime
    failures are returned.
    """

    @staticmethod
    def exit_code(argv):
        try:
            return main(argv)
        except SystemExit as err:
            return err.code

    @pytest.fixture(autouse=True)
    def no_leaked_faults(self):
        from repro.testing import clear_faults

        clear_faults()
        yield
        clear_faults()

    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args([
            "experiment", "fig8", "--checkpoint-dir", "ckpt", "--resume",
            "--max-retries", "2", "--inject-faults", "raise:item=0",
        ])
        assert args.checkpoint_dir == "ckpt"
        assert args.resume
        assert args.max_retries == 2
        assert args.inject_faults == "raise:item=0"

    @pytest.mark.parametrize(
        "argv,code",
        [
            # --resume without a store to resume from.
            (["experiment", "fig8", "--resume"], 2),
            # Malformed fault specs never start the run.
            (["experiment", "fig8", "--inject-faults", "explode:item=0"], 2),
            (["experiment", "fig8", "--inject-faults", "raise:item=two"], 2),
            (["experiment", "fig8", "--inject-faults", ""], 2),
            # Negative retry budgets are config errors.
            (["experiment", "fig8", "--max-retries", "-1"], 2),
            # A permanent fault on the first item exhausts immediately.
            (["experiment", "fig8", "--inject-faults",
              "raise:item=0,times=-1"], 1),
            # Injected strict-numerics faults keep the exit-3 contract.
            (["experiment", "fig8", "--strict-numerics", "--inject-faults",
              "raise:item=0,exc=strict"], 3),
        ],
    )
    def test_exit_codes(self, argv, code, capsys):
        assert self.exit_code(argv) == code
        if code != 0:
            assert "error" in capsys.readouterr().err

    def test_resume_from_missing_manifest_is_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty-store"
        assert self.exit_code([
            "experiment", "fig8", "--checkpoint-dir", str(empty), "--resume",
        ]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_from_garbage_manifest_is_exit_2(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        (store_dir / "objects").mkdir(parents=True)
        (store_dir / "manifest.json").write_text("not json {")
        assert self.exit_code([
            "experiment", "fig8", "--checkpoint-dir", str(store_dir),
            "--resume",
        ]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_retry_rescues_a_transient_fault(self, capsys):
        assert self.exit_code([
            "experiment", "fig8", "--max-retries", "2",
            "--inject-faults", "raise:item=1",
        ]) == 0
        assert "w5 sweep" in capsys.readouterr().out

    def test_kill_resume_round_trip_matches_clean_run(self, tmp_path, capsys):
        import json

        clean_t = tmp_path / "clean.jsonl"
        resume_t = tmp_path / "resumed.jsonl"
        ckpt = tmp_path / "ckpt"

        assert main(["experiment", "fig8", "--telemetry", str(clean_t)]) == 0
        clean_out = capsys.readouterr().out

        # Kill the sweep partway: permanent fault on item 2.
        assert self.exit_code([
            "experiment", "fig8", "--telemetry", str(tmp_path / "dead.jsonl"),
            "--checkpoint-dir", str(ckpt),
            "--inject-faults", "raise:item=2,times=-1",
        ]) == 1
        capsys.readouterr()
        assert len(list((ckpt / "objects").iterdir())) >= 1

        # Resume: completed items replay from disk, the rest execute.
        assert main([
            "experiment", "fig8", "--telemetry", str(resume_t),
            "--checkpoint-dir", str(ckpt), "--resume",
        ]) == 0
        resume_out = capsys.readouterr().out

        # The printed result table is identical to the clean run's.
        strip = lambda s: s.replace(str(clean_t), "T").replace(str(resume_t), "T")
        assert strip(clean_out) == strip(resume_out)

        # So is the merged telemetry, modulo bookkeeping and timings.
        from repro.testing import normalized_events

        assert normalized_events(str(clean_t)) == normalized_events(str(resume_t))

        # The resumed stream records the checkpoint cache hits.
        cached = [
            json.loads(line)
            for line in resume_t.read_text().splitlines()
            if '"item.cached"' in line
        ]
        assert cached

    def test_report_renders_fault_section(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        assert self.exit_code([
            "experiment", "fig8", "--telemetry", str(run),
            "--max-retries", "2", "--inject-faults", "raise:item=1",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(run)]) == 0
        out = capsys.readouterr().out
        assert "fault tolerance:" in out
        assert "1 retry attempt(s)" in out


class TestReportCommand:
    def test_report_summarises_a_solve_run(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file)]) == 0
        capsys.readouterr()

        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        # The three report sections with their expected rows.
        assert "span tree" in out
        assert "hjb" in out and "fpk" in out
        assert "iteration convergence" in out
        assert "policy delta" in out
        assert "converged after" in out
        assert "metrics" in out
        assert "solver.iterations" in out

    def test_report_matches_solve_convergence(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file)]) == 0
        solve_out = capsys.readouterr().out
        assert main(["report", str(out_file)]) == 0
        report_out = capsys.readouterr().out
        # "converged after N iterations" agrees between live solve and replay.
        live = [l for l in solve_out.splitlines() if "converged after" in l][0]
        replay = [l for l in report_out.splitlines() if "converged after" in l][0]
        assert live.split("(")[0].strip() in replay

    def test_report_missing_file_is_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read telemetry run" in capsys.readouterr().err

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line error, no traceback

    def test_report_empty_file_is_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "no events" in capsys.readouterr().err

    def test_report_survives_truncated_final_line(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file)]) == 0
        capsys.readouterr()
        # Simulate a run killed mid-write.
        with open(out_file, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "iteration", "iter')
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "1 malformed line(s) skipped" in out
        assert "converged after" in out

    def test_report_includes_numerical_health(self, tmp_path, capsys):
        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "numerical health" in out
        assert "fpk.mass_drift" in out
        assert "cfl.margin" in out


class TestCompareCommand:
    @pytest.fixture()
    def two_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(a)]) == 0
        assert main(["solve", "--fast", "--telemetry", str(b)]) == 0
        capsys.readouterr()
        return a, b

    def test_identical_runs_have_no_regressions(self, two_runs, capsys):
        a, _ = two_runs
        assert main(["compare", str(a), str(a)]) == 0
        out = capsys.readouterr().out
        assert "span timings" in out
        assert "no regressions beyond thresholds" in out

    def test_injected_span_regression_flagged(self, two_runs, capsys):
        import json

        a, b = two_runs
        # Candidate = baseline with every span duration inflated 50%,
        # so the +20% threshold must fire regardless of machine speed.
        lines = []
        for line in a.read_text().splitlines():
            event = json.loads(line)
            if event.get("ev") == "span":
                event["dur_s"] = event["dur_s"] * 1.5
            lines.append(json.dumps(event))
        b.write_text("\n".join(lines) + "\n")

        assert main(["compare", str(a), str(b)]) == 0  # report-only default
        assert "REGRESSIONS" in capsys.readouterr().out
        assert main(["compare", str(a), str(b), "--fail-on-regression"]) == 1

    def test_missing_input_is_exit_2(self, tmp_path, two_runs, capsys):
        a, _ = two_runs
        assert main(["compare", str(a), str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read telemetry run" in capsys.readouterr().err

    def test_bench_mode_flags_timing_regression(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"solve_seconds": 1.0, "rows": 4}))
        b.write_text(json.dumps({"solve_seconds": 2.0, "rows": 4}))
        assert main(["compare", "--bench", str(a), str(b),
                     "--fail-on-regression"]) == 1
        assert "solve_seconds" in capsys.readouterr().out

    def test_bench_mode_bad_json_is_exit_2(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text("{}")
        b.write_text("not json")
        assert main(["compare", "--bench", str(a), str(b)]) == 2


class TestStrictNumerics:
    def test_healthy_solve_passes_strict_mode(self, capsys):
        assert main(["solve", "--fast", "--strict-numerics"]) == 0
        assert "converged" in capsys.readouterr().out

    def test_profile_adds_resource_fields(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(out_file),
                     "--profile"]) == 0
        spans = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
            if '"ev":"span"' in line
        ]
        assert spans and all("cpu_s" in e for e in spans)


class TestTraceCommand:
    def test_writes_csv_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "trace.csv"
        assert main(["trace", "--videos", "40", "--out", str(out_file)]) == 0
        assert "wrote 40 records" in capsys.readouterr().out

        from repro.content.trace import load_trace_csv, trace_to_popularity

        records = load_trace_csv(out_file, category_column="category_id")
        assert len(records) == 40
        labels, shares = trace_to_popularity(records)
        assert shares.sum() == pytest.approx(1.0)

    def test_exports_chrome_trace(self, tmp_path, capsys):
        import json

        run = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(run)]) == 0
        capsys.readouterr()
        out = tmp_path / "run.trace.json"
        assert main(["trace", str(run), str(out)]) == 0
        assert "perfetto" in capsys.readouterr().out.lower()
        doc = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        assert any(e.get("name") == "thread_name" for e in doc["traceEvents"])

    def test_export_requires_output_path(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        run.write_text('{"ev": "span", "path": "solve", "dur_s": 1.0}\n')
        assert main(["trace", str(run)]) == 2

    def test_export_missing_run_is_exit_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "out.json")]) == 2

    def test_no_mode_selected_is_exit_2(self, capsys):
        assert main(["trace"]) == 2
        assert "error" in capsys.readouterr().err


class TestExportCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["export", "--fast", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert (out_dir / "market_paths.csv").exists()
        assert (out_dir / "summary.json").exists()


class TestStationaryCommand:
    def test_prints_stationary_market(self, capsys):
        assert main(["stationary", "--fast", "--discount", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "stationary equilibrium converged" in out
        assert "stationary price" in out

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError, match="discount"):
            main(["stationary", "--fast", "--discount", "0"])


class TestVerifyCommand:
    def test_conditions_hold(self, capsys):
        assert main(["verify", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1 satisfied" in out
        assert "Theorem 2: contraction observed" in out


class TestLiveStatusFlag:
    def test_solve_writes_status_file(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        assert main(["solve", "--fast", "--live-status", str(status)]) == 0
        import json

        payload = json.loads(status.read_text())
        assert payload["state"] == "done"
        assert payload["version"] >= 1

    def test_live_events_land_in_telemetry(self, tmp_path):
        status = tmp_path / "status.json"
        run = tmp_path / "run.jsonl"
        assert main([
            "serve", "--policy", "lru", "--requests", "2000",
            "--edps", "4", "--contents", "6", "--slots", "5",
            "--telemetry", str(run), "--live-status", str(status),
            "--live-every", "1",
        ]) == 0
        from repro.obs import read_events

        phases = read_events(run, kind="live.phase")
        assert any(e["phase"].startswith("serve:replay") for e in phases)
        assert read_events(run, kind="live.status")
        import json

        payload = json.loads(status.read_text())
        assert payload["state"] == "done"
        assert payload["requests"]["total"] > 0
        assert 0.0 <= payload["requests"]["hit_ratio"] <= 1.0
        assert payload["items"]["done"] >= 1

    def test_live_status_does_not_change_results(self, tmp_path, capsys):
        assert main(["solve", "--fast"]) == 0
        plain = capsys.readouterr().out
        status = tmp_path / "status.json"
        assert main(["solve", "--fast", "--live-status", str(status)]) == 0
        with_live = capsys.readouterr().out
        assert plain == with_live


class TestWatchCommand:
    def _write_status(self, tmp_path, state="done"):
        from repro.obs import LiveStatusWriter

        writer = LiveStatusWriter(tmp_path / "status.json")
        writer.note_item("w:0")
        writer.finish(state)
        return tmp_path / "status.json"

    def test_watch_once_renders_frame(self, tmp_path, capsys):
        path = self._write_status(tmp_path)
        assert main(["watch", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro run status — DONE" in out
        assert "items" in out

    def test_watch_once_missing_file_is_error(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope.json"), "--once"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_watch_loop_exits_when_run_finishes(self, tmp_path, capsys):
        path = self._write_status(tmp_path, state="failed")
        assert main(["watch", str(path), "--interval", "0.01"]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_watch_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["watch", str(bad), "--once"]) == 2


class TestExportMetricsCommand:
    def _run_file(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(run)]) == 0
        capsys.readouterr()
        return run

    def test_prometheus_to_stdout(self, tmp_path, capsys):
        run = self._run_file(tmp_path, capsys)
        assert main(["export-metrics", str(run), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_events_total counter" in out
        assert "repro_solver_iterations" in out
        assert 'quantile="0.99"' in out

    def test_prometheus_to_file(self, tmp_path, capsys):
        run = self._run_file(tmp_path, capsys)
        out_file = tmp_path / "metrics.prom"
        assert main([
            "export-metrics", str(run), "--out", str(out_file),
        ]) == 0
        assert out_file.read_text().startswith("# ")
        assert "wrote Prometheus exposition to" in capsys.readouterr().out

    def test_missing_run_is_error(self, tmp_path, capsys):
        assert main(["export-metrics", str(tmp_path / "nope.jsonl")]) == 2

    def test_report_shows_sketch_markers_after_promotion(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.obs.metrics as metrics_mod

        monkeypatch.setattr(metrics_mod, "DEFAULT_EXACT_CAP", 8)
        run = self._run_file(tmp_path, capsys)
        assert main(["report", str(run)]) == 0
        out = capsys.readouterr().out
        assert "p50=~" in out  # promoted histogram carries the marker
        assert "span tree" in out
