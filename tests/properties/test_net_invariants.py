"""Property-based tests for the cache-network replay subsystem.

Three contracts from the serving spec, checked over randomised
topologies, seeds, and shard layouts:

* **Termination** — every request is served at a source or an
  intermediate cache within ``topology.diameter`` hops; routes are
  receiver-to-source chains whose interior is all caching routers.
* **LCD places once** — leave-copy-down admits at exactly one node per
  placement walk, for any path length and for whole replays.
* **Bit-identity** — replaying the same spec serially, with any shard
  count, or on a process pool yields byte-identical report summaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.workloads import zipf_workload
from repro.runtime import ParallelExecutor
from repro.serve.net import NetworkReplayEngine, parse_topology
from repro.serve.net.strategies import LCDStrategy, PlacementSite

# Small spec space: every draw must replay in well under a second.
TOPOLOGY_SPECS = [
    "path:4", "path:6", "tree:2x2", "tree:2x3", "tree:3x2",
    "ring:3", "ring:5", "mesh:7", "mesh:8x2",
]

topology_specs = st.sampled_from(TOPOLOGY_SPECS)


def small_engine(spec, seed, topology_seed=0, **kw):
    workload = zipf_workload(n_contents=4, alpha=1.0,
                             rate_per_edp=15.0, seed=seed)
    topology = parse_topology(spec, seed=topology_seed)
    kw.setdefault("n_replicas", 2)
    kw.setdefault("capacity_fraction", 0.4)
    return NetworkReplayEngine(workload, topology, seed=seed, **kw)


class TestRouteTermination:
    @given(spec=topology_specs, topology_seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_routes_end_at_a_source_within_diameter(self, spec, topology_seed):
        topo = parse_topology(spec, seed=topology_seed)
        for receiver, route in zip(topo.receivers, topo.routes):
            assert route[0] == receiver
            assert route[-1] in topo.sources
            assert all(topo.is_router(v) for v in route[1:-1])
            assert len(route) - 1 <= topo.diameter
            # The route walks actual edges of the graph.
            for u, v in zip(route, route[1:]):
                assert v in topo.neighbors(u)

    @given(
        spec=topology_specs,
        seed=st.integers(0, 2**16),
        topology_seed=st.integers(0, 2**8),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_request_served_within_diameter(
        self, spec, seed, topology_seed
    ):
        engine = small_engine(spec, seed, topology_seed, n_replicas=1)
        report = engine.replay("lce")
        assert report.cache_hits + report.source_hits == report.requests
        assert report.totals.max_hops <= engine.topology.diameter
        if report.requests:
            assert 0 < report.mean_hops <= engine.topology.diameter


class TestLCDPlacesOnce:
    @given(
        path_len=st.integers(2, 8),
        depth=st.integers(0, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_exactly_one_site_admitted_per_walk(self, path_len, depth, seed):
        """Walking any return path, LCD says yes exactly once."""
        rng = np.random.default_rng(seed)
        strategy = LCDStrategy()
        admitted = 0
        for downstream_index in range(1, path_len):
            site = PlacementSite(
                node=downstream_index, slot=0, content=0,
                hops_from_server=downstream_index,
                hops_to_receiver=path_len - downstream_index,
                path_len=path_len, downstream_index=downstream_index,
                is_edge=(downstream_index == path_len - 1),
                depth=depth, max_depth=max(depth, 1),
                path_capacity=4.0, node_capacity=2.0,
            )
            admitted += bool(strategy.should_place(site, rng))
        assert admitted == 1

    @given(spec=topology_specs, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_one_attempt_per_walk_in_full_replays(self, spec, seed):
        engine = small_engine(spec, seed, n_replicas=1)
        report = engine.replay("lcd")
        totals = report.totals
        # LCD turns each placement walk into exactly one admission
        # attempt.  Same-slot requests for one content are served as a
        # coalesced batch: hit/source counters grow by the batch size
        # while each batch starts at most one walk, so walks are
        # bounded by served batches, not by individual misses.
        assert totals.placement_attempts == totals.placement_walks
        assert totals.placement_walks <= totals.cache_hits + totals.source_hits
        if totals.source_hits and all(
            len(route) > 2 for route in engine.topology.routes
        ):
            assert totals.placement_walks >= 1


class TestBitIdentity:
    @given(
        spec=topology_specs,
        seed=st.integers(0, 2**16),
        shards=st.integers(2, 4),
    )
    @settings(max_examples=12, deadline=None)
    def test_shard_count_never_changes_reports(self, spec, seed, shards):
        baseline = small_engine(spec, seed, shards=1).replay("lcd")
        sharded = small_engine(spec, seed, shards=shards).replay("lcd")
        assert sharded.summary() == baseline.summary()

    @given(
        spec=st.sampled_from(["path:4", "tree:2x2", "ring:3"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=3, deadline=None)
    def test_process_pool_matches_serial(self, spec, seed):
        serial = small_engine(spec, seed, shards=2).replay("lce")
        parallel = small_engine(
            spec, seed, shards=2, executor=ParallelExecutor(workers=2)
        ).replay("lce")
        assert parallel.summary() == serial.summary()
