"""Property-based tests for the fault-tolerant runtime.

The determinism contract under test: for ANY plan shape, seed, and
fault placement, an interrupted-then-resumed run and a
transiently-failing retried run must produce byte-identical results
and byte-identical merged telemetry (after
:func:`repro.testing.normalized_events` strips sequence numbers,
timings, and the ``item.*`` bookkeeping) compared to an uninterrupted
run of the same plan.

Hypothesis drives the plan size, the kill/fault position, and the RNG
seed; stores live in per-example ``TemporaryDirectory``s (not
``tmp_path``, which is per-test, not per-example).
"""

import io
import pickle
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import SolverTelemetry
from repro.runtime import (
    CheckpointStore,
    ExecutionPlan,
    FaultPolicy,
    ItemFailedError,
    ResumableExecutor,
    SerialExecutor,
    partition_indices,
)
from repro.testing import clear_faults, install_faults, normalized_events


def noisy_work(x, telemetry=None, rng=None):
    """A work item with RNG state and a telemetry footprint."""
    with telemetry.span("work"):
        value = x * 100 + float(rng.standard_normal())
        telemetry.event("work_done", x=x, value=value)
    return value


def make_plan(n, seed):
    return ExecutionPlan.map(
        noisy_work,
        [(i,) for i in range(n)],
        labels=[f"w:{i}" for i in range(n)],
        seed=seed,
        accepts_telemetry=True,
    )


def run_with_stream(executor, plan):
    buffer = io.StringIO()
    telemetry = SolverTelemetry.to_jsonl(buffer)
    results = executor.run(plan, telemetry)
    telemetry.close()
    return results, normalized_events(buffer)


class TestResumeBitIdentity:
    @given(
        n_items=st.integers(2, 6),
        kill_pick=st.integers(0, 10_000),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_resume_after_kill_at_item_k(self, n_items, kill_pick, seed):
        kill_at = kill_pick % n_items
        clean_results, clean_events = run_with_stream(
            SerialExecutor(), make_plan(n_items, seed)
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            try:
                install_faults(f"raise:item={kill_at},times=-1")
                with pytest.raises(ItemFailedError):
                    run_with_stream(
                        ResumableExecutor("serial", store=store),
                        make_plan(n_items, seed),
                    )
            finally:
                clear_faults()
            resumed_results, resumed_events = run_with_stream(
                ResumableExecutor("serial", store=store),
                make_plan(n_items, seed),
            )
        assert pickle.dumps(resumed_results) == pickle.dumps(clean_results)
        assert resumed_events == clean_events

    @given(
        n_items=st.integers(1, 6),
        fault_pick=st.integers(0, 10_000),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_retry_after_transient_fault(self, n_items, fault_pick, seed):
        fault_at = fault_pick % n_items
        clean_results, clean_events = run_with_stream(
            SerialExecutor(), make_plan(n_items, seed)
        )
        try:
            install_faults(f"raise:item={fault_at}")  # first attempt only
            retried_results, retried_events = run_with_stream(
                ResumableExecutor("serial", policy=FaultPolicy(max_retries=1)),
                make_plan(n_items, seed),
            )
        finally:
            clear_faults()
        assert pickle.dumps(retried_results) == pickle.dumps(clean_results)
        assert retried_events == clean_events

    @given(n_items=st.integers(1, 6), seed=st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_wrapper_is_transparent_on_healthy_runs(self, n_items, seed):
        plain_results, plain_events = run_with_stream(
            SerialExecutor(), make_plan(n_items, seed)
        )
        with tempfile.TemporaryDirectory() as tmp:
            wrapped_results, wrapped_events = run_with_stream(
                ResumableExecutor(
                    "serial",
                    store=CheckpointStore(tmp),
                    policy=FaultPolicy(max_retries=2),
                ),
                make_plan(n_items, seed),
            )
        assert pickle.dumps(wrapped_results) == pickle.dumps(plain_results)
        assert wrapped_events == plain_events

    @given(n_items=st.integers(1, 5), seed=st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_cached_rerun_replays_identically(self, n_items, seed):
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            first_results, first_events = run_with_stream(
                ResumableExecutor("serial", store=store),
                make_plan(n_items, seed),
            )
            second_results, second_events = run_with_stream(
                ResumableExecutor("serial", store=store),
                make_plan(n_items, seed),
            )
        assert pickle.dumps(second_results) == pickle.dumps(first_results)
        assert second_events == first_events


class TestPartitionInvariants:
    @given(n=st.integers(0, 200), n_groups=st.integers(1, 40))
    @settings(max_examples=200, deadline=None)
    def test_partition_covers_in_order_without_gaps(self, n, n_groups):
        groups = partition_indices(n, n_groups)
        assert [i for g in groups for i in g] == list(range(n))

    @given(n=st.integers(0, 200), n_groups=st.integers(1, 40))
    @settings(max_examples=200, deadline=None)
    def test_partition_sizes_near_even_and_nonempty(self, n, n_groups):
        groups = partition_indices(n, n_groups)
        assert len(groups) == min(n, n_groups)
        if groups:
            sizes = [len(g) for g in groups]
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1
