"""Property-based tests for the stochastic substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sde.caching_state import CachingDrift
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess

finite = dict(allow_nan=False, allow_infinity=False)


class TestOUProperties:
    @given(
        reversion=st.floats(0.1, 20.0, **finite),
        mean=st.floats(-10.0, 10.0, **finite),
        vol=st.floats(0.0, 5.0, **finite),
        h0=st.floats(-20.0, 20.0, **finite),
        dt=st.floats(0.0, 50.0, **finite),
    )
    @settings(max_examples=100, deadline=None)
    def test_transition_mean_between_start_and_target(
        self, reversion, mean, vol, h0, dt
    ):
        ou = OrnsteinUhlenbeckProcess(reversion=reversion, mean=mean, volatility=vol)
        m, s = ou.transition_moments(np.array(h0), dt)
        lo, hi = sorted((h0, mean))
        assert lo - 1e-9 <= float(m) <= hi + 1e-9
        assert s >= 0.0

    @given(
        reversion=st.floats(0.1, 20.0, **finite),
        vol=st.floats(1e-3, 5.0, **finite),
        dt1=st.floats(1e-3, 10.0, **finite),
        dt2=st.floats(1e-3, 10.0, **finite),
    )
    @settings(max_examples=100, deadline=None)
    def test_transition_std_monotone_in_time(self, reversion, vol, dt1, dt2):
        ou = OrnsteinUhlenbeckProcess(reversion=reversion, mean=0.0, volatility=vol)
        _, s1 = ou.transition_moments(np.array(0.0), min(dt1, dt2))
        _, s2 = ou.transition_moments(np.array(0.0), max(dt1, dt2))
        assert s1 <= s2 + 1e-12

    @given(
        reversion=st.floats(0.1, 20.0, **finite),
        vol=st.floats(1e-3, 5.0, **finite),
    )
    @settings(max_examples=50, deadline=None)
    def test_stationary_std_bounds_transition_std(self, reversion, vol):
        ou = OrnsteinUhlenbeckProcess(reversion=reversion, mean=0.0, volatility=vol)
        _, stationary = ou.stationary_moments()
        _, transition = ou.transition_moments(np.array(0.0), 1e6)
        assert transition == pytest.approx(stationary, rel=1e-6)


class TestCachingDriftProperties:
    drift_args = dict(
        w1=st.floats(0.0, 5.0, **finite),
        w2=st.floats(0.0, 5.0, **finite),
        w3=st.floats(0.0, 20.0, **finite),
        xi=st.floats(0.01, 0.99, **finite),
        x=st.floats(0.0, 1.0, **finite),
        pop=st.floats(0.0, 1.0, **finite),
        timeliness=st.floats(0.0, 5.0, **finite),
    )

    @given(**drift_args)
    @settings(max_examples=150, deadline=None)
    def test_rate_bounded(self, w1, w2, w3, xi, x, pop, timeliness):
        drift = CachingDrift(w1=w1, w2=w2, w3=w3, xi=xi)
        rate = float(drift.rate(x, pop, timeliness))
        assert -(w1 + w2) - 1e-9 <= rate <= w3 + 1e-9

    @given(**drift_args)
    @settings(max_examples=150, deadline=None)
    def test_rate_decreasing_in_control(self, w1, w2, w3, xi, x, pop, timeliness):
        drift = CachingDrift(w1=w1, w2=w2, w3=w3, xi=xi)
        r_low = float(drift.rate(0.0, pop, timeliness))
        r_high = float(drift.rate(x, pop, timeliness))
        assert r_high <= r_low + 1e-12

    @given(
        w2=st.floats(0.0, 5.0, **finite),
        w3=st.floats(0.0, 20.0, **finite),
        xi=st.floats(0.01, 0.99, **finite),
        pop=st.floats(0.0, 1.0, **finite),
        timeliness=st.floats(0.0, 5.0, **finite),
    )
    @settings(max_examples=150, deadline=None)
    def test_equilibrium_control_feasible(self, w2, w3, xi, pop, timeliness):
        drift = CachingDrift(w1=1.0, w2=w2, w3=w3, xi=xi)
        x_eq = float(drift.equilibrium_control(pop, timeliness))
        assert 0.0 <= x_eq <= 1.0
