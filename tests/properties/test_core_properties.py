"""Property-based tests for the core solver machinery."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import StateGrid
from repro.core.knapsack import KnapsackItem, solve_01_knapsack, solve_fractional_knapsack
from repro.core.operators import conservative_advection, conservative_diffusion
from repro.core.policy import optimal_control

finite = dict(allow_nan=False, allow_infinity=False)


class TestOptimalControlProperties:
    @given(
        grad=st.floats(-1e4, 1e4, **finite),
        w5=st.floats(1.0, 1e4, **finite),
        w4=st.floats(0.0, 1e3, **finite),
        eta2=st.floats(0.0, 100.0, **finite),
    )
    @settings(max_examples=300, deadline=None)
    def test_always_feasible(self, grad, w5, w4, eta2):
        x = optimal_control(grad, 100.0, 1.0, w4, w5, eta2, 20.0)
        assert 0.0 <= float(x) <= 1.0

    @given(
        g1=st.floats(-100.0, 100.0, **finite),
        g2=st.floats(-100.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_gradient(self, g1, g2):
        lo, hi = sorted((g1, g2))
        x_lo = float(optimal_control(lo, 100.0, 1.0, 2.0, 90.0, 10.0, 20.0))
        x_hi = float(optimal_control(hi, 100.0, 1.0, 2.0, 90.0, 10.0, 20.0))
        assert x_lo >= x_hi - 1e-12


class TestKnapsackProperties:
    items_strategy = st.lists(
        st.tuples(st.floats(0.5, 10.0, **finite), st.floats(0.0, 10.0, **finite)),
        min_size=1,
        max_size=7,
    )

    @given(raw=items_strategy, capacity=st.floats(0.0, 30.0, **finite))
    @settings(max_examples=150, deadline=None)
    def test_fractional_feasible_and_dominates_01(self, raw, capacity):
        items = [
            KnapsackItem(content_id=i, weight=w, value=v)
            for i, (w, v) in enumerate(raw)
        ]
        fractions = solve_fractional_knapsack(items, capacity)
        used = sum(fractions[it.content_id] * it.weight for it in items)
        assert used <= capacity + 1e-9
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        frac_value = sum(fractions[it.content_id] * it.value for it in items)
        _, value01 = solve_01_knapsack(items, capacity, resolution=0.5)
        assert frac_value >= value01 - 1e-9

    @given(raw=items_strategy, capacity=st.floats(1.0, 30.0, **finite))
    @settings(max_examples=60, deadline=None)
    def test_01_never_beats_brute_force(self, raw, capacity):
        items = [
            KnapsackItem(content_id=i, weight=w, value=v)
            for i, (w, v) in enumerate(raw)
        ]
        _, dp_value = solve_01_knapsack(items, capacity, resolution=0.25)
        # Brute force on the *rounded* weights (what the DP solves).
        best = 0.0
        rounded = [max(1, int(np.ceil(it.weight / 0.25))) * 0.25 for it in items]
        slots = int(np.floor(capacity / 0.25)) * 0.25
        for r in range(len(items) + 1):
            for combo in itertools.combinations(range(len(items)), r):
                weight = sum(rounded[i] for i in combo)
                if weight <= slots + 1e-9:
                    best = max(best, sum(items[i].value for i in combo))
        assert dp_value == pytest.approx(best, abs=1e-9)


class TestConservationProperties:
    @given(
        seed=st.integers(0, 10_000),
        spacing=st.floats(0.1, 5.0, **finite),
        diffusivity=st.floats(0.0, 10.0, **finite),
    )
    @settings(max_examples=100, deadline=None)
    def test_operators_conserve_mass(self, seed, spacing, diffusivity):
        rng = np.random.default_rng(seed)
        density = rng.uniform(0.0, 1.0, size=(5, 8))
        velocity = rng.uniform(-3.0, 3.0, size=(5, 8))
        for axis in (0, 1):
            adv = conservative_advection(density, velocity, spacing, axis)
            diff = conservative_diffusion(density, diffusivity, spacing, axis)
            assert abs(adv.sum()) < 1e-10
            assert abs(diff.sum()) < 1e-10


class TestGridProperties:
    @given(
        a=st.floats(-5.0, 5.0, **finite),
        b=st.floats(-5.0, 5.0, **finite),
        c=st.floats(-5.0, 5.0, **finite),
    )
    @settings(max_examples=100, deadline=None)
    def test_integration_linear_in_field(self, a, b, c):
        grid = StateGrid.regular(1.0, 4, (4.0, 6.0), 5, 100.0, 9)
        f = grid.h_mesh()
        g = grid.q_mesh()
        combined = grid.integrate(a * f + b * g + c)
        separate = a * grid.integrate(f) + b * grid.integrate(g) + c * grid.integrate(
            np.ones(grid.shape)
        )
        assert combined == pytest.approx(separate, rel=1e-9, abs=1e-9)
