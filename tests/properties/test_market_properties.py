"""Property-based tests for the shared market-clearing step."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import MFGCPConfig
from repro.game.market import clear_market

finite = dict(allow_nan=False, allow_infinity=False)

_CFG = MFGCPConfig.fast()


def run(seed, levels, states, requests, sharing_bits):
    m = len(states)
    return clear_market(
        _CFG,
        _CFG.content_size,
        requests,
        np.asarray(states, dtype=float),
        np.asarray(levels[:m], dtype=float),
        np.full(m, 40.0),
        np.asarray(sharing_bits[:m], dtype=bool),
        np.random.default_rng(seed),
    )


population = st.lists(st.floats(0.0, 100.0, **finite), min_size=1, max_size=25)


class TestMarketInvariants:
    @given(
        seed=st.integers(0, 10_000),
        states=population,
        level=st.floats(0.0, 1.0, **finite),
        requests=st.floats(0.0, 20.0, **finite),
        bits=st.lists(st.booleans(), min_size=25, max_size=25),
    )
    @settings(max_examples=120, deadline=None)
    def test_flows_balance_and_cases_partition(
        self, seed, states, level, requests, bits
    ):
        m = len(states)
        step = run(seed, [level] * 25, states, requests, bits)
        # Money conservation in the peer market.
        assert step.sharing_benefit.sum() == pytest.approx(
            step.sharing_cost.sum(), abs=1e-9
        )
        # Exactly one case per EDP.
        total = (
            step.case1.astype(int) + step.case2.astype(int) + step.case3.astype(int)
        )
        assert np.all(total == 1)
        # No negative money flows anywhere.
        for arr in (
            step.trading_income,
            step.placement_cost,
            step.staleness_cost,
            step.sharing_benefit,
            step.sharing_cost,
        ):
            assert np.all(arr >= -1e-9)

    @given(
        seed=st.integers(0, 10_000),
        states=population,
        level=st.floats(0.0, 1.0, **finite),
    )
    @settings(max_examples=80, deadline=None)
    def test_non_participants_never_in_case2(self, seed, states, level):
        m = len(states)
        step = run(seed, [level] * 25, states, 5.0, [False] * 25)
        assert not step.case2.any()
        assert np.all(step.sharing_benefit == 0.0)

    @given(seed=st.integers(0, 10_000), states=population)
    @settings(max_examples=80, deadline=None)
    def test_prices_within_market_bounds(self, seed, states):
        step = run(seed, [0.5] * 25, states, 5.0, [True] * 25)
        assert np.all(step.prices >= 0.0)
        assert np.all(step.prices <= _CFG.p_hat + 1e-12)

    @given(
        seed=st.integers(0, 10_000),
        states=population,
        capacity_bits=st.lists(st.booleans(), min_size=25, max_size=25),
    )
    @settings(max_examples=80, deadline=None)
    def test_sharer_capacity_never_exceeded(self, seed, states, capacity_bits):
        step = run(seed, [0.5] * 25, states, 5.0, [True] * 25)
        threshold = _CFG.alpha * _CFG.content_size
        n_sharers = int((np.asarray(states) <= threshold).sum())
        assert step.case2.sum() <= _CFG.sharer_capacity * n_sharers
