"""Property-based tests for the PDE solvers (both backends)."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import build_grid
from repro.core.fpk import FPKSolver, initial_density
from repro.core.hjb import HJBSolver
from repro.core.mean_field import MeanFieldEstimator
from repro.core.parameters import MFGCPConfig
from repro.core.semilagrangian import SLFPKSolver

finite = dict(allow_nan=False, allow_infinity=False)


def tiny_config():
    """A very coarse config so property examples stay cheap."""
    return replace(
        MFGCPConfig.fast(), n_time_steps=20, n_h=7, n_q=15, max_iterations=5
    )


_CFG = tiny_config()
_GRID = build_grid(_CFG)
_FPK = FPKSolver(_CFG, _GRID)
_SL_FPK = SLFPKSolver(_CFG, _GRID)
_HJB = HJBSolver(_CFG, _GRID)
_MF = MeanFieldEstimator(_CFG, _GRID).constant_guess()


class TestFPKProperties:
    @given(
        level=st.floats(0.0, 1.0, **finite),
        mean_frac=st.floats(0.2, 0.8, **finite),
        std_frac=st.floats(0.03, 0.2, **finite),
    )
    @settings(max_examples=25, deadline=None)
    def test_mass_and_positivity_any_constant_policy(self, level, mean_frac, std_frac):
        density0 = initial_density(
            _GRID, _CFG,
            mean_q=mean_frac * _CFG.content_size,
            std_q=std_frac * _CFG.content_size,
        )
        path = _FPK.solve(np.full(_GRID.path_shape, level), density0)
        assert np.all(path >= 0.0)
        assert _GRID.integrate(path[-1]) == pytest.approx(1.0, abs=1e-9)

    @given(level=st.floats(0.0, 1.0, **finite), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_on_mean_state(self, level, seed):
        rng = np.random.default_rng(seed)
        # A random but smooth-in-time policy path shared by both solvers.
        wobble = 0.2 * rng.uniform(-1, 1)
        policy = np.clip(
            level + wobble * np.sin(np.linspace(0, 3, _GRID.n_t + 1)), 0.0, 1.0
        )[:, None, None] * np.ones(_GRID.shape)
        density0 = initial_density(_GRID, _CFG)
        fd_path = _FPK.solve(policy, density0)
        sl_path = _SL_FPK.solve(policy, density0)
        fd_mean = _GRID.expectation(fd_path[-1], _GRID.q_mesh())
        sl_mean = _GRID.expectation(sl_path[-1], _GRID.q_mesh())
        assert fd_mean == pytest.approx(sl_mean, abs=6.0)

    @given(level=st.floats(0.0, 1.0, **finite))
    @settings(max_examples=15, deadline=None)
    def test_more_caching_lowers_mean_state(self, level):
        density0 = initial_density(_GRID, _CFG)
        lo = _FPK.solve(np.full(_GRID.path_shape, 0.0), density0)
        hi = _FPK.solve(np.full(_GRID.path_shape, max(level, 0.3)), density0)
        mean_lo = _GRID.expectation(lo[-1], _GRID.q_mesh())
        mean_hi = _GRID.expectation(hi[-1], _GRID.q_mesh())
        assert mean_hi <= mean_lo + 1e-6


class TestHJBProperties:
    @given(offset=st.floats(0.0, 50.0, **finite))
    @settings(max_examples=15, deadline=None)
    def test_comparison_principle_terminal_shift(self, offset):
        # V solved from terminal condition G + c dominates V from G
        # pointwise (monotone scheme + constant shift invariance).
        base = _HJB.solve(_MF, terminal_value=np.zeros(_GRID.shape))
        shifted = _HJB.solve(
            _MF, terminal_value=np.full(_GRID.shape, offset)
        )
        assert np.all(shifted.value[0] >= base.value[0] - 1e-8)
        # For a constant shift the gap is exactly the shift.
        assert np.allclose(shifted.value[0] - base.value[0], offset, atol=1e-6)

    @given(
        lo=st.floats(0.0, 40.0, **finite),
        hi=st.floats(0.0, 40.0, **finite),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_comparison_principle_random_terminals(self, lo, hi, seed):
        rng = np.random.default_rng(seed)
        g1 = rng.uniform(0.0, min(lo, hi) + 1e-6, _GRID.shape)
        g2 = g1 + rng.uniform(0.0, abs(hi - lo) + 1e-6, _GRID.shape)
        v1 = _HJB.solve(_MF, terminal_value=g1).value[0]
        v2 = _HJB.solve(_MF, terminal_value=g2).value[0]
        assert np.all(v2 >= v1 - 1e-8)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_policy_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        terminal = rng.uniform(0.0, 30.0, _GRID.shape)
        table = _HJB.solve(_MF, terminal_value=terminal).policy.table
        assert np.all(table >= 0.0)
        assert np.all(table <= 1.0)
