"""Property-based tests for the economic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.cases import CaseProbabilities
from repro.economics.costs import placement_cost, staleness_cost
from repro.economics.income import trading_income
from repro.economics.pricing import finite_population_price, mean_field_price
from repro.economics.sharing import mean_field_sharing_benefit

finite = dict(allow_nan=False, allow_infinity=False)


class TestCaseProperties:
    @given(
        alpha=st.floats(0.05, 0.95, **finite),
        smoothing=st.floats(0.01, 5.0, **finite),
        q=st.floats(0.0, 100.0, **finite),
        q_other=st.floats(0.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_of_unity(self, alpha, smoothing, q, q_other):
        cases = CaseProbabilities(alpha=alpha, smoothing=smoothing)
        p1, p2, p3 = cases.all(q, q_other, 100.0)
        for p in (p1, p2, p3):
            assert -1e-12 <= float(p) <= 1.0 + 1e-12
        assert float(p1 + p2 + p3) == pytest.approx(1.0, abs=1e-9)

    @given(
        q=st.floats(0.0, 100.0, **finite),
        q_lo=st.floats(0.0, 100.0, **finite),
        q_hi=st.floats(0.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_p2_monotone_in_peer_state(self, q, q_lo, q_hi):
        # A peer with more cached content (smaller remaining space)
        # can only make case 2 more likely.
        cases = CaseProbabilities(alpha=0.2, smoothing=0.5)
        lo, hi = sorted((q_lo, q_hi))
        assert float(cases.p2(q, lo, 100.0)) >= float(cases.p2(q, hi, 100.0)) - 1e-12


class TestPricingProperties:
    @given(
        p_hat=st.floats(0.01, 10.0, **finite),
        eta1=st.floats(0.0, 0.1, **finite),
        controls=st.lists(st.floats(0.0, 1.0, **finite), min_size=2, max_size=20),
        edp=st.integers(0, 19),
    )
    @settings(max_examples=200, deadline=None)
    def test_price_never_exceeds_p_hat(self, p_hat, eta1, controls, edp):
        strategies = np.array(controls)
        edp = edp % strategies.shape[0]
        price = finite_population_price(p_hat, eta1, 100.0, strategies, edp)
        assert 0.0 <= price <= p_hat + 1e-12

    @given(
        p_hat=st.floats(0.01, 10.0, **finite),
        eta1=st.floats(0.0, 0.1, **finite),
        mc1=st.floats(0.0, 1.0, **finite),
        mc2=st.floats(0.0, 1.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_mean_field_price_monotone_in_supply(self, p_hat, eta1, mc1, mc2):
        lo, hi = sorted((mc1, mc2))
        p_lo = float(mean_field_price(p_hat, eta1, 100.0, lo))
        p_hi = float(mean_field_price(p_hat, eta1, 100.0, hi))
        assert p_hi <= p_lo + 1e-12


class TestIncomeAndCostProperties:
    @given(
        n=st.floats(0.0, 50.0, **finite),
        price=st.floats(0.0, 5.0, **finite),
        q=st.floats(0.0, 100.0, **finite),
        q_other=st.floats(0.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_income_non_negative(self, n, price, q, q_other):
        cases = CaseProbabilities(alpha=0.2, smoothing=0.5)
        p1, p2, p3 = cases.all(q, q_other, 100.0)
        income = trading_income(n, price, p1, p2, p3, q, q_other, 100.0)
        assert float(income) >= -1e-9

    @given(x1=st.floats(0.0, 1.0, **finite), x2=st.floats(0.0, 1.0, **finite))
    @settings(max_examples=100, deadline=None)
    def test_placement_cost_monotone(self, x1, x2):
        lo, hi = sorted((x1, x2))
        assert float(placement_cost(hi, 2.0, 90.0)) >= float(
            placement_cost(lo, 2.0, 90.0)
        )

    @given(
        x=st.floats(0.0, 1.0, **finite),
        q=st.floats(0.0, 100.0, **finite),
        q_other=st.floats(0.0, 100.0, **finite),
        n=st.floats(0.0, 20.0, **finite),
        rate=st.floats(1.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_staleness_non_negative(self, x, q, q_other, n, rate):
        cases = CaseProbabilities(alpha=0.2, smoothing=0.5)
        p1, p2, p3 = cases.all(q, q_other, 100.0)
        cost = staleness_cost(
            x, q, q_other, p1, p2, p3, n, rate, 20.0, 100.0, 10.0
        )
        assert float(cost) >= -1e-9

    @given(
        transfer=st.floats(0.0, 100.0, **finite),
        case3=st.floats(0.0, 100.0, **finite),
        qualified=st.floats(0.0, 100.0, **finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_sharing_benefit_non_negative(self, transfer, case3, qualified):
        benefit = mean_field_sharing_benefit(0.3, transfer, 100, case3, qualified)
        assert float(benefit) >= 0.0
