"""Property suite for the streaming request pipeline (repro.serve.stream).

Three contracts from the serving spec, checked over randomised
generators, seeds, chunk sizes, and shard layouts:

* **Streamed == materialized** — concatenating ``iter_chunks`` at ANY
  chunk size is bit-identical to ``materialize()`` for every workload
  generator (counts and per-request timeliness draws alike).
* **Chunk independence** — chunk ``k`` regenerated in isolation equals
  the ``k``-th element of the sequential iteration, and fast-forward
  iteration equals the suffix: the per-``(EDP, slot)`` RNG keying
  leaves no generator state to carry.
* **Engine invariance** — a streamed replay's report is identical
  across chunk sizes, shard counts, and execution backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.engine import ServingEngine
from repro.serve.stream import (
    DiurnalStream,
    FixedPopularityStream,
    FlashCrowdStream,
    ShuffledZipfStream,
    ZipfStream,
    concat_chunks,
    stream_workload,
)

GENERATOR_KINDS = ("zipf", "shuffled-zipf", "diurnal", "flash-crowd", "fixed")

N_SLOTS = 10


def make_generator(kind, seed, n_edps=3, warmup_slots=0):
    """A small instance of every streaming workload generator."""
    common = dict(
        n_edps=n_edps,
        n_slots=N_SLOTS,
        dt=0.4,
        rate_per_edp=25.0,
        seed=seed,
        warmup_slots=warmup_slots,
    )
    if kind == "zipf":
        return ZipfStream(n_catalog=6, alpha=0.9, **common)
    if kind == "shuffled-zipf":
        return ShuffledZipfStream(n_catalog=6, alpha=1.1, **common)
    if kind == "diurnal":
        return DiurnalStream(
            n_catalog=6,
            period_slots=6,
            phase_multipliers=(0.5, 1.5, 1.0),
            **common,
        )
    if kind == "flash-crowd":
        return FlashCrowdStream(
            n_catalog=6,
            spike_content=1,
            spike_slot=3,
            spike_duration=2,
            spike_factor=6.0,
            **common,
        )
    if kind == "fixed":
        return FixedPopularityStream(shares=(4.0, 2.0, 1.0, 1.0), **common)
    raise AssertionError(kind)


def assert_chunks_bit_identical(a, b):
    assert a.edp == b.edp
    assert a.start_slot == b.start_slot
    assert a.dt == b.dt
    assert a.counts.dtype == b.counts.dtype
    assert a.counts.shape == b.counts.shape
    assert a.counts.tobytes() == b.counts.tobytes()
    assert a.timeliness.tobytes() == b.timeliness.tobytes()


class TestStreamedVsMaterialized:
    @given(
        kind=st.sampled_from(GENERATOR_KINDS),
        seed=st.integers(0, 2**16),
        chunk_slots=st.integers(1, N_SLOTS + 2),
        edp=st.integers(0, 2),
    )
    @settings(max_examples=80, deadline=None)
    def test_concat_of_any_chunking_equals_materialize(
        self, kind, seed, chunk_slots, edp
    ):
        stream = make_generator(kind, seed)
        chunks = list(stream.iter_chunks(edp, chunk_slots))
        assert len(chunks) == stream.n_chunks(chunk_slots)
        assert sum(c.n_slots for c in chunks) == stream.n_slots
        assert_chunks_bit_identical(concat_chunks(chunks), stream.materialize(edp))

    @given(
        kind=st.sampled_from(GENERATOR_KINDS),
        seed=st.integers(0, 2**16),
        a=st.integers(1, N_SLOTS),
        b=st.integers(1, N_SLOTS),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_chunkings_agree_with_each_other(self, kind, seed, a, b):
        stream = make_generator(kind, seed)
        fused_a = concat_chunks(list(stream.iter_chunks(0, a)))
        fused_b = concat_chunks(list(stream.iter_chunks(0, b)))
        assert_chunks_bit_identical(fused_a, fused_b)


class TestChunkIndependence:
    @given(
        kind=st.sampled_from(GENERATOR_KINDS),
        seed=st.integers(0, 2**16),
        chunk_slots=st.integers(1, N_SLOTS),
        index=st.integers(0, N_SLOTS - 1),
        edp=st.integers(0, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunk_regenerates_in_isolation(
        self, kind, seed, chunk_slots, index, edp
    ):
        stream = make_generator(kind, seed)
        index %= stream.n_chunks(chunk_slots)
        alone = stream.chunk(edp, index, chunk_slots)
        in_sequence = list(stream.iter_chunks(edp, chunk_slots))[index]
        assert_chunks_bit_identical(alone, in_sequence)

    @given(
        kind=st.sampled_from(GENERATOR_KINDS),
        seed=st.integers(0, 2**16),
        chunk_slots=st.integers(1, N_SLOTS),
        start=st.integers(0, N_SLOTS - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_forward_matches_suffix(self, kind, seed, chunk_slots, start):
        stream = make_generator(kind, seed)
        start %= stream.n_chunks(chunk_slots)
        suffix = list(stream.iter_chunks(0, chunk_slots))[start:]
        resumed = list(stream.iter_chunks(0, chunk_slots, start_chunk=start))
        assert len(suffix) == len(resumed)
        for a, b in zip(suffix, resumed):
            assert_chunks_bit_identical(a, b)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_edps_draw_independent_streams(self, seed):
        stream = make_generator("zipf", seed, n_edps=2)
        a = stream.materialize(0)
        b = stream.materialize(1)
        # Different spawn keys: equality would mean the keying is broken
        # (astronomically unlikely to collide on a full trace).
        assert (
            a.counts.tobytes() != b.counts.tobytes()
            or a.timeliness.tobytes() != b.timeliness.tobytes()
        )

    @given(seed=st.integers(0, 2**16), slot=st.integers(0, N_SLOTS - 1))
    @settings(max_examples=20, deadline=None)
    def test_policy_rng_is_reproducible_per_cell(self, seed, slot):
        stream = make_generator("zipf", seed)
        first = stream.policy_rng(0, slot).random(4)
        again = stream.policy_rng(0, slot).random(4)
        assert first.tobytes() == again.tobytes()
        # ... and distinct from the request domain of the same cell.
        requests = stream.request_rng(0, slot).random(4)
        assert first.tobytes() != requests.tobytes()


def streamed_report(chunk, shards, backend=None, seed=11):
    """One streamed replay, reduced to a fully-ordered comparison key."""
    stream = ZipfStream(
        n_catalog=6,
        n_edps=4,
        n_slots=N_SLOTS,
        dt=0.4,
        rate_per_edp=30.0,
        seed=seed,
    )
    engine = ServingEngine(
        stream_workload(stream),
        4,
        capacity_fraction=0.4,
        stream=stream,
        stream_chunk=chunk,
        shards=shards,
        executor=backend,
    )
    reports = engine.compare(["lru", "lfu"])
    return tuple(
        (
            r.policy,
            r.requests,
            r.hits,
            r.revenue,
            tuple(
                (
                    e.edp,
                    e.requests,
                    e.hits,
                    e.staleness_violations,
                    e.refreshes,
                    e.backhaul_mb,
                    e.revenue,
                    e.latency_s,
                )
                for e in r.per_edp
            ),
        )
        for r in reports
    )


class TestEngineInvariance:
    # One shared oracle replay; every drawn (chunk, shards) must match it.
    _baseline = None

    @classmethod
    def baseline(cls):
        if cls._baseline is None:
            cls._baseline = streamed_report(chunk=0, shards=1)
        return cls._baseline

    @given(
        chunk=st.integers(0, N_SLOTS + 2),
        shards=st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_report_invariant_under_chunking_and_sharding(self, chunk, shards):
        assert streamed_report(chunk, shards) == self.baseline()

    def test_process_backend_matches_serial(self):
        assert streamed_report(3, 2, backend="process:2") == self.baseline()

    def test_different_seed_changes_the_trace(self):
        assert streamed_report(0, 1, seed=12) != self.baseline()
