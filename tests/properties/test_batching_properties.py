"""Property-based tests for convergence masking in the batched solver.

The convergence mask lets each content drop out of the batch at its
own iteration, so the per-content convergence *order* is an arbitrary
interleaving decided by the drawn parameters.  Whatever that order
turns out to be, every lane's final equilibrium must agree with a
scalar solve of that lane alone — the mask may only change *when* a
lane stops, never *where* it stops.
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import BatchedBestResponseIterator, BestResponseIterator
from repro.core.parameters import MFGCPConfig

finite = dict(allow_nan=False, allow_infinity=False)

TOLERANCE = dict(rtol=1e-12, atol=1e-12)
"""The determinism-suite agreement bound.  The implementation promises
bit-identity (asserted in tests/core/test_batched_solver.py); the
property keeps the documented tolerance so hypothesis shrinking reports
genuine divergence rather than representation noise."""


def tiny_config(**overrides):
    base = replace(
        MFGCPConfig.fast(), n_time_steps=10, n_h=5, n_q=9, max_iterations=8
    )
    return replace(base, **overrides)


lane_spec = st.fixed_dictionaries(
    dict(
        content_size=st.floats(3.0, 24.0, **finite),
        popularity=st.floats(0.05, 1.0, **finite),
        timeliness=st.floats(1.0, 4.0, **finite),
        n_requests=st.floats(1.0, 60.0, **finite),
    )
)


class TestInterleavedConvergence:
    @given(specs=st.lists(lane_spec, min_size=2, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_any_interleaving_matches_solo_solves(self, specs):
        configs = [tiny_config(**spec) for spec in specs]
        batched = BatchedBestResponseIterator(configs).solve()
        for cfg, result in zip(configs, batched):
            solo = BestResponseIterator(cfg).solve()
            np.testing.assert_allclose(result.value, solo.value, **TOLERANCE)
            np.testing.assert_allclose(
                result.policy.table, solo.policy.table, **TOLERANCE
            )
            np.testing.assert_allclose(
                result.density, solo.density, **TOLERANCE
            )
            assert result.report.n_iterations == solo.report.n_iterations
            assert result.report.converged == solo.report.converged

    @given(
        specs=st.lists(lane_spec, min_size=3, max_size=3),
        order=st.permutations([0, 1, 2]),
    )
    @settings(max_examples=8, deadline=None)
    def test_lane_order_never_matters(self, specs, order):
        # Reordering the batch permutes the results and nothing else:
        # each lane's equilibrium is independent of its neighbours.
        configs = [tiny_config(**spec) for spec in specs]
        forward = BatchedBestResponseIterator(configs).solve()
        shuffled = BatchedBestResponseIterator(
            [configs[i] for i in order]
        ).solve()
        for slot, i in enumerate(order):
            assert np.array_equal(shuffled[slot].value, forward[i].value)
            assert np.array_equal(
                shuffled[slot].policy.table, forward[i].policy.table
            )
            assert np.array_equal(shuffled[slot].density, forward[i].density)
