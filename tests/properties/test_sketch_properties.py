"""Property-based tests for the streaming quantile sketch.

Two contracts under test, over adversarial distributions:

* **Error bound** — for any multiset of finite observations,
  ``QuantileSketch.quantile(p)`` lies within the documented relative
  error of the exact nearest-rank order statistic
  (``numpy.percentile(..., method="inverted_cdf")``).  Hypothesis
  drives constant, bimodal, and heavy-tailed Zipf-like streams — the
  shapes that break naive fixed-bucket histograms.
* **Merge order-independence** — sharding a stream arbitrarily and
  merging the shard sketches in any permutation yields a sketch
  *identical* (``==``, bucket-for-bucket) to the single-stream sketch.
  This is the property that lets sketch-backed histograms ride the
  ordered telemetry merge without breaking the serial-vs-parallel
  bit-identity contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import QuantileSketch

ACCURACY = 0.01

finite_values = st.floats(
    min_value=-1e12, max_value=1e12,
    allow_nan=False, allow_infinity=False,
)

percentiles = st.floats(min_value=0.0, max_value=100.0)


def assert_within_bound(sketch, values, p):
    exact = float(
        np.percentile(np.asarray(values, dtype=float), p, method="inverted_cdf")
    )
    approx = sketch.quantile(p)
    assert abs(approx - exact) <= ACCURACY * abs(exact) + 1e-12, (
        f"p={p}: sketch {approx} vs exact {exact}"
    )


def build(values):
    sketch = QuantileSketch(ACCURACY)
    sketch.record_many(values)
    return sketch


class TestErrorBound:
    @given(value=finite_values, n=st.integers(1, 500), p=percentiles)
    @settings(max_examples=60, deadline=None)
    def test_constant_stream(self, value, n, p):
        values = [value] * n
        assert_within_bound(build(values), values, p)

    @given(
        low=st.floats(min_value=1e-6, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
        ratio=st.floats(min_value=1.0, max_value=1e9,
                        allow_nan=False, allow_infinity=False),
        n_low=st.integers(1, 200),
        n_high=st.integers(1, 200),
        p=percentiles,
    )
    @settings(max_examples=60, deadline=None)
    def test_bimodal_stream(self, low, ratio, n_low, n_high, p):
        values = [low] * n_low + [low * ratio] * n_high
        assert_within_bound(build(values), values, p)

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(10, 2000), p=percentiles)
    @settings(max_examples=40, deadline=None)
    def test_heavy_tailed_zipf(self, seed, n, p):
        rng = np.random.default_rng(seed)
        # Zipf ranks scaled into latency-like magnitudes: a heavy tail
        # spanning many decades, the worst case for bucketed sketches.
        values = [1e-4 * float(z) for z in rng.zipf(a=1.5, size=n)]
        assert_within_bound(build(values), values, p)

    @given(values=st.lists(finite_values, min_size=1, max_size=300), p=percentiles)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_mixed_sign_stream(self, values, p):
        assert_within_bound(build(values), values, p)


class TestMergeOrderIndependence:
    @given(
        values=st.lists(finite_values, min_size=0, max_size=200),
        n_shards=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_merge_equals_single_stream(self, values, n_shards, data):
        assignment = data.draw(
            st.lists(
                st.integers(0, n_shards - 1),
                min_size=len(values), max_size=len(values),
            )
        )
        order = data.draw(st.permutations(range(n_shards)))

        whole = build(values)
        shards = [QuantileSketch(ACCURACY) for _ in range(n_shards)]
        for value, shard in zip(values, assignment):
            shards[shard].record(value)
        merged = QuantileSketch(ACCURACY)
        for index in order:
            merged.merge(shards[index])

        assert merged == whole
        assert merged.count == whole.count
        if values:
            assert merged.min == whole.min and merged.max == whole.max
            for p in (5, 50, 95):
                assert merged.quantile(p) == whole.quantile(p)

    @given(values=st.lists(finite_values, min_size=1, max_size=100), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_record_order_irrelevant(self, values, data):
        shuffled = data.draw(st.permutations(values))
        assert build(shuffled) == build(values)
