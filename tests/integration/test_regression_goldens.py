"""Regression goldens: pin the headline equilibrium statistics.

These values were recorded from the calibrated default configuration
(EXPERIMENTS.md documents the same numbers).  Tolerances are loose
enough to survive BLAS/numpy version drift but tight enough to catch
an accidental change to the model, calibration, or solvers.
"""

import numpy as np
import pytest

from repro.baselines.mfg_cp import MFGCPScheme
from repro.game.simulator import GameSimulator


class TestEquilibriumGoldens:
    def test_convergence_envelope(self, solved_equilibrium):
        report = solved_equilibrium.report
        assert report.converged
        assert 5 <= report.n_iterations <= 30

    def test_final_mean_cache_state(self, solved_equilibrium):
        # Recorded: 34.1 MB remaining out of 100 MB.
        assert solved_equilibrium.mean_field.mean_q[-1] == pytest.approx(34.1, abs=3.0)

    def test_total_utility(self, solved_equilibrium):
        # Recorded: 98.5.
        total = solved_equilibrium.accumulated_utility()["total"]
        assert total == pytest.approx(98.5, abs=10.0)

    def test_price_floor(self, solved_equilibrium):
        # Recorded: minimum price 0.600 under peak supply.
        assert solved_equilibrium.mean_field.price.min() == pytest.approx(0.60, abs=0.04)

    def test_peak_population_control(self, solved_equilibrium):
        # Recorded: peak E[x*] ~ 1.0 at the start of the epoch.
        assert solved_equilibrium.mean_field.mean_control.max() > 0.9

    def test_staleness_income_balance(self, solved_equilibrium):
        acc = solved_equilibrium.accumulated_utility()
        # Recorded: income 345.6, staleness 218.7.
        assert acc["trading_income"] == pytest.approx(345.6, rel=0.1)
        assert acc["staleness_cost"] == pytest.approx(218.7, rel=0.15)


class TestSimulationGoldens:
    def test_mfgcp_population_utility(self, solved_equilibrium):
        sim = GameSimulator(
            solved_equilibrium.config,
            [(MFGCPScheme(equilibrium=solved_equilibrium), 100)],
            rng=np.random.default_rng(0),
        )
        total = sim.run().total_utility("MFG-CP")
        # Recorded: ~104 at M = 100, seed 0 (sharing adds a few units
        # of delay savings over the mean-field prediction).
        assert total == pytest.approx(104.0, abs=15.0)
