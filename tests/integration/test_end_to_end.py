"""End-to-end integration: solver <-> finite population <-> economics.

These tests tie the whole pipeline together: the solved mean-field
equilibrium must (a) be internally consistent, (b) predict the finite
population it approximates, and (c) reproduce the paper's qualitative
equilibrium shape.
"""

import numpy as np
import pytest

from repro.analysis.metrics import mean_field_gap
from repro.baselines.mfg_cp import MFGCPScheme
from repro.economics.pricing import finite_population_price
from repro.game.simulator import GameSimulator


@pytest.fixture(scope="module")
def population_report(solved_equilibrium):
    sim = GameSimulator(
        solved_equilibrium.config,
        [(MFGCPScheme(equilibrium=solved_equilibrium), 150)],
        rng=np.random.default_rng(0),
    )
    return sim.run()


class TestMeanFieldPredictsPopulation:
    def test_mean_cache_state_tracks(self, solved_equilibrium, population_report):
        gap = mean_field_gap(solved_equilibrium, population_report)
        assert gap["mean_q_rmse"] < 5.0, gap

    def test_price_tracks(self, solved_equilibrium, population_report):
        gap = mean_field_gap(solved_equilibrium, population_report)
        assert gap["price_rmse"] < 0.02, gap

    def test_utility_level_tracks(self, solved_equilibrium, population_report):
        mf_total = solved_equilibrium.accumulated_utility()["total"]
        sim_total = population_report.total_utility("MFG-CP")
        assert sim_total == pytest.approx(mf_total, rel=0.35)

    def test_empirical_density_matches_fpk_marginal(
        self, solved_equilibrium, population_report
    ):
        # Final-time histogram vs FPK marginal over q: same mode region.
        grid = solved_equilibrium.grid
        marginal = grid.marginal_q(solved_equilibrium.density[-1])
        mode_q = grid.q[int(np.argmax(marginal))]
        sim_mean = population_report.final_state.remaining.mean()
        assert abs(sim_mean - solved_equilibrium.mean_field.mean_q[-1]) < 6.0
        assert abs(mode_q - np.median(population_report.final_state.remaining)) < 20.0


class TestEq5Eq17Consistency:
    def test_mean_field_price_is_large_m_limit(self, solved_equilibrium):
        # At any time, plugging the population-average control into
        # Eq. (5) for a large synthetic population reproduces Eq. (17).
        mf = solved_equilibrium.mean_field
        cfg = solved_equilibrium.config
        for ti in (0, len(mf.price) // 2, -1):
            level = float(mf.mean_control[ti])
            strategies = np.full(4000, level)
            finite = finite_population_price(
                cfg.p_hat, cfg.eta1, cfg.content_size, strategies, 0
            )
            assert finite == pytest.approx(float(mf.price[ti]), abs=1e-6)


class TestEquilibriumShape:
    def test_policy_increases_with_remaining_space(self, solved_equilibrium):
        # Fig. 5's headline shape at the start of the epoch.
        res = solved_equilibrium
        profile = res.policy.q_profile(0.0, res.config.channel.mean)
        assert profile[-2] > profile[1]

    def test_policy_decays_toward_horizon(self, solved_equilibrium):
        res = solved_equilibrium
        t_profile = res.policy.time_profile(res.config.channel.mean, 50.0)
        assert t_profile[-1] <= 0.05
        assert t_profile.max() > 0.3

    def test_population_caches_up_over_epoch(self, solved_equilibrium):
        mean_q = solved_equilibrium.mean_field.mean_q
        assert mean_q[-1] < mean_q[0] - 10.0

    def test_price_depressed_by_supply_then_recovers(self, solved_equilibrium):
        price = solved_equilibrium.mean_field.price
        p_hat = solved_equilibrium.config.p_hat
        # Early heavy caching supply depresses the price well below
        # p_hat (Eq. (17)); as the control decays toward the horizon
        # the price recovers.
        assert price.min() < p_hat - 0.05
        assert price[-1] > price.min() + 0.05

    def test_utility_rate_rises_over_epoch(self, solved_equilibrium):
        paths = solved_equilibrium.population_utility_path()
        total = paths["total"]
        assert total[-1] > total[0]


class TestSharingImprovesUtility:
    def test_mfgcp_beats_no_sharing(self, solved_equilibrium):
        # The paper's core comparative claim, at the mean-field level:
        # run the no-sharing variant and compare simulated utilities
        # inside the same market.
        from repro.baselines.mfg_nosharing import MFGNoSharingScheme

        cfg = solved_equilibrium.config
        mfg = MFGNoSharingScheme()
        totals = {}
        for name, scheme in (("MFG-CP", MFGCPScheme(equilibrium=solved_equilibrium)),
                             ("MFG", mfg)):
            utilities = []
            for seed in (0, 1, 2):
                sim = GameSimulator(
                    cfg, [(scheme, 80)], rng=np.random.default_rng(seed)
                )
                utilities.append(sim.run().total_utility(name))
            totals[name] = float(np.mean(utilities))
        assert totals["MFG-CP"] > totals["MFG"], totals
