"""Integration: trace-driven Alg. 1 epochs over a content catalog."""

import numpy as np
import pytest

from repro.content.catalog import ContentCatalog
from repro.content.popularity import PopularityTracker, ZipfPopularity
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.content.trace import SyntheticYouTubeTrace, trace_to_popularity
from repro.core.solver import MFGCPSolver


@pytest.fixture(scope="module")
def epoch_run(fast_config=None):
    from repro.core.parameters import MFGCPConfig

    config = MFGCPConfig.fast()
    rng = np.random.default_rng(7)
    trace = SyntheticYouTubeTrace(n_videos=800, rng=rng)
    labels, shares = trace_to_popularity(trace.generate(), n_contents=5)
    catalog = ContentCatalog.uniform(5, size_mb=100.0, names=labels)
    tracker = PopularityTracker(prior=ZipfPopularity(n_contents=5))
    tracker.observe(shares * 500.0)
    requests = RequestProcess(
        n_contents=5,
        rate_per_edp=40.0,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=rng,
    )
    solver = MFGCPSolver(config)
    epochs = solver.run_epochs(
        catalog,
        requests,
        n_epochs=2,
        popularity_tracker=tracker,
        max_active_contents=2,
    )
    return catalog, epochs


class TestTraceDrivenEpochs:
    def test_two_epochs_produced(self, epoch_run):
        _, epochs = epoch_run
        assert [e.epoch for e in epochs] == [0, 1]

    def test_active_set_bounded(self, epoch_run):
        _, epochs = epoch_run
        for epoch in epochs:
            assert 1 <= len(epoch.active_contents) <= 2

    def test_equilibria_converged(self, epoch_run):
        _, epochs = epoch_run
        for epoch in epochs:
            for res in epoch.equilibria.values():
                assert res.report.n_iterations >= 1
                assert res.report.final_policy_change < 0.05

    def test_popular_content_prices_lower(self, epoch_run):
        # More popular content attracts more caching supply, which
        # depresses its mean price relative to p_hat (Eq. (17)).
        _, epochs = epoch_run
        epoch = epochs[0]
        top = epoch.active_contents[0]
        res = epoch.equilibria[top]
        assert res.mean_field.price.min() < res.config.p_hat

    def test_popularity_is_distribution_every_epoch(self, epoch_run):
        _, epochs = epoch_run
        for epoch in epochs:
            assert epoch.popularity.sum() == pytest.approx(1.0)
            assert np.all(epoch.popularity >= 0.0)

    def test_timeliness_within_model_range(self, epoch_run):
        _, epochs = epoch_run
        for epoch in epochs:
            assert np.all(epoch.timeliness >= 0.0)
            assert np.all(epoch.timeliness <= 3.0)

    def test_per_content_requests_scale_with_popularity(self, epoch_run):
        _, epochs = epoch_run
        epoch = epochs[0]
        if len(epoch.active_contents) >= 2:
            top, second = epoch.active_contents[:2]
            top_requests = epoch.equilibria[top].mean_field.n_requests[0]
            second_requests = epoch.equilibria[second].mean_field.n_requests[0]
            assert top_requests >= second_requests
