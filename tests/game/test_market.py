"""Unit tests for the shared market-clearing step."""

import numpy as np
import pytest

from repro.core.parameters import MFGCPConfig
from repro.economics.pricing import finite_population_price
from repro.game.market import MarketStep, clear_market, finite_prices, match_sharing


@pytest.fixture
def cfg(fast_config):
    return fast_config


def run_market(cfg, remaining, controls, sharing=None, requests=5.0, seed=0):
    remaining = np.asarray(remaining, dtype=float)
    m = remaining.shape[0]
    controls = np.broadcast_to(np.asarray(controls, dtype=float), (m,))
    sharing = (
        np.ones(m, dtype=bool) if sharing is None else np.asarray(sharing, dtype=bool)
    )
    return clear_market(
        cfg,
        cfg.content_size,
        requests,
        remaining,
        controls,
        np.full(m, 40.0),
        sharing,
        np.random.default_rng(seed),
    )


class TestFinitePrices:
    def test_matches_economics_module(self, cfg):
        controls = np.array([0.2, 0.8, 0.5])
        prices = finite_prices(cfg, cfg.content_size, controls)
        for i in range(3):
            assert prices[i] == pytest.approx(
                finite_population_price(
                    cfg.p_hat, cfg.eta1, cfg.content_size, controls, i
                )
            )

    def test_monopoly(self, cfg):
        assert finite_prices(cfg, 100.0, np.array([0.9]))[0] == cfg.p_hat


class TestMatchSharing:
    def test_no_pool_no_case2(self, cfg):
        remaining = np.array([90.0, 80.0, 70.0])  # nobody qualified
        case2, served, sharers = match_sharing(
            cfg, remaining, np.ones(3, dtype=bool), 20.0, np.random.default_rng(0)
        )
        assert not case2.any()
        assert served.size == 0

    def test_capacity_respected(self, cfg):
        from dataclasses import replace

        tight = replace(cfg, sharer_capacity=2)
        remaining = np.array([10.0] + [80.0] * 9)  # 1 sharer, 9 buyers
        case2, served, sharers = match_sharing(
            tight, remaining, np.ones(10, dtype=bool), 20.0,
            np.random.default_rng(1),
        )
        assert case2.sum() == 2  # one sharer times capacity 2
        assert np.all(sharers == 0)

    def test_sharers_never_buyers(self, cfg):
        remaining = np.array([10.0, 15.0, 80.0, 90.0])
        case2, served, sharers = match_sharing(
            cfg, remaining, np.ones(4, dtype=bool), 20.0, np.random.default_rng(2)
        )
        assert set(served).isdisjoint({0, 1})
        assert set(sharers) <= {0, 1}

    def test_non_participants_excluded(self, cfg):
        remaining = np.array([10.0, 80.0])
        sharing = np.array([False, True])  # the only sharer opted out
        case2, served, _ = match_sharing(
            cfg, remaining, sharing, 20.0, np.random.default_rng(3)
        )
        assert served.size == 0


class TestClearMarket:
    def test_utility_identity(self, cfg):
        step = run_market(cfg, [10.0, 50.0, 90.0], 0.5)
        manual = (
            step.trading_income
            + step.sharing_benefit
            - step.placement_cost
            - step.staleness_cost
            - step.sharing_cost
        )
        assert np.allclose(step.utility, manual)

    def test_cases_partition(self, cfg):
        step = run_market(cfg, np.linspace(0, 100, 12), 0.5)
        total = step.case1.astype(int) + step.case2.astype(int) + step.case3.astype(int)
        assert np.all(total == 1)

    def test_sharing_flows_balance(self, cfg):
        step = run_market(cfg, np.linspace(0, 100, 20), 0.5, seed=4)
        assert step.sharing_benefit.sum() == pytest.approx(
            step.sharing_cost.sum(), rel=1e-12
        )

    def test_case1_income_sells_cached_portion(self, cfg):
        # A fully-cached monopolist: income = requests * p_hat * Q.
        step = run_market(cfg, [0.0], 0.0, requests=5.0)
        assert step.case1[0]
        assert step.trading_income[0] == pytest.approx(
            5.0 * cfg.p_hat * cfg.content_size
        )

    def test_case3_pays_backhaul_delay(self, cfg):
        # One lacking EDP with no sharers: case 3 with the q/H_c term.
        step = run_market(cfg, [90.0], 0.0, requests=5.0)
        assert step.case3[0]
        expected = cfg.eta2 * 5.0 * (90.0 / cfg.backhaul_rate + cfg.content_size / 40.0)
        assert step.staleness_cost[0] == pytest.approx(expected)

    def test_zero_requests_zero_income(self, cfg):
        step = run_market(cfg, [50.0, 60.0], 0.3, requests=0.0)
        assert np.all(step.trading_income == 0.0)
        # Placement cost survives (the EDP still caches).
        assert np.all(step.placement_cost > 0.0)

    def test_deterministic_for_seed(self, cfg):
        a = run_market(cfg, np.linspace(0, 100, 15), 0.5, seed=9)
        b = run_market(cfg, np.linspace(0, 100, 15), 0.5, seed=9)
        assert np.array_equal(a.utility, b.utility)
