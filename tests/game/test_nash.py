"""Tests for the approximate-Nash verification utilities."""

import numpy as np
import pytest

from repro.game.nash import ConstantScheme, DeviationProbe, exploitability


class TestConstantScheme:
    def test_decides_constant(self):
        scheme = ConstantScheme(0.4)
        decision = scheme.decide(0.0, np.zeros(7), np.zeros(7))
        assert np.all(decision.caching_rates == 0.4)

    def test_name_encodes_level(self):
        assert ConstantScheme(0.25).name == "const-0.25"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="level"):
            ConstantScheme(1.5)


class TestDeviationProbe:
    def test_gain(self):
        probe = DeviationProbe(
            deviation_name="x", equilibrium_utility=10.0, deviation_utility=8.0
        )
        assert probe.gain == pytest.approx(-2.0)


class TestExploitability:
    def test_equilibrium_hard_to_exploit(self, fast_config, solved_equilibrium):
        probes = exploitability(
            fast_config,
            solved_equilibrium,
            deviation_levels=(0.0, 0.5, 1.0),
            n_edps=40,
            seed=0,
        )
        assert len(probes) == 3
        base = probes[0].equilibrium_utility
        # Def. 3 (epsilon-Nash): no constant deviation should beat the
        # equilibrium policy by more than a modest epsilon relative to
        # the achieved utility.
        epsilon = max(p.gain for p in probes)
        assert epsilon < 0.25 * abs(base) + 5.0, (
            f"deviation gain {epsilon:.2f} too large vs base {base:.2f}"
        )

    def test_probe_names(self, fast_config, solved_equilibrium):
        probes = exploitability(
            fast_config, solved_equilibrium, deviation_levels=(0.3,), n_edps=10
        )
        assert probes[0].deviation_name == "const-0.30"

    def test_requires_two_edps(self, fast_config, solved_equilibrium):
        with pytest.raises(ValueError, match="at least 2"):
            exploitability(fast_config, solved_equilibrium, n_edps=1)
