"""Tests for the capacity-coupled multi-content game."""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.content.catalog import ContentCatalog
from repro.content.popularity import ZipfPopularity
from repro.core.parameters import MFGCPConfig
from repro.game.multi_content import MultiContentGameSimulator
from repro.game.nash import ConstantScheme


def make_sim(capacity=None, n_contents=3, n_edps=15, seed=0, factory=None,
             config=None):
    config = config if config is not None else MFGCPConfig.fast()
    catalog = ContentCatalog.uniform(n_contents, size_mb=100.0)
    popularity = ZipfPopularity(n_contents=n_contents).initial()
    factory = factory if factory is not None else (lambda: ConstantScheme(0.8))
    return MultiContentGameSimulator(
        config=config,
        catalog=catalog,
        popularity=popularity,
        assignments=[(factory, n_edps)],
        capacity=capacity,
        rng=np.random.default_rng(seed),
    )


class TestConstruction:
    def test_popularity_shape_checked(self):
        catalog = ContentCatalog.uniform(3)
        with pytest.raises(ValueError, match="popularity"):
            MultiContentGameSimulator(
                config=MFGCPConfig.fast(),
                catalog=catalog,
                popularity=[0.5, 0.5],
                assignments=[(lambda: ConstantScheme(0.5), 5)],
            )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_sim(capacity=0.0)

    def test_rejects_zero_mass_popularity(self):
        catalog = ContentCatalog.uniform(2)
        with pytest.raises(ValueError, match="positive mass"):
            MultiContentGameSimulator(
                config=MFGCPConfig.fast(),
                catalog=catalog,
                popularity=[0.0, 0.0],
                assignments=[(lambda: ConstantScheme(0.5), 5)],
            )

    def test_content_config_scales_demand(self):
        sim = make_sim()
        cfg0 = sim.content_config(0)
        cfg2 = sim.content_config(2)
        # Zipf: content 0 is most popular -> more requests.
        assert cfg0.n_requests > cfg2.n_requests
        assert cfg0.content_size == 100.0


class TestUncappedRun:
    def test_report_shapes(self):
        report = make_sim().run()
        assert report.per_edp_total.shape == (15,)
        assert report.per_content_utility.shape == (3,)
        assert np.all(np.isfinite(report.per_edp_total))

    def test_no_throttling_without_capacity(self):
        report = make_sim(capacity=None).run()
        assert np.all(report.throttled_fraction == 0.0)
        assert np.all(report.capacity_utilisation == 0.0)

    def test_popular_content_earns_more(self):
        report = make_sim(n_edps=25, seed=1).run()
        # Zipf demand: the top content generates the most utility mass.
        assert report.per_content_utility[0] > report.per_content_utility[-1]

    def test_total_utility_by_scheme(self):
        report = make_sim().run()
        total = report.total_utility()
        per_scheme = report.total_utility("const-0.80")
        assert total == pytest.approx(per_scheme)
        with pytest.raises(KeyError):
            report.total_utility("unknown")


class TestCapacityCoupling:
    def test_tight_capacity_throttles(self):
        # Catalog total is 300 MB; a 60 MB budget forces knapsack cuts.
        report = make_sim(capacity=60.0, seed=2).run()
        assert report.throttled_fraction.max() > 0.5

    def test_capacity_never_exceeded(self):
        cfg = MFGCPConfig.fast()
        sim = make_sim(capacity=60.0, seed=3, config=cfg)
        report = sim.run()
        # Utilisation stays near or below 1 (noise can push a hair over
        # between projection steps).
        assert report.capacity_utilisation.max() < 1.2

    def test_loose_capacity_matches_uncapped(self):
        capped = make_sim(capacity=1e6, seed=4).run()
        free = make_sim(capacity=None, seed=4).run()
        assert capped.total_utility() == pytest.approx(free.total_utility(), rel=1e-9)
        assert np.all(capped.throttled_fraction == 0.0)

    def test_tight_capacity_changes_outcome_and_saturates(self):
        free = make_sim(capacity=None, seed=5, n_edps=20).run()
        tight = make_sim(capacity=50.0, seed=5, n_edps=20).run()
        # The budget binds: every EDP is throttled, utilisation pins
        # near 1, and the economic outcome shifts materially.  (For an
        # over-caching constant scheme the cap can even *help* — it
        # cuts the quadratic placement cost while case-3 income
        # persists — so no sign is asserted, only a real effect.)
        assert tight.throttled_fraction.min() > 0.9
        assert tight.capacity_utilisation[-1] > 0.9
        assert abs(tight.total_utility() - free.total_utility()) > 10.0


class TestSchemeIntegration:
    def test_mpc_multi_content(self):
        report = make_sim(factory=MostPopularScheme, seed=6).run()
        assert np.all(np.isfinite(report.per_edp_total))

    def test_rr_multi_content(self):
        report = make_sim(factory=RandomReplacementScheme, seed=7).run()
        assert np.all(np.isfinite(report.per_edp_total))

    def test_per_content_scheme_instances_independent(self):
        sim = make_sim(factory=MostPopularScheme)
        sim.prepare()
        schemes = sim._scheme_lists[0]
        assert len(schemes) == 3
        assert len({id(s) for s in schemes}) == 3
