"""Tests for the finite-population state."""

import numpy as np
import pytest

from repro.core.parameters import MFGCPConfig
from repro.game.state import PopulationState


class TestPopulationState:
    def test_initial_respects_bounds(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng, n_edps=500)
        assert state.n_edps == 500
        assert np.all(state.remaining >= 0.0)
        assert np.all(state.remaining <= fast_config.content_size)

    def test_initial_moments(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng, n_edps=20000)
        mean, std = fast_config.initial_density_moments()
        assert state.remaining.mean() == pytest.approx(mean, rel=0.02)
        # Truncation shaves a little off the nominal std.
        assert state.remaining.std() == pytest.approx(std, rel=0.1)

    def test_initial_custom_moments(self, fast_config, rng):
        state = PopulationState.initial(
            fast_config, rng, n_edps=5000, mean_q=30.0, std_q=2.0
        )
        assert state.remaining.mean() == pytest.approx(30.0, abs=0.5)

    def test_initial_fading_stationary(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng, n_edps=20000)
        mean, std = fast_config.ou_process().stationary_moments()
        assert state.fading.mean() == pytest.approx(mean, abs=0.05)
        assert state.fading.std() == pytest.approx(std, rel=0.1)

    def test_defaults_to_config_population(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng)
        assert state.n_edps == fast_config.n_edps

    def test_copy_is_independent(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng, n_edps=10)
        clone = state.copy()
        clone.remaining[:] = 0.0
        assert state.remaining.max() > 0.0

    def test_empirical_density_normalised(self, fast_config, rng):
        state = PopulationState.initial(fast_config, rng, n_edps=1000)
        bins = np.linspace(0, 100, 21)
        density = state.empirical_density_q(bins)
        assert (density * np.diff(bins)).sum() == pytest.approx(1.0)

    def test_empirical_density_empty_bins(self):
        state = PopulationState(fading=np.array([5.0]), remaining=np.array([50.0]))
        density = state.empirical_density_q(np.array([90.0, 100.0]))
        assert np.all(density == 0.0)

    def test_validation(self, fast_config, rng):
        with pytest.raises(ValueError, match="matching"):
            PopulationState(fading=np.zeros(3), remaining=np.zeros(4))
        with pytest.raises(ValueError, match="at least one"):
            PopulationState.initial(fast_config, rng, n_edps=0)
        with pytest.raises(ValueError, match="bins"):
            PopulationState(
                fading=np.zeros(2), remaining=np.zeros(2)
            ).empirical_density_q(np.array([1.0]))
