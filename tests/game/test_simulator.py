"""Tests for the finite-population game simulator."""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.game.nash import ConstantScheme
from repro.game.simulator import GameSimulator
from repro.game.state import PopulationState


def make_sim(config, schemes=None, n=40, seed=0, **kw):
    schemes = schemes or [(RandomReplacementScheme(), n)]
    return GameSimulator(config, schemes, rng=np.random.default_rng(seed), **kw)


class TestRunBasics:
    def test_report_shapes(self, fast_config):
        report = make_sim(fast_config, n=40).run()
        n_steps = fast_config.n_time_steps
        assert report.times.shape == (n_steps + 1,)
        for series in report.series.values():
            assert series.shape == (n_steps + 1,)
        for values in report.per_edp.values():
            assert values.shape == (40,)

    def test_utility_identity(self, fast_config):
        report = make_sim(fast_config).run()
        per = report.per_edp
        manual = (
            per["trading_income"]
            + per["sharing_benefit"]
            - per["placement_cost"]
            - per["staleness_cost"]
            - per["sharing_cost"]
        )
        assert np.allclose(per["total"], manual, atol=1e-9)

    def test_final_state_within_bounds(self, fast_config):
        report = make_sim(fast_config).run()
        assert np.all(report.final_state.remaining >= 0.0)
        assert np.all(report.final_state.remaining <= fast_config.content_size)

    def test_prices_within_market_bounds(self, fast_config):
        report = make_sim(fast_config).run()
        assert np.all(report.series["mean_price"] <= fast_config.p_hat + 1e-9)
        assert np.all(report.series["mean_price"] >= 0.0)

    def test_reproducible_for_seed(self, fast_config):
        r1 = make_sim(fast_config, seed=3).run()
        r2 = make_sim(fast_config, seed=3).run()
        assert np.allclose(r1.per_edp["total"], r2.per_edp["total"])

    def test_custom_initial_state(self, fast_config, rng):
        sim = make_sim(fast_config, n=20)
        state0 = PopulationState.initial(fast_config, rng, n_edps=20, mean_q=30.0, std_q=1.0)
        report = sim.run(state0)
        assert report.series["mean_remaining"][0] == pytest.approx(30.0, abs=1.0)

    def test_rejects_mismatched_initial_state(self, fast_config, rng):
        sim = make_sim(fast_config, n=20)
        state0 = PopulationState.initial(fast_config, rng, n_edps=5)
        with pytest.raises(ValueError, match="EDPs"):
            sim.run(state0)

    def test_stochastic_requests_mode(self, fast_config):
        report = make_sim(fast_config, stochastic_requests=True).run()
        assert np.all(np.isfinite(report.per_edp["total"]))

    def test_single_edp_market(self, fast_config):
        cfg = replace(fast_config, n_edps=1)
        report = make_sim(cfg, schemes=[(ConstantScheme(0.5), 1)]).run()
        # A monopolist always charges p_hat.
        assert np.allclose(report.series["mean_price"], cfg.p_hat)


class TestSharingMechanics:
    def test_sharing_flows_balance(self, fast_config):
        # Money is conserved in the sharing market: total benefit paid
        # out equals total cost paid in.
        report = make_sim(fast_config, n=60, seed=1).run()
        assert report.per_edp["sharing_benefit"].sum() == pytest.approx(
            report.per_edp["sharing_cost"].sum(), rel=1e-9
        )

    def test_non_sharing_scheme_never_shares(self, fast_config):
        scheme = MFGNoSharingScheme()
        report = make_sim(fast_config, schemes=[(scheme, 30)], seed=2).run()
        assert np.all(report.per_edp["sharing_benefit"] == 0.0)
        assert np.all(report.per_edp["sharing_cost"] == 0.0)

    def test_mixed_population_sharing_only_among_participants(self, fast_config):
        sharing = ConstantScheme(0.9)
        non_sharing = MFGNoSharingScheme()
        report = make_sim(
            fast_config,
            schemes=[(sharing, 30), (non_sharing, 30)],
            seed=3,
        ).run()
        mask_ns = report.mask("MFG")
        assert np.all(report.per_edp["sharing_benefit"][mask_ns] == 0.0)
        assert np.all(report.per_edp["sharing_cost"][mask_ns] == 0.0)

    def test_sharer_capacity_limits_case2(self, fast_config):
        # With capacity 1 vs capacity 10 the same population serves
        # fewer buyers, so staleness (case-3 fallbacks) increases.
        low = replace(fast_config, sharer_capacity=1)
        high = replace(fast_config, sharer_capacity=10)
        stale = {}
        for name, cfg in (("low", low), ("high", high)):
            report = make_sim(cfg, schemes=[(ConstantScheme(0.9), 50)], seed=4).run()
            stale[name] = report.per_edp["staleness_cost"].mean()
        assert stale["low"] >= stale["high"]


class TestCaseSeriesAndTracking:
    def test_case_fractions_partition(self, fast_config):
        report = make_sim(fast_config, n=40, seed=8).run()
        total = (
            report.series["case1_fraction"]
            + report.series["case2_fraction"]
            + report.series["case3_fraction"]
        )
        # Every decision step assigns each EDP exactly one case.
        assert np.allclose(total[:-1], 1.0)

    def test_caching_population_moves_into_case1(self, fast_config):
        report = make_sim(
            fast_config, schemes=[(ConstantScheme(1.0), 40)], seed=9
        ).run()
        c1 = report.series["case1_fraction"]
        assert c1[-2] > c1[0]

    def test_tracked_trajectories(self, fast_config, rng):
        sim = make_sim(fast_config, n=20, seed=10, track_indices=[0, 5, 19])
        state0 = PopulationState.initial(fast_config, rng, n_edps=20)
        report = sim.run(state0)
        assert report.tracked_remaining is not None
        assert report.tracked_remaining.shape == (
            fast_config.n_time_steps + 1,
            3,
        )
        assert report.tracked_remaining[0, 0] == pytest.approx(state0.remaining[0])

    def test_tracking_disabled_by_default(self, fast_config):
        report = make_sim(fast_config).run()
        assert report.tracked_remaining is None

    def test_track_indices_validated(self, fast_config):
        from repro.game.simulator import GameSimulator

        with pytest.raises(ValueError, match="track_indices"):
            GameSimulator(
                fast_config,
                [(RandomReplacementScheme(), 5)],
                track_indices=[7],
            )


class TestTopologyIntegration:
    def make_topology(self, n_edps, n_requesters=60, seed=0, area=800.0):
        from repro.network.topology import NetworkTopology, PlacementConfig

        return NetworkTopology(
            config=PlacementConfig(
                area_size=area, n_edps=n_edps, n_requesters=n_requesters
            ),
            rng=np.random.default_rng(seed),
        )

    def test_topology_population_mismatch(self, fast_config):
        from repro.game.simulator import GameSimulator

        topo = self.make_topology(n_edps=5)
        with pytest.raises(ValueError, match="EDPs"):
            GameSimulator(
                fast_config,
                [(RandomReplacementScheme(), 10)],
                topology=topo,
            )

    def test_topology_run_finite(self, fast_config):
        from repro.game.simulator import GameSimulator

        topo = self.make_topology(n_edps=20)
        sim = GameSimulator(
            fast_config,
            [(RandomReplacementScheme(), 20)],
            rng=np.random.default_rng(0),
            topology=topo,
        )
        report = sim.run()
        assert np.all(np.isfinite(report.per_edp["total"]))

    def test_per_edp_distances_reflect_load(self, fast_config):
        from repro.game.simulator import GameSimulator

        topo = self.make_topology(n_edps=8, n_requesters=80, seed=1)
        sim = GameSimulator(
            fast_config,
            [(RandomReplacementScheme(), 8)],
            topology=topo,
        )
        assert sim._distances.shape == (8,)
        assert np.all(sim._distances > 0)
        # Distances differ across EDPs (heterogeneous geometry).
        assert np.ptp(sim._distances) > 0

    def test_farther_population_pays_more_staleness(self, fast_config):
        # Scale the same geometry up: everyone is farther from their
        # requesters, so the delay penalty grows.
        from repro.game.simulator import GameSimulator
        from repro.game.state import PopulationState

        totals = {}
        for label, area in (("near", 300.0), ("far", 3000.0)):
            topo = self.make_topology(n_edps=15, n_requesters=60, seed=2, area=area)
            rng = np.random.default_rng(5)
            sim = GameSimulator(
                fast_config,
                [(RandomReplacementScheme(np.random.default_rng(9)), 15)],
                rng=rng,
                topology=topo,
            )
            state0 = PopulationState.initial(
                fast_config, np.random.default_rng(3), n_edps=15
            )
            totals[label] = sim.run(state0).per_edp["staleness_cost"].mean()
        assert totals["far"] > totals["near"]


class TestReport:
    def test_schemes_listing(self, fast_config):
        report = make_sim(
            fast_config,
            schemes=[(RandomReplacementScheme(), 10), (MostPopularScheme(), 10)],
        ).run()
        assert report.schemes() == ["RR", "MPC"]

    def test_mask_and_summary(self, fast_config):
        report = make_sim(
            fast_config,
            schemes=[(RandomReplacementScheme(), 10), (MostPopularScheme(), 5)],
        ).run()
        assert report.mask("MPC").sum() == 5
        summary = report.scheme_summary("RR")
        assert set(summary) >= {"total", "trading_income", "staleness_cost"}
        with pytest.raises(KeyError):
            report.mask("unknown")

    def test_comparison_rows(self, fast_config):
        report = make_sim(
            fast_config,
            schemes=[(RandomReplacementScheme(), 10), (MostPopularScheme(), 5)],
        ).run()
        rows = report.comparison_rows()
        assert len(rows) == 2
        assert rows[0][0] in ("RR", "MPC")

    def test_group_series_tracks_means(self, fast_config):
        report = make_sim(fast_config, schemes=[(ConstantScheme(1.0), 25)]).run()
        series = report.group_series["const-1.00"]
        assert series.shape == report.times.shape
        # Full-rate caching drains remaining space on average.
        assert series[-1] < series[0]
