"""Tests for scheme-controlled EDP groups."""

import numpy as np
import pytest

from repro.baselines.random_replacement import RandomReplacementScheme
from repro.game.player import EDPGroup, build_groups


class TestEDPGroup:
    def test_size(self):
        group = EDPGroup(
            scheme=RandomReplacementScheme(), indices=np.arange(5)
        )
        assert group.size == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            EDPGroup(scheme=RandomReplacementScheme(), indices=np.array([]))


class TestBuildGroups:
    def test_contiguous_layout(self):
        a, b = RandomReplacementScheme(), RandomReplacementScheme()
        groups, total = build_groups([(a, 3), (b, 2)])
        assert total == 5
        assert list(groups[0].indices) == [0, 1, 2]
        assert list(groups[1].indices) == [3, 4]
        assert groups[0].scheme is a

    def test_rejects_empty_assignments(self):
        with pytest.raises(ValueError, match="at least one"):
            build_groups([])

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="assigned"):
            build_groups([(RandomReplacementScheme(), 0)])
