"""Tests for the Euler-Maruyama integrator and SDEPath container."""

import numpy as np
import pytest

from repro.sde.euler_maruyama import EulerMaruyamaIntegrator, SDEPath


def _ode(drift):
    """Noise-free integrator for checking the drift handling."""
    return EulerMaruyamaIntegrator(
        drift=drift,
        diffusion=lambda t, x: np.zeros_like(x),
        rng=np.random.default_rng(0),
    )


class TestIntegration:
    def test_linear_ode_exact_growth(self):
        # dx = a dt  =>  x(T) = x0 + a T.
        path = _ode(lambda t, x: np.full_like(x, 2.0)).integrate(
            np.array([1.0]), 0.0, 3.0, n_steps=300
        )
        assert path.terminal.item() == pytest.approx(7.0, abs=1e-9)

    def test_exponential_ode_accuracy(self):
        # dx = x dt  =>  x(1) = e.
        path = _ode(lambda t, x: x).integrate(np.array([1.0]), 0.0, 1.0, 2000)
        assert path.terminal.item() == pytest.approx(np.e, rel=1e-3)

    def test_time_dependent_drift(self):
        # dx = t dt  =>  x(2) = 2 (midpoint error is O(dt)).
        path = _ode(lambda t, x: np.full_like(x, t)).integrate(
            np.array([0.0]), 0.0, 2.0, 4000
        )
        assert path.terminal.item() == pytest.approx(2.0, rel=1e-3)

    def test_clip_is_applied_each_step(self):
        integ = EulerMaruyamaIntegrator(
            drift=lambda t, x: np.full_like(x, -10.0),
            diffusion=lambda t, x: np.zeros_like(x),
            clip=lambda x: np.clip(x, 0.0, 1.0),
        )
        path = integ.integrate(np.array([1.0]), 0.0, 1.0, 100)
        assert np.all(path.values >= 0.0)
        assert path.terminal.item() == 0.0

    def test_common_random_numbers_reproduce(self):
        inc = np.random.default_rng(1).normal(0, 0.1, size=(50, 2))

        def make():
            return EulerMaruyamaIntegrator(
                drift=lambda t, x: -x, diffusion=lambda t, x: np.ones_like(x)
            )

        p1 = make().integrate(np.array([1.0, 2.0]), 0.0, 1.0, 50, increments=inc)
        p2 = make().integrate(np.array([1.0, 2.0]), 0.0, 1.0, 50, increments=inc)
        assert np.array_equal(p1.values, p2.values)

    def test_diffusion_contributes_variance(self):
        integ = EulerMaruyamaIntegrator(
            drift=lambda t, x: np.zeros_like(x),
            diffusion=lambda t, x: np.ones_like(x),
            rng=np.random.default_rng(2),
        )
        path = integ.integrate(np.zeros(5000), 0.0, 1.0, 50)
        assert np.var(path.terminal) == pytest.approx(1.0, rel=0.1)

    def test_step_advances_once(self):
        integ = _ode(lambda t, x: np.full_like(x, 3.0))
        out = integ.step(0.0, np.array([1.0]), 0.5, np.array([0.0]))
        assert out[0] == pytest.approx(2.5)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError, match="n_steps"):
            _ode(lambda t, x: x).integrate(np.array([0.0]), 0.0, 1.0, 0)

    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError, match="t1 > t0"):
            _ode(lambda t, x: x).integrate(np.array([0.0]), 1.0, 0.0, 10)

    def test_rejects_mismatched_increments(self):
        with pytest.raises(ValueError, match="increments"):
            _ode(lambda t, x: x).integrate(
                np.array([0.0]), 0.0, 1.0, 10, increments=np.zeros((5, 1))
            )


class TestSDEPath:
    def _path(self):
        times = np.linspace(0.0, 1.0, 11)
        values = np.tile(np.arange(11.0)[:, None], (1, 3))
        return SDEPath(times=times, values=values)

    def test_properties(self):
        path = self._path()
        assert path.n_steps == 10
        assert path.n_paths == 3
        assert np.all(path.terminal == 10.0)

    def test_mean_and_std(self):
        path = self._path()
        assert np.allclose(path.mean_path(), np.arange(11.0))
        assert np.allclose(path.std_path(), 0.0)

    def test_at_nearest_time(self):
        path = self._path()
        assert np.all(path.at(0.52) == 5.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="disagree"):
            SDEPath(times=np.linspace(0, 1, 5), values=np.zeros((4, 2)))
