"""Tests for Brownian motion sampling."""

import numpy as np
import pytest

from repro.sde.brownian import BrownianMotion, brownian_increments


class TestBrownianIncrements:
    def test_shape_scalar_paths(self, rng):
        dw = brownian_increments(50, 0.01, n_paths=3, rng=rng)
        assert dw.shape == (50, 3)

    def test_shape_tuple_paths(self, rng):
        dw = brownian_increments(10, 0.1, n_paths=(4, 5), rng=rng)
        assert dw.shape == (10, 4, 5)

    def test_variance_matches_dt(self, rng):
        dt = 0.04
        dw = brownian_increments(20000, dt, rng=rng)
        assert np.var(dw) == pytest.approx(dt, rel=0.05)

    def test_zero_mean(self, rng):
        dw = brownian_increments(20000, 0.01, rng=rng)
        assert abs(dw.mean()) < 3 * np.sqrt(0.01 / 20000)

    def test_rejects_negative_steps(self, rng):
        with pytest.raises(ValueError, match="n_steps"):
            brownian_increments(-1, 0.01, rng=rng)

    def test_rejects_nonpositive_dt(self, rng):
        with pytest.raises(ValueError, match="dt"):
            brownian_increments(10, 0.0, rng=rng)

    def test_zero_steps_allowed(self, rng):
        dw = brownian_increments(0, 0.01, rng=rng)
        assert dw.shape == (0, 1)


class TestBrownianMotion:
    def test_path_starts_at_zero(self, rng):
        path = BrownianMotion(rng).sample_path(100, 0.01, n_paths=2)
        assert np.all(path[0] == 0.0)

    def test_path_has_step_plus_one_points(self, rng):
        path = BrownianMotion(rng).sample_path(42, 0.01)
        assert path.shape == (43, 1)

    def test_path_is_cumsum_of_increments(self, rng):
        bm = BrownianMotion(np.random.default_rng(0))
        bm2 = BrownianMotion(np.random.default_rng(0))
        inc = bm.increments(30, 0.1, n_paths=1)
        path = bm2.sample_path(30, 0.1, n_paths=1)
        assert np.allclose(path[1:], np.cumsum(inc, axis=0))

    def test_terminal_variance_scales_with_time(self, rng):
        path = BrownianMotion(rng).sample_path(100, 0.01, n_paths=4000)
        # W(1) ~ N(0, 1).
        assert np.var(path[-1]) == pytest.approx(1.0, rel=0.1)

    def test_bridge_pin_hits_terminal(self, rng):
        bm = BrownianMotion(rng)
        path = bm.sample_path(50, 0.02, n_paths=3)
        pinned = bm.bridge_pin(path, terminal=2.5)
        assert np.allclose(pinned[-1], 2.5)
        assert np.allclose(pinned[0], path[0])

    def test_bridge_pin_rejects_short_path(self, rng):
        bm = BrownianMotion(rng)
        with pytest.raises(ValueError, match="two time points"):
            bm.bridge_pin(np.array([1.0]), terminal=0.0)

    def test_rng_property(self):
        gen = np.random.default_rng(3)
        assert BrownianMotion(gen).rng is gen
