"""Tests for the caching-state SDE (Eq. (4))."""

import numpy as np
import pytest

from repro.sde.caching_state import CachingDrift, CachingStateProcess


def make_drift(w1=1.0, w2=0.05, w3=10.0, xi=0.1):
    return CachingDrift(w1=w1, w2=w2, w3=w3, xi=xi)


def make_process(q=100.0, noise=0.0, popularity=0.3, timeliness=2.0, seed=0):
    return CachingStateProcess(
        content_size=q,
        drift=make_drift(),
        noise=noise,
        popularity=popularity,
        timeliness=timeliness,
        rng=np.random.default_rng(seed),
    )


class TestCachingDrift:
    def test_rate_formula(self):
        drift = make_drift()
        rate = drift.rate(0.5, popularity=0.4, timeliness=1.0)
        expected = -1.0 * 0.5 - 0.05 * 0.4 + 10.0 * 0.1
        assert float(rate) == pytest.approx(expected)

    def test_caching_reduces_remaining_space(self):
        drift = make_drift()
        assert drift.rate(1.0, 0.3, 2.0) < drift.rate(0.0, 0.3, 2.0)

    def test_popularity_slows_discarding(self):
        drift = make_drift()
        assert drift.rate(0.0, 0.9, 2.0) < drift.rate(0.0, 0.1, 2.0)

    def test_urgency_slows_discarding(self):
        # Larger L => smaller xi^L => smaller discard increment.
        drift = make_drift()
        assert drift.rate(0.0, 0.3, 3.0) < drift.rate(0.0, 0.3, 0.5)

    def test_discard_rate_is_rate_at_zero_control(self):
        drift = make_drift()
        assert drift.discard_rate(0.3, 2.0) == drift.rate(0.0, 0.3, 2.0)

    def test_equilibrium_control_balances_drift(self):
        drift = make_drift()
        x_eq = drift.equilibrium_control(0.3, 2.0)
        assert float(drift.rate(x_eq, 0.3, 2.0)) == pytest.approx(0.0, abs=1e-12)

    def test_equilibrium_control_clipped(self):
        # Huge discard term would require x > 1; clipped to 1.
        drift = CachingDrift(w1=0.01, w2=0.0, w3=10.0, xi=0.5)
        assert float(drift.equilibrium_control(0.0, 0.0)) == 1.0

    def test_equilibrium_control_zero_w1_raises(self):
        drift = CachingDrift(w1=0.0, w2=0.05, w3=10.0, xi=0.1)
        with pytest.raises(ZeroDivisionError):
            drift.equilibrium_control(0.3, 2.0)

    @pytest.mark.parametrize("xi", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_xi(self, xi):
        with pytest.raises(ValueError, match="xi"):
            make_drift(xi=xi)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError, match="w1"):
            make_drift(w1=-1.0)


class TestCachingStateProcess:
    def test_deterministic_path_follows_drift(self):
        proc = make_process()
        path = proc.constant_control_path(q0=70.0, x=0.5, t1=1.0, n_steps=100)
        rate = float(proc.drift.rate(0.5, 0.3, 2.0))
        expected = np.clip(70.0 + 100.0 * rate * 1.0, 0.0, 100.0)
        assert path.terminal.item() == pytest.approx(expected, rel=1e-6)

    def test_state_clipped_to_physical_range(self):
        proc = make_process(noise=5.0, seed=1)
        path = proc.constant_control_path(q0=5.0, x=1.0, t1=2.0, n_steps=400)
        assert np.all(path.values >= 0.0)
        assert np.all(path.values <= 100.0)

    def test_callable_popularity_and_timeliness(self):
        proc = CachingStateProcess(
            content_size=100.0,
            drift=make_drift(),
            noise=0.0,
            popularity=lambda t: 0.3 + 0.1 * t,
            timeliness=lambda t: 2.0,
        )
        d0 = proc.drift_at(0.0, np.array([50.0]), 0.5)
        d1 = proc.drift_at(1.0, np.array([50.0]), 0.5)
        assert d1 < d0  # higher popularity slows discarding

    def test_feedback_control(self):
        proc = make_process()
        # Bang-bang feedback: cache only while above half full.
        path = proc.sample_path(
            q0=90.0,
            control=lambda t, q: (q > 50.0).astype(float),
            t1=2.0,
            n_steps=400,
        )
        assert path.terminal.item() < 90.0

    def test_rejects_out_of_range_initial_state(self):
        with pytest.raises(ValueError, match="initial state"):
            make_process().sample_path(150.0, lambda t, q: q * 0, 1.0, 10)

    def test_rejects_bad_constant_control(self):
        with pytest.raises(ValueError, match="caching rate"):
            make_process().constant_control_path(50.0, 1.5, 1.0, 10)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="content_size"):
            make_process(q=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            make_process(noise=-1.0)
