"""Tests for the OU channel fading process (Eq. (1))."""

import numpy as np
import pytest

from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess


def make(reversion=4.0, mean=5.0, vol=0.5, seed=0):
    return OrnsteinUhlenbeckProcess(
        reversion=reversion, mean=mean, volatility=vol,
        rng=np.random.default_rng(seed),
    )


class TestMoments:
    def test_rate_is_half_reversion(self):
        assert make(reversion=4.0).rate == 2.0

    def test_transition_mean_decays_to_long_term(self):
        ou = make()
        mean, _ = ou.transition_moments(np.array(9.0), dt=100.0)
        assert float(mean) == pytest.approx(5.0, abs=1e-6)

    def test_transition_mean_exact_formula(self):
        ou = make()
        mean, _ = ou.transition_moments(np.array(9.0), dt=0.5)
        expected = 5.0 + 4.0 * np.exp(-2.0 * 0.5)
        assert float(mean) == pytest.approx(expected)

    def test_transition_variance_grows_to_stationary(self):
        ou = make()
        _, std_small = ou.transition_moments(5.0, dt=0.01)
        _, std_large = ou.transition_moments(5.0, dt=100.0)
        _, stat_std = ou.stationary_moments()
        assert std_small < std_large
        assert std_large == pytest.approx(stat_std, rel=1e-6)

    def test_zero_dt_transition_is_degenerate(self):
        mean, std = make().transition_moments(np.array(7.0), dt=0.0)
        assert float(mean) == 7.0
        assert std == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError, match="dt"):
            make().transition_moments(5.0, dt=-1.0)

    def test_stationary_interval_contains_mean(self):
        lo, hi = make().stationary_interval()
        assert lo < 5.0 < hi

    def test_autocorrelation_time(self):
        assert make(reversion=4.0).autocorrelation_time() == pytest.approx(0.5)


class TestSimulation:
    def test_mean_reversion_from_far_start(self):
        ou = make(seed=3)
        path = ou.sample_path(h0=20.0, t1=10.0, n_steps=2000, n_paths=200)
        tail = path.values[-1]
        assert tail.mean() == pytest.approx(5.0, abs=0.2)

    def test_euler_matches_exact_moments(self):
        ou = make(seed=4)
        path = ou.sample_path(h0=8.0, t1=1.0, n_steps=2000, n_paths=4000)
        exact_mean, exact_std = ou.transition_moments(np.array(8.0), dt=1.0)
        assert path.terminal.mean() == pytest.approx(float(exact_mean), abs=0.05)
        assert path.terminal.std() == pytest.approx(exact_std, rel=0.1)

    def test_exact_sample_distribution(self):
        ou = make(seed=5)
        samples = ou.exact_sample(np.array(8.0), dt=1.0, size=20000)
        mean, std = ou.transition_moments(np.array(8.0), dt=1.0)
        assert samples.mean() == pytest.approx(float(mean), abs=0.02)
        assert samples.std() == pytest.approx(std, rel=0.05)

    def test_higher_volatility_noisier_paths(self):
        quiet = make(vol=0.1, seed=6).sample_path(5.0, 10.0, 2000)
        loud = make(vol=1.0, seed=6).sample_path(5.0, 10.0, 2000)
        assert np.std(loud.values) > np.std(quiet.values)

    def test_drift_and_diffusion_callables(self):
        ou = make()
        h = np.array([3.0, 5.0, 7.0])
        assert np.allclose(ou.drift(0.0, h), 2.0 * (5.0 - h))
        assert np.allclose(ou.diffusion(0.0, h), 0.5)


class TestValidation:
    def test_rejects_nonpositive_reversion(self):
        with pytest.raises(ValueError, match="reversion"):
            make(reversion=0.0)

    def test_rejects_negative_volatility(self):
        with pytest.raises(ValueError, match="volatility"):
            make(vol=-0.1)
