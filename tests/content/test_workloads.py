"""Tests for the canned workload scenarios."""

import numpy as np
import pytest

from repro.content.workloads import (
    Workload,
    news_cycle,
    traffic_information,
    video_marketplace,
)
from repro.content.catalog import ContentCatalog
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel


class TestWorkloadContainer:
    def test_popularity_must_be_distribution(self):
        catalog = ContentCatalog.uniform(2)
        timeliness = TimelinessModel()
        requests = RequestProcess(
            n_contents=2, rate_per_edp=1.0, timeliness_model=timeliness
        )
        with pytest.raises(ValueError, match="distribution"):
            Workload(
                name="x", catalog=catalog, popularity=np.array([0.9, 0.9]),
                timeliness_model=timeliness, requests=requests,
            )
        with pytest.raises(ValueError, match="shape"):
            Workload(
                name="x", catalog=catalog, popularity=np.array([1.0]),
                timeliness_model=timeliness, requests=requests,
            )

    def test_tracker_seeded_with_demand(self):
        workload = video_marketplace(n_contents=4, seed=1)
        tracker = workload.tracker()
        # The seeded tracker's ranking follows the workload's demand.
        assert tracker.rank_order()[0] == int(np.argmax(workload.popularity))


class TestVideoMarketplace:
    def test_structure(self):
        workload = video_marketplace(n_contents=5, seed=2)
        assert workload.name == "video-marketplace"
        assert len(workload.catalog) == 5
        assert workload.popularity.sum() == pytest.approx(1.0)
        assert workload.requests.n_contents == 5

    def test_relaxed_timeliness(self):
        workload = video_marketplace(seed=3)
        # Lax demand: mean urgency below the midpoint.
        assert workload.timeliness_model.mean() < 1.5


class TestTrafficInformation:
    def test_structure(self):
        workload = traffic_information(n_roads=4, seed=0)
        assert len(workload.catalog) == 4
        assert all(c.size_mb == 20.0 for c in workload.catalog)
        assert all(c.update_period == 1.0 for c in workload.catalog)

    def test_urgent_timeliness(self):
        workload = traffic_information(seed=0)
        assert workload.timeliness_model.mean() > 1.5

    def test_near_uniform_demand(self):
        workload = traffic_information(n_roads=6, seed=1)
        assert workload.popularity.max() / workload.popularity.min() < 1.5


class TestNewsCycle:
    def test_structure(self):
        workload, drift = news_cycle(n_contents=4, n_windows=3, seed=0)
        assert len(drift) == 3
        assert np.allclose(workload.popularity, drift[0])
        for share in drift:
            assert share.shape == (len(workload.catalog),)
            assert share.sum() == pytest.approx(1.0)

    def test_drift_feeds_tracker(self):
        workload, drift = news_cycle(n_contents=4, n_windows=2, seed=1)
        tracker = workload.tracker(forgetting=0.5)
        before = tracker.current.copy()
        tracker.observe(drift[1] * 500.0)
        assert not np.allclose(tracker.current, before)


def _scenario(name, k, seed):
    if name == "video_marketplace":
        return video_marketplace(n_contents=k, seed=seed)
    if name == "traffic_information":
        return traffic_information(n_roads=k, seed=seed)
    workload, _ = news_cycle(n_contents=k, seed=seed)
    return workload


SCENARIOS = ("video_marketplace", "traffic_information", "news_cycle")


class TestScenarioContracts:
    """The three invariants every canned scenario must satisfy."""

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_popularity_is_normalised(self, name):
        workload = _scenario(name, k=5, seed=4)
        assert np.all(workload.popularity >= 0.0)
        assert workload.popularity.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_catalog_and_request_shapes_agree(self, name):
        workload = _scenario(name, k=7, seed=4)
        assert len(workload.catalog) == 7
        assert workload.popularity.shape == (7,)
        assert workload.requests.n_contents == 7
        batch = workload.requests.sample(workload.popularity, dt=0.1)
        assert batch.counts.shape == (7,)
        assert len(batch.timeliness) == 7

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_seed_reproducibility(self, name):
        a = _scenario(name, k=5, seed=11)
        b = _scenario(name, k=5, seed=11)
        c = _scenario(name, k=5, seed=12)
        assert np.array_equal(a.popularity, b.popularity)
        assert [x.size_mb for x in a.catalog] == [x.size_mb for x in b.catalog]
        # A different seed shifts the demand profile for at least one
        # scenario-defining quantity (popularity draws are random).
        assert a.name == c.name
        if name != "traffic_information":  # near-uniform by construction
            assert not np.array_equal(a.popularity, c.popularity)
