"""Tests for time-windowed trace demand (popularity drift)."""

import numpy as np
import pytest

from repro.content.trace import SyntheticYouTubeTrace, TraceRecord, trace_windows


def rec(category, views, t):
    return TraceRecord(
        video_id=f"{category}-{t}", category=category, tags=(), views=views,
        likes=0, comment_count=0, publish_time=t,
    )


class TestTraceWindows:
    def test_shared_category_axis(self):
        records = [rec("a", 100, 0.0), rec("b", 50, 0.0), rec("b", 300, 10.0)]
        windows = trace_windows(records, n_windows=2)
        assert len(windows) == 2
        labels0, share0 = windows[0]
        labels1, share1 = windows[1]
        assert labels0 == labels1  # common axis

    def test_window_shares_normalised(self):
        rng = np.random.default_rng(0)
        records = SyntheticYouTubeTrace(n_videos=400, rng=rng).generate()
        for _, share in trace_windows(records, n_windows=4):
            assert share.sum() == pytest.approx(1.0)
            assert np.all(share >= 0.0)

    def test_demand_drift_captured(self):
        # Category 'a' dominates early, 'b' late.
        records = [rec("a", 1000, 0.0), rec("b", 10, 0.1),
                   rec("a", 10, 9.9), rec("b", 1000, 10.0)]
        windows = trace_windows(records, n_windows=2)
        labels, early = windows[0]
        _, late = windows[1]
        ia, ib = labels.index("a"), labels.index("b")
        assert early[ia] > early[ib]
        assert late[ib] > late[ia]

    def test_empty_window_uniform(self):
        records = [rec("a", 100, 0.0), rec("b", 100, 0.0)]
        windows = trace_windows(records, n_windows=3)
        # Later windows hold no records -> uniform prior.
        _, share = windows[2]
        assert np.allclose(share, 0.5)

    def test_truncation_to_top_contents(self):
        records = [rec(f"c{i}", 10 * (i + 1), float(i)) for i in range(6)]
        windows = trace_windows(records, n_windows=2, n_contents=3)
        labels, _ = windows[0]
        assert len(labels) == 3

    def test_single_window_matches_global(self):
        from repro.content.trace import trace_to_popularity

        rng = np.random.default_rng(1)
        records = SyntheticYouTubeTrace(n_videos=300, rng=rng).generate()
        labels_g, share_g = trace_to_popularity(records)
        windows = trace_windows(records, n_windows=1)
        labels_w, share_w = windows[0]
        assert labels_w == labels_g
        assert np.allclose(share_w, share_g)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_windows"):
            trace_windows([rec("a", 1, 0.0)], n_windows=0)
        with pytest.raises(ValueError, match="no records"):
            trace_windows([], n_windows=2)
