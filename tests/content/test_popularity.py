"""Tests for Zipf popularity and the Eq. (3) update."""

import numpy as np
import pytest

from repro.content.popularity import PopularityTracker, ZipfPopularity, zipf_distribution


class TestZipfDistribution:
    def test_normalised(self):
        assert zipf_distribution(10, 0.8).sum() == pytest.approx(1.0)

    def test_decreasing_in_rank(self):
        dist = zipf_distribution(10, 0.8)
        assert np.all(np.diff(dist) < 0)

    def test_steeper_exponent_concentrates(self):
        flat = zipf_distribution(10, 0.2)
        steep = zipf_distribution(10, 2.0)
        assert steep[0] > flat[0]

    def test_single_content(self):
        assert zipf_distribution(1, 1.0)[0] == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="at least one"):
            zipf_distribution(0, 1.0)
        with pytest.raises(ValueError, match="exponent"):
            zipf_distribution(5, 0.0)


class TestZipfPopularity:
    def test_initial_matches_distribution(self):
        pop = ZipfPopularity(n_contents=5, exponent=0.8)
        assert np.allclose(pop.initial(), zipf_distribution(5, 0.8))

    def test_updated_is_probability(self):
        pop = ZipfPopularity(n_contents=4)
        updated = pop.updated([10, 0, 3, 1])
        assert updated.sum() == pytest.approx(1.0)
        assert np.all(updated >= 0)

    def test_eq3_exact_value(self):
        pop = ZipfPopularity(n_contents=2, exponent=1.0)
        prior = pop.initial()  # [2/3, 1/3]
        updated = pop.updated([0.0, 4.0])
        # Eq. (3): (K*prior + counts) / (K + sum counts).
        assert updated[0] == pytest.approx((2 * prior[0]) / (2 + 4))
        assert updated[1] == pytest.approx((2 * prior[1] + 4) / (2 + 4))

    def test_zero_counts_recover_prior(self):
        pop = ZipfPopularity(n_contents=6)
        assert np.allclose(pop.updated(np.zeros(6)), pop.initial())

    def test_heavy_requests_dominate_prior(self):
        pop = ZipfPopularity(n_contents=3)
        counts = np.array([0.0, 1e6, 0.0])
        assert pop.updated(counts)[1] > 0.99

    def test_rejects_bad_counts(self):
        pop = ZipfPopularity(n_contents=3)
        with pytest.raises(ValueError, match="shape"):
            pop.updated([1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            pop.updated([1.0, -2.0, 0.0])

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ZipfPopularity(n_contents=0)


class TestPopularityTracker:
    def make(self, forgetting=1.0):
        return PopularityTracker(
            prior=ZipfPopularity(n_contents=4), forgetting=forgetting
        )

    def test_starts_at_prior(self):
        tracker = self.make()
        assert np.allclose(tracker.current, tracker.prior.initial())

    def test_observe_accumulates(self):
        tracker = self.make()
        tracker.observe([0, 10, 0, 0])
        first = tracker.current[1]
        tracker.observe([0, 10, 0, 0])
        assert tracker.current[1] > first

    def test_forgetting_discounts_history(self):
        sticky = self.make(forgetting=1.0)
        leaky = self.make(forgetting=0.1)
        for tracker in (sticky, leaky):
            tracker.observe([100, 0, 0, 0])
            tracker.observe([0, 100, 0, 0])
        # The leaky tracker weights the new batch more heavily.
        assert leaky.current[1] > sticky.current[1]

    def test_reset(self):
        tracker = self.make()
        tracker.observe([5, 5, 5, 5])
        tracker.reset()
        assert np.allclose(tracker.current, tracker.prior.initial())

    def test_rank_order_and_top(self):
        tracker = self.make()
        tracker.observe([0, 0, 50, 0])
        assert tracker.rank_order()[0] == 2
        assert list(tracker.top(1)) == [2]
        assert len(tracker.top(0)) == 0

    def test_rejects_bad_observation(self):
        tracker = self.make()
        with pytest.raises(ValueError, match="shape"):
            tracker.observe([1.0])
        with pytest.raises(ValueError, match="non-negative"):
            tracker.observe([-1.0, 0, 0, 0])

    def test_rejects_bad_forgetting(self):
        with pytest.raises(ValueError, match="forgetting"):
            self.make(forgetting=0.0)

    def test_rejects_negative_top(self):
        with pytest.raises(ValueError, match="non-negative"):
            self.make().top(-1)
