"""Tests for the requester demand process."""

import numpy as np
import pytest

from repro.content.requests import RequestBatch, RequestProcess
from repro.content.timeliness import TimelinessModel


def make(n_contents=4, rate=10.0, seed=0):
    return RequestProcess(
        n_contents=n_contents,
        rate_per_edp=rate,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=np.random.default_rng(seed),
    )


class TestIntensities:
    def test_sum_matches_rate_times_dt(self):
        proc = make(rate=10.0)
        lam = proc.intensities([0.4, 0.3, 0.2, 0.1], dt=0.5)
        assert lam.sum() == pytest.approx(5.0)

    def test_proportional_to_popularity(self):
        proc = make()
        lam = proc.intensities([0.4, 0.3, 0.2, 0.1], dt=1.0)
        assert lam[0] / lam[3] == pytest.approx(4.0)

    def test_unnormalised_popularity_ok(self):
        proc = make()
        lam = proc.intensities([4.0, 3.0, 2.0, 1.0], dt=1.0)
        assert lam.sum() == pytest.approx(10.0)

    def test_rejects_bad_popularity(self):
        proc = make()
        with pytest.raises(ValueError, match="popularity"):
            proc.intensities([0.5, 0.5], dt=1.0)
        with pytest.raises(ValueError, match="positive mass"):
            proc.intensities([0.0, 0.0, 0.0, 0.0], dt=1.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            make().intensities([1, 1, 1, 1], dt=0.0)


class TestSampling:
    def test_sample_counts_consistent_with_timeliness(self):
        batch = make(rate=50.0).sample([1, 1, 1, 1], dt=1.0)
        for k in range(4):
            assert len(batch.timeliness[k]) == batch.counts[k]

    def test_sample_mean_count(self):
        proc = make(rate=20.0, seed=1)
        totals = [proc.sample([1, 1, 1, 1], dt=1.0).total for _ in range(300)]
        assert np.mean(totals) == pytest.approx(20.0, rel=0.1)

    def test_population_matrix_shape(self):
        counts = make().sample_population([1, 1, 1, 1], dt=1.0, n_edps=7)
        assert counts.shape == (7, 4)
        assert counts.dtype.kind in "iu"

    def test_population_rejects_bad_edps(self):
        with pytest.raises(ValueError, match="EDP"):
            make().sample_population([1, 1, 1, 1], dt=1.0, n_edps=0)

    def test_expected_requests(self):
        proc = make(rate=8.0)
        assert np.allclose(
            proc.expected_requests([1, 1, 1, 1], 1.0), np.full(4, 2.0)
        )


class TestRequestBatch:
    def test_total(self):
        batch = RequestBatch(
            counts=np.array([2, 0]),
            timeliness=[np.array([1.0, 2.0]), np.array([])],
        )
        assert batch.total == 2

    def test_mean_timeliness(self):
        batch = RequestBatch(
            counts=np.array([2, 0]),
            timeliness=[np.array([1.0, 3.0]), np.array([])],
        )
        assert batch.mean_timeliness(0) == pytest.approx(2.0)
        assert batch.mean_timeliness(1, default=1.5) == 1.5

    def test_rejects_inconsistent_batch(self):
        with pytest.raises(ValueError, match="requirements"):
            RequestBatch(counts=np.array([2]), timeliness=[np.array([1.0])])
        with pytest.raises(ValueError, match="groups"):
            RequestBatch(counts=np.array([1, 1]), timeliness=[np.array([1.0])])

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one content"):
            RequestBatch(counts=np.array([]), timeliness=[])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            RequestBatch(
                counts=np.array([1, -2]),
                timeliness=[np.array([1.0]), np.array([1.0, 1.0])],
            )

    def test_rejects_matrix_counts(self):
        with pytest.raises(ValueError, match="vector"):
            RequestBatch(
                counts=np.array([[1], [2]]),
                timeliness=[np.array([1.0]), np.array([1.0, 1.0])],
            )


class TestValidation:
    def test_rejects_no_contents(self):
        with pytest.raises(ValueError, match="content"):
            make(n_contents=0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError, match="rate_per_edp"):
            make(rate=-1.0)

    def test_rejects_non_finite_rate(self):
        with pytest.raises(ValueError, match="rate_per_edp"):
            make(rate=float("nan"))
        with pytest.raises(ValueError, match="rate_per_edp"):
            make(rate=float("inf"))

    def test_rejects_negative_popularity(self):
        with pytest.raises(ValueError, match="non-negative"):
            make().intensities([0.5, -0.1, 0.4, 0.2], dt=1.0)
