"""Tests for the YouTube-style trace generator and loader."""

import numpy as np
import pytest

from repro.content.trace import (
    DEFAULT_CATEGORIES,
    SyntheticYouTubeTrace,
    TraceLoadResult,
    TraceRecord,
    load_trace_csv,
    trace_to_popularity,
)


def make(n=500, seed=0, **kw):
    return SyntheticYouTubeTrace(n_videos=n, rng=np.random.default_rng(seed), **kw)


class TestSyntheticTrace:
    def test_record_schema(self):
        records = make(n=50).generate()
        assert len(records) == 50
        rec = records[0]
        assert rec.video_id.startswith("vid")
        assert rec.category in DEFAULT_CATEGORIES
        assert rec.views >= 1
        assert rec.likes <= rec.views
        assert rec.comment_count <= rec.views
        assert len(rec.tags) >= 1

    def test_category_shares_sum_to_one(self):
        shares = make().category_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert len(shares) == len(DEFAULT_CATEGORIES)

    def test_total_views_approximate(self):
        trace = make(n=2000, total_views=1e6, seed=1)
        records = trace.generate()
        total = sum(r.views for r in records)
        # Log-normal noise spreads the total; order of magnitude holds.
        assert 0.3e6 < total < 3e6

    def test_deterministic_for_seed(self):
        r1 = make(n=20, seed=5).generate()
        r2 = make(n=20, seed=5).generate()
        assert [r.views for r in r1] == [r.views for r in r2]

    def test_demand_is_zipf_concentrated(self):
        records = make(n=5000, zipf_exponent=1.2, seed=2).generate()
        _, shares = trace_to_popularity(records)
        # Top category clearly dominates the tail under a steep Zipf.
        assert shares[0] > 3 * shares[-1]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_videos"):
            make(n=0)
        with pytest.raises(ValueError, match="zipf_exponent"):
            make(zipf_exponent=0.0)
        with pytest.raises(ValueError, match="total_views"):
            make(total_views=0.0)
        with pytest.raises(ValueError, match="category"):
            SyntheticYouTubeTrace(n_videos=5, categories=[])


class TestTraceRecord:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            TraceRecord(
                video_id="x", category="Music", tags=(), views=-1,
                likes=0, comment_count=0, publish_time=0.0,
            )


class TestTraceToPopularity:
    def test_ordering_and_normalisation(self):
        records = [
            TraceRecord("a", "cat1", (), 100, 0, 0, 0.0),
            TraceRecord("b", "cat2", (), 300, 0, 0, 0.0),
            TraceRecord("c", "cat1", (), 50, 0, 0, 0.0),
        ]
        labels, shares = trace_to_popularity(records)
        assert labels == ["cat2", "cat1"]
        assert shares.sum() == pytest.approx(1.0)
        assert shares[0] == pytest.approx(300 / 450)

    def test_truncation(self):
        records = [
            TraceRecord(str(i), f"cat{i}", (), 10 * (i + 1), 0, 0, 0.0)
            for i in range(5)
        ]
        labels, shares = trace_to_popularity(records, n_contents=2)
        assert len(labels) == 2
        assert shares.sum() == pytest.approx(1.0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="no records"):
            trace_to_popularity([])

    def test_rejects_bad_n_contents(self):
        records = [TraceRecord("a", "c", (), 1, 0, 0, 0.0)]
        with pytest.raises(ValueError, match="n_contents"):
            trace_to_popularity(records, n_contents=0)


class TestCSVLoader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,tags,views,likes,comment_count,description\n"
            'v1,10,"music|live",1000,30,5,hello\n'
            "v2,24,,500,10,2,\n"
        )
        records = load_trace_csv(path)
        assert len(records) == 2
        assert records[0].category == "10"
        assert records[0].views == 1000
        assert records[0].tags == ("music", "live")
        assert records[1].tags == ()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_csv(tmp_path / "absent.csv")

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="category_id"):
            load_trace_csv(path)

    def test_clean_file_skips_nothing(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("video_id,category_id,views\nv1,10,100\n")
        result = load_trace_csv(path)
        assert isinstance(result, TraceLoadResult)
        assert result.skipped_rows == 0

    def test_malformed_rows_skipped_and_counted(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text(
            "video_id,category_id,views\n"
            "v1,10,100\n"           # good
            "v2,24,not-a-number\n"  # non-numeric views
            "v3\n"                  # short row (no category, no views)
            "v4,,50\n"              # empty category
            "v5,17,200\n"           # good
            "v6,10,\n"              # empty views coerces to 0 (kept)
        )
        result = load_trace_csv(path)
        assert isinstance(result, TraceLoadResult)
        assert [r.video_id for r in result] == ["v1", "v5", "v6"]
        assert result.skipped_rows == 3
        assert result[2].views == 0

    def test_result_behaves_like_a_list(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("video_id,category_id,views\nv1,10,100\nv2,24,50\n")
        result = load_trace_csv(path)
        assert len(result) == 2
        assert list(result)[0].category == "10"
        # Downstream consumers (trace_to_popularity) see a plain list.
        labels, _ = trace_to_popularity(result)
        assert set(labels) == {"10", "24"}

    def test_malformed_optional_columns_coerce_to_zero(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views,likes,comment_count\n"
            "v1,10,100,oops,3\n"
        )
        result = load_trace_csv(path)
        assert result.skipped_rows == 0
        assert result[0].likes == 0
        assert result[0].comment_count == 3

    def test_feeds_popularity(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views\nv1,10,100\nv2,24,400\n"
        )
        labels, shares = trace_to_popularity(load_trace_csv(path))
        assert labels == ["24", "10"]
        assert shares[0] == pytest.approx(0.8)
