"""Tests for the YouTube-style trace generator and loader."""

import numpy as np
import pytest

from repro.content.trace import (
    DEFAULT_CATEGORIES,
    SyntheticYouTubeTrace,
    TraceLoadResult,
    TraceRecord,
    load_trace_csv,
    trace_receiver_popularity,
    trace_to_popularity,
)


def make(n=500, seed=0, **kw):
    return SyntheticYouTubeTrace(n_videos=n, rng=np.random.default_rng(seed), **kw)


class TestSyntheticTrace:
    def test_record_schema(self):
        records = make(n=50).generate()
        assert len(records) == 50
        rec = records[0]
        assert rec.video_id.startswith("vid")
        assert rec.category in DEFAULT_CATEGORIES
        assert rec.views >= 1
        assert rec.likes <= rec.views
        assert rec.comment_count <= rec.views
        assert len(rec.tags) >= 1

    def test_category_shares_sum_to_one(self):
        shares = make().category_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert len(shares) == len(DEFAULT_CATEGORIES)

    def test_total_views_approximate(self):
        trace = make(n=2000, total_views=1e6, seed=1)
        records = trace.generate()
        total = sum(r.views for r in records)
        # Log-normal noise spreads the total; order of magnitude holds.
        assert 0.3e6 < total < 3e6

    def test_deterministic_for_seed(self):
        r1 = make(n=20, seed=5).generate()
        r2 = make(n=20, seed=5).generate()
        assert [r.views for r in r1] == [r.views for r in r2]

    def test_demand_is_zipf_concentrated(self):
        records = make(n=5000, zipf_exponent=1.2, seed=2).generate()
        _, shares = trace_to_popularity(records)
        # Top category clearly dominates the tail under a steep Zipf.
        assert shares[0] > 3 * shares[-1]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_videos"):
            make(n=0)
        with pytest.raises(ValueError, match="zipf_exponent"):
            make(zipf_exponent=0.0)
        with pytest.raises(ValueError, match="total_views"):
            make(total_views=0.0)
        with pytest.raises(ValueError, match="category"):
            SyntheticYouTubeTrace(n_videos=5, categories=[])


class TestTraceRecord:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            TraceRecord(
                video_id="x", category="Music", tags=(), views=-1,
                likes=0, comment_count=0, publish_time=0.0,
            )


class TestTraceToPopularity:
    def test_ordering_and_normalisation(self):
        records = [
            TraceRecord("a", "cat1", (), 100, 0, 0, 0.0),
            TraceRecord("b", "cat2", (), 300, 0, 0, 0.0),
            TraceRecord("c", "cat1", (), 50, 0, 0, 0.0),
        ]
        labels, shares = trace_to_popularity(records)
        assert labels == ["cat2", "cat1"]
        assert shares.sum() == pytest.approx(1.0)
        assert shares[0] == pytest.approx(300 / 450)

    def test_truncation(self):
        records = [
            TraceRecord(str(i), f"cat{i}", (), 10 * (i + 1), 0, 0, 0.0)
            for i in range(5)
        ]
        labels, shares = trace_to_popularity(records, n_contents=2)
        assert len(labels) == 2
        assert shares.sum() == pytest.approx(1.0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="no records"):
            trace_to_popularity([])

    def test_rejects_bad_n_contents(self):
        records = [TraceRecord("a", "c", (), 1, 0, 0, 0.0)]
        with pytest.raises(ValueError, match="n_contents"):
            trace_to_popularity(records, n_contents=0)


class TestCSVLoader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,tags,views,likes,comment_count,description\n"
            'v1,10,"music|live",1000,30,5,hello\n'
            "v2,24,,500,10,2,\n"
        )
        records = load_trace_csv(path)
        assert len(records) == 2
        assert records[0].category == "10"
        assert records[0].views == 1000
        assert records[0].tags == ("music", "live")
        assert records[1].tags == ()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_csv(tmp_path / "absent.csv")

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="category_id"):
            load_trace_csv(path)

    def test_clean_file_skips_nothing(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("video_id,category_id,views\nv1,10,100\n")
        result = load_trace_csv(path)
        assert isinstance(result, TraceLoadResult)
        assert result.skipped_rows == 0

    def test_malformed_rows_skipped_and_counted(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text(
            "video_id,category_id,views\n"
            "v1,10,100\n"           # good
            "v2,24,not-a-number\n"  # non-numeric views
            "v3\n"                  # short row (no category, no views)
            "v4,,50\n"              # empty category
            "v5,17,200\n"           # good
            "v6,10,\n"              # empty views coerces to 0 (kept)
        )
        result = load_trace_csv(path)
        assert isinstance(result, TraceLoadResult)
        assert [r.video_id for r in result] == ["v1", "v5", "v6"]
        assert result.skipped_rows == 3
        assert result[2].views == 0

    def test_result_behaves_like_a_list(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("video_id,category_id,views\nv1,10,100\nv2,24,50\n")
        result = load_trace_csv(path)
        assert len(result) == 2
        assert list(result)[0].category == "10"
        # Downstream consumers (trace_to_popularity) see a plain list.
        labels, _ = trace_to_popularity(result)
        assert set(labels) == {"10", "24"}

    def test_malformed_optional_columns_coerce_to_zero(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views,likes,comment_count\n"
            "v1,10,100,oops,3\n"
        )
        result = load_trace_csv(path)
        assert result.skipped_rows == 0
        assert result[0].likes == 0
        assert result[0].comment_count == 3

    def test_feeds_popularity(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views\nv1,10,100\nv2,24,400\n"
        )
        labels, shares = trace_to_popularity(load_trace_csv(path))
        assert labels == ["24", "10"]
        assert shares[0] == pytest.approx(0.8)


class TestReceiverColumn:
    def test_absent_column_means_unpinned(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("video_id,category_id,views\nv1,10,100\n")
        result = load_trace_csv(path)
        assert result[0].receiver is None
        assert result.skipped_receivers == 0

    def test_receiver_ids_parsed(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views,receiver\n"
            "v1,10,100,0\n"
            "v2,24,50,3\n"
            "v3,10,75,\n"  # empty cell: unpinned, row kept
        )
        result = load_trace_csv(path)
        assert [r.receiver for r in result] == [0, 3, None]
        assert result.skipped_rows == 0
        assert result.skipped_receivers == 0

    def test_malformed_receivers_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views,receiver\n"
            "v1,10,100,2\n"
            "v2,24,50,north\n"   # non-integer: dropped
            "v3,10,75,-1\n"      # negative: dropped
            "v4,24,60,1\n"
        )
        result = load_trace_csv(path)
        assert [r.video_id for r in result] == ["v1", "v4"]
        assert result.skipped_receivers == 2
        assert result.skipped_rows == 2  # receiver skips count as row skips

    def test_other_malformations_not_counted_as_receiver_skips(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "video_id,category_id,views,receiver\n"
            "v1,,100,0\n"        # empty category: a plain row skip
            "v2,10,xyz,1\n"      # bad views: a plain row skip
            "v3,10,50,bogus\n"   # bad receiver
        )
        result = load_trace_csv(path)
        assert result.skipped_rows == 3
        assert result.skipped_receivers == 1

    def test_record_rejects_negative_receiver(self):
        with pytest.raises(ValueError, match="receiver"):
            TraceRecord(
                video_id="v", category="10", tags=(), views=1, likes=0,
                comment_count=0, publish_time=0.0, receiver=-2,
            )


class TestReceiverPopularity:
    def records(self):
        def rec(cat, views, receiver):
            return TraceRecord(
                video_id=f"{cat}-{views}", category=cat, tags=(),
                views=views, likes=0, comment_count=0, publish_time=0.0,
                receiver=receiver,
            )
        return [
            rec("a", 300, 0), rec("b", 100, 0),
            rec("b", 400, 1),
            rec("a", 200, None),  # unpinned: spread uniformly
        ]

    def test_rows_are_distributions(self):
        labels, matrix = trace_receiver_popularity(self.records(), 3)
        assert matrix.shape == (3, len(labels))
        assert np.all(matrix >= 0)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_pinned_demand_stays_local(self):
        labels, matrix = trace_receiver_popularity(self.records(), 2)
        a, b = labels.index("a"), labels.index("b")
        # Receiver 0 leans a (300 pinned + 100 spread vs 100 b).
        assert matrix[0, a] > matrix[0, b]
        # Receiver 1 leans b (400 pinned vs 100 spread a).
        assert matrix[1, b] > matrix[1, a]

    def test_empty_receiver_falls_back_to_global(self):
        records = [
            TraceRecord(
                video_id="v", category="a", tags=(), views=100, likes=0,
                comment_count=0, publish_time=0.0, receiver=0,
            )
        ]
        labels, matrix = trace_receiver_popularity(records, 3)
        # Receivers 1 and 2 saw nothing pinned or spread... the single
        # record is pinned to 0, so they inherit the global share.
        assert np.allclose(matrix[1], matrix[2])
        assert np.allclose(matrix[1].sum(), 1.0)

    def test_out_of_range_receiver_spreads(self):
        records = [
            TraceRecord(
                video_id="v", category="a", tags=(), views=100, likes=0,
                comment_count=0, publish_time=0.0, receiver=7,
            )
        ]
        _, matrix = trace_receiver_popularity(records, 2)
        assert np.allclose(matrix[0], matrix[1])

    def test_bad_n_receivers_raises(self):
        with pytest.raises(ValueError, match="n_receivers"):
            trace_receiver_popularity(self.records(), 0)

    def test_feeds_network_engine_shape(self):
        from repro.content.workloads import zipf_workload
        from repro.serve.net import NetworkReplayEngine, parse_topology

        topo = parse_topology("ring:3")
        labels, matrix = trace_receiver_popularity(
            self.records(), topo.n_receivers
        )
        workload = zipf_workload(n_contents=len(labels), rate_per_edp=20.0)
        engine = NetworkReplayEngine(
            workload, topo, n_replicas=1, capacity_fraction=0.6,
            receiver_popularity=matrix,
        )
        report = engine.replay("lce")
        assert report.requests > 0
