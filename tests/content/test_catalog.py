"""Tests for the content catalog."""

import numpy as np
import pytest

from repro.content.catalog import Content, ContentCatalog


class TestContent:
    def test_fields(self):
        c = Content(content_id=3, size_mb=50.0, name="news", update_period=2.0)
        assert c.content_id == 3
        assert c.size_mb == 50.0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size_mb"):
            Content(content_id=0, size_mb=0.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="update_period"):
            Content(content_id=0, size_mb=1.0, update_period=0.0)


class TestContentCatalog:
    def test_uniform_catalog(self):
        catalog = ContentCatalog.uniform(5, size_mb=80.0)
        assert len(catalog) == 5
        assert np.all(catalog.sizes == 80.0)
        assert catalog.total_size == 400.0

    def test_uniform_with_names(self):
        catalog = ContentCatalog.uniform(2, names=["a", "b"])
        assert [c.name for c in catalog] == ["a", "b"]

    def test_uniform_name_count_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            ContentCatalog.uniform(2, names=["only-one"])

    def test_uniform_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ContentCatalog.uniform(0)

    def test_from_sizes(self):
        catalog = ContentCatalog.from_sizes([10.0, 20.0, 30.0])
        assert list(catalog.sizes) == [10.0, 20.0, 30.0]
        assert catalog[1].content_id == 1

    def test_iteration_and_indexing(self):
        catalog = ContentCatalog.uniform(3)
        assert [c.content_id for c in catalog] == [0, 1, 2]
        assert catalog[2].content_id == 2

    def test_validate_index(self):
        catalog = ContentCatalog.uniform(3)
        assert catalog.validate_index(0) == 0
        with pytest.raises(IndexError):
            catalog.validate_index(3)
        with pytest.raises(IndexError):
            catalog.validate_index(-1)
