"""Tests for content timeliness (Def. 2)."""

import numpy as np
import pytest

from repro.content.timeliness import TimelinessModel, TimelinessTracker


class TestTimelinessModel:
    def test_samples_in_range(self, rng):
        model = TimelinessModel(l_max=3.0)
        samples = model.sample(1000, rng)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 3.0)

    def test_mean_formula(self):
        model = TimelinessModel(l_max=4.0, shape_a=2.0, shape_b=6.0)
        assert model.mean() == pytest.approx(4.0 * 2.0 / 8.0)

    def test_sample_mean_matches(self, rng):
        model = TimelinessModel(l_max=3.0, shape_a=5.0, shape_b=2.0)
        samples = model.sample(20000, rng)
        assert samples.mean() == pytest.approx(model.mean(), rel=0.02)

    def test_zero_samples(self, rng):
        assert TimelinessModel().sample(0, rng).shape == (0,)

    def test_rejects_negative_count(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            TimelinessModel().sample(-1, rng)

    def test_validation(self):
        with pytest.raises(ValueError, match="l_max"):
            TimelinessModel(l_max=0.0)
        with pytest.raises(ValueError, match="Beta"):
            TimelinessModel(shape_a=0.0)


class TestTimelinessTracker:
    def make(self, initial=None):
        return TimelinessTracker(
            model=TimelinessModel(l_max=3.0), n_contents=3, initial=initial
        )

    def test_defaults_to_model_mean(self):
        tracker = self.make()
        assert np.allclose(tracker.current, 1.5)

    def test_explicit_initial(self):
        tracker = self.make(initial=[0.5, 1.0, 2.5])
        assert np.allclose(tracker.current, [0.5, 1.0, 2.5])

    def test_observe_sets_average(self):
        tracker = self.make()
        value = tracker.observe(1, [1.0, 2.0, 3.0])
        assert value == pytest.approx(2.0)
        assert tracker.current[1] == pytest.approx(2.0)

    def test_empty_observation_keeps_value(self):
        tracker = self.make(initial=[0.5, 1.0, 2.5])
        assert tracker.observe(0, []) == pytest.approx(0.5)

    def test_urgency_factor(self):
        tracker = self.make(initial=[0.0, 1.0, 2.0])
        factors = tracker.urgency_factor(xi=0.1)
        assert np.allclose(factors, [1.0, 0.1, 0.01])

    def test_urgency_factor_rejects_bad_xi(self):
        with pytest.raises(ValueError, match="xi"):
            self.make().urgency_factor(1.0)

    def test_rejects_out_of_range_requirements(self):
        tracker = self.make()
        with pytest.raises(ValueError, match="l_max"):
            tracker.observe(0, [5.0])

    def test_rejects_bad_content_index(self):
        with pytest.raises(IndexError):
            self.make().observe(3, [1.0])

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError, match="initial"):
            self.make(initial=[1.0])
        with pytest.raises(ValueError, match="l_max"):
            self.make(initial=[1.0, 9.0, 1.0])

    def test_current_is_a_copy(self):
        tracker = self.make()
        tracker.current[0] = 99.0
        assert tracker.current[0] != 99.0
