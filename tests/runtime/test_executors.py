"""Tests for the serial and process-pool execution backends."""

import io
import json

import numpy as np
import pytest

from repro.obs.telemetry import SolverTelemetry
from repro.runtime import ExecutionPlan, ParallelExecutor, SerialExecutor

BACKENDS = [SerialExecutor(), ParallelExecutor(workers=2)]
IDS = ["serial", "process:2"]


def square(x):
    return x * x


def draw_normal(offset, rng=None):
    return offset + float(rng.standard_normal())


def record_work(tag, telemetry=None):
    with telemetry.span("work"):
        telemetry.inc("items.done")
        telemetry.event("worked", tag=tag)
    return tag


class TestOrdering:
    @pytest.mark.parametrize("executor", BACKENDS, ids=IDS)
    def test_results_in_item_order(self, executor):
        plan = ExecutionPlan.map(square, [(i,) for i in range(7)])
        assert executor.run(plan) == [i * i for i in range(7)]

    @pytest.mark.parametrize("executor", BACKENDS, ids=IDS)
    def test_outcome_indices_match(self, executor):
        plan = ExecutionPlan.map(square, [(i,) for i in range(5)])
        outcomes = executor.execute(plan)
        assert [o.index for o in outcomes] == list(range(5))


class TestDeterminism:
    def test_rng_streams_match_across_backends(self):
        results = {}
        for name, executor in zip(IDS, BACKENDS):
            plan = ExecutionPlan.map(
                draw_normal, [(10 * i,) for i in range(6)], seed=99
            )
            results[name] = executor.run(plan)
        assert results["serial"] == results["process:2"]

    def test_empty_plan(self):
        for executor in BACKENDS:
            assert executor.run(ExecutionPlan([])) == []

    def test_single_item_skips_pool(self):
        plan = ExecutionPlan.map(square, [(3,)])
        assert ParallelExecutor(workers=4).run(plan) == [9]


class TestTelemetryMerge:
    def _run(self, executor):
        buffer = io.StringIO()
        telemetry = SolverTelemetry.to_jsonl(buffer)
        plan = ExecutionPlan.map(
            record_work,
            [(f"item{i}",) for i in range(4)],
            accepts_telemetry=True,
        )
        results = executor.run(plan, telemetry=telemetry)
        telemetry.close()
        buffer.seek(0)
        events = [json.loads(line) for line in buffer if line.strip()]
        return results, events, telemetry

    @pytest.mark.parametrize("executor", BACKENDS, ids=IDS)
    def test_events_absorbed_in_item_order(self, executor):
        results, events, _ = self._run(executor)
        assert results == [f"item{i}" for i in range(4)]
        tags = [e["tag"] for e in events if e["ev"] == "worked"]
        assert tags == [f"item{i}" for i in range(4)]

    @pytest.mark.parametrize("executor", BACKENDS, ids=IDS)
    def test_metrics_and_spans_merged(self, executor):
        _, events, telemetry = self._run(executor)
        assert telemetry.metrics.counter("items.done").value == 4
        work = telemetry.spans.root.children["work"]
        assert work.count == 4
        span_paths = [e["path"] for e in events if e["ev"] == "span"]
        assert span_paths == ["work"] * 4

    def test_merged_streams_identical_across_backends(self):
        streams = {}
        for name, executor in zip(IDS, BACKENDS):
            _, events, _ = self._run(executor)
            for event in events:
                event.pop("seq", None)
                for key in [k for k in event if k.endswith("_s") or k == "dur_s"]:
                    event.pop(key)
            streams[name] = [e for e in events if e["ev"] != "metrics"]
        assert streams["serial"] == streams["process:2"]

    def test_span_paths_prefixed_under_open_span(self):
        telemetry = SolverTelemetry.in_memory()
        plan = ExecutionPlan.map(
            record_work, [("a",)], accepts_telemetry=True
        )
        with telemetry.span("outer"):
            SerialExecutor().run(plan, telemetry=telemetry)
        outer = telemetry.spans.root.children["outer"]
        assert outer.children["work"].count == 1
