"""Tests for the deterministic fault-injection harness and FaultPolicy."""

import os

import pytest

from repro.obs.telemetry import StrictNumericsError
from repro.runtime import FaultPolicy, WorkItem, execute_item
from repro.testing import (
    FAULT_ENV_VAR,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    WorkerKilled,
    clear_faults,
    install_faults,
    parse_fault_plan,
)
from repro.testing.faults import active_fault_plan


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def double(x):
    return 2 * x


class TestSpecParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("raise:item=2", FaultRule(kind="raise", item=2)),
            ("raise:item=2,times=-1", FaultRule(kind="raise", item=2, times=-1)),
            ("kill:label=content:*", FaultRule(kind="kill", label="content:*")),
            (
                "slow:item=1,seconds=0.05",
                FaultRule(kind="slow", item=1, seconds=0.05),
            ),
            ("corrupt:item=0", FaultRule(kind="corrupt", item=0)),
            (
                "raise:item=0,exc=strict",
                FaultRule(kind="raise", item=0, exc="strict"),
            ),
            ("raise:attempt=2", FaultRule(kind="raise", attempt=2)),
        ],
    )
    def test_accepts_valid_clause(self, spec, expected):
        plan = parse_fault_plan(spec)
        assert plan.rules == (expected,)
        assert plan.spec == spec

    def test_multiple_clauses(self):
        plan = parse_fault_plan("raise:item=0;slow:item=1,seconds=0.01")
        assert [r.kind for r in plan.rules] == ["raise", "slow"]

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ",
            "explode:item=0",
            "raise:item",
            "raise:item=",
            "raise:item=two",
            "raise:seconds=fast",
            "raise:item=0;;slow:item=1",
            "raise:wat=1",
            "raise:item=0,exc=nope",
            "slow:seconds=-1",
        ],
    )
    def test_rejects_malformed_spec(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_plan(spec)


class TestRuleMatching:
    def test_default_fires_first_attempt_only(self):
        rule = FaultRule(kind="raise", item=2)
        assert rule.matches(2, "x", attempt=0)
        assert not rule.matches(2, "x", attempt=1)

    def test_times_minus_one_fires_always(self):
        rule = FaultRule(kind="raise", item=2, times=-1)
        assert all(rule.matches(2, "x", attempt=a) for a in range(5))

    def test_times_bounds_attempts(self):
        rule = FaultRule(kind="raise", times=3)
        assert [rule.matches(0, "x", a) for a in range(5)] == [
            True, True, True, False, False,
        ]

    def test_exact_attempt_takes_precedence(self):
        rule = FaultRule(kind="raise", attempt=2)
        assert not rule.matches(0, "x", attempt=0)
        assert rule.matches(0, "x", attempt=2)

    def test_label_glob(self):
        rule = FaultRule(kind="raise", label="content:*")
        assert rule.matches(0, "content:7", attempt=0)
        assert not rule.matches(0, "seed:7", attempt=0)

    def test_item_filter(self):
        rule = FaultRule(kind="raise", item=3)
        assert not rule.matches(2, "x", attempt=0)

    def test_exception_kinds(self):
        assert isinstance(
            FaultRule(kind="raise").build_exception("x", 0), InjectedFault
        )
        assert isinstance(
            FaultRule(kind="kill").build_exception("x", 0), WorkerKilled
        )
        assert isinstance(
            FaultRule(kind="raise", exc="strict").build_exception("x", 0),
            StrictNumericsError,
        )

    def test_worker_killed_is_an_injected_fault(self):
        # The retry machinery catches InjectedFault subclasses alike.
        assert issubclass(WorkerKilled, InjectedFault)


class TestActivation:
    def test_install_and_clear(self):
        plan = install_faults("raise:item=0")
        assert active_fault_plan() is plan
        assert os.environ[FAULT_ENV_VAR] == "raise:item=0"
        clear_faults()
        assert active_fault_plan() is None
        assert FAULT_ENV_VAR not in os.environ

    def test_programmatic_plan_without_spec_stays_local(self):
        plan = FaultPlan(rules=(FaultRule(kind="raise", item=0),))
        install_faults(plan)
        assert active_fault_plan() is plan
        assert FAULT_ENV_VAR not in os.environ

    def test_execute_item_consults_the_plan(self):
        install_faults("raise:item=0")
        item = WorkItem(index=0, fn=double, args=(1,), label="it")
        with pytest.raises(InjectedFault):
            execute_item(item)
        # Attempt 1 is past the default times=1 budget: it succeeds.
        assert execute_item(item, attempt=1).result == 2

    def test_unmatched_items_run_normally(self):
        install_faults("raise:item=5")
        item = WorkItem(index=0, fn=double, args=(3,))
        assert execute_item(item).result == 6

    def test_no_plan_is_free(self):
        item = WorkItem(index=0, fn=double, args=(3,))
        assert execute_item(item).result == 6


class TestFaultPolicy:
    def test_default_fails_fast(self):
        policy = FaultPolicy()
        assert not policy.should_retry(RuntimeError("x"), attempt=0)

    def test_retry_budget(self):
        policy = FaultPolicy(max_retries=2)
        err = RuntimeError("x")
        assert policy.should_retry(err, attempt=0)
        assert policy.should_retry(err, attempt=1)
        assert not policy.should_retry(err, attempt=2)

    def test_retry_on_filters_types(self):
        policy = FaultPolicy(max_retries=3, retry_on=(OSError,))
        assert policy.should_retry(OSError("x"), attempt=0)
        assert not policy.should_retry(ValueError("x"), attempt=0)

    def test_strict_numerics_never_retried(self):
        policy = FaultPolicy(max_retries=5)
        assert not policy.should_retry(StrictNumericsError("chk", "msg"), 0)

    def test_deterministic_backoff_schedule(self):
        policy = FaultPolicy(
            max_retries=5, backoff_base=0.5, backoff_factor=2.0, backoff_max=2.0
        )
        assert [policy.delay(a) for a in range(4)] == [0.5, 1.0, 2.0, 2.0]

    def test_zero_base_means_immediate(self):
        policy = FaultPolicy(max_retries=3)
        assert [policy.delay(a) for a in range(3)] == [0.0, 0.0, 0.0]

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(max_retries=-1), "max_retries"),
            (dict(backoff_base=-0.1), "backoff_base"),
            (dict(backoff_factor=0.5), "backoff_factor"),
            (dict(on_exhaust="explode"), "on_exhaust"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultPolicy(**kwargs)
