"""Serial vs process-pool determinism regression tests.

The ``repro.runtime`` contract: switching backends never changes the
numbers.  These tests run the real fan-out sites — the Alg. 1 epoch
loop and the seed-replicated scheme summaries — under the serial and a
2-worker process backend and require bit-identical results, plus
identical merged telemetry event streams (modulo sequence numbers and
wall-clock timings).
"""

import io
import json

import numpy as np
import pytest

from repro.analysis.experiments import run_scheme_summary
from repro.content.catalog import ContentCatalog
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver
from repro.obs.telemetry import SolverTelemetry
from repro.runtime import ParallelExecutor, SerialExecutor

BACKENDS = {"serial": SerialExecutor, "process": lambda: ParallelExecutor(workers=2)}


def tiny_config():
    """A deliberately small grid: many contents, fast solves."""
    return MFGCPConfig(
        n_time_steps=25, n_h=7, n_q=17, max_iterations=15, tolerance=1e-3
    )


def run_epoch(executor, telemetry=None, **run_kwargs):
    n_contents = 4
    catalog = ContentCatalog.uniform(n_contents, size_mb=100.0)
    requests = RequestProcess(
        n_contents=n_contents,
        rate_per_edp=60.0,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=np.random.default_rng(1),
    )
    solver = MFGCPSolver(tiny_config(), telemetry=telemetry, executor=executor)
    return solver.run_epochs(catalog, requests, n_epochs=2, **run_kwargs)


MEASURED_KEYS = ("rss_kb", "gc")
"""Profiling fields that are measurements, not functions of solver
state — stripped (like timings) before cross-backend comparison."""


def normalised_events(buffer):
    """Telemetry events with sequence numbers and timings stripped."""
    events = []
    buffer.seek(0)
    for line in buffer:
        if not line.strip():
            continue
        event = json.loads(line)
        if event.get("ev") == "metrics":
            continue
        event.pop("seq", None)
        for key in [k for k in event if k.endswith("_s")]:
            event.pop(key)
        for key in MEASURED_KEYS:
            event.pop(key, None)
        events.append(event)
    return events


class TestEpochLoopDeterminism:
    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for name, factory in BACKENDS.items():
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer)
            results = run_epoch(factory(), telemetry=telemetry)
            telemetry.close()
            out[name] = (results, normalised_events(buffer))
        return out

    def test_enough_contents_to_matter(self, runs):
        results, _ = runs["serial"]
        assert all(len(r.active_contents) >= 4 for r in results)

    def test_equilibria_bit_identical(self, runs):
        serial, _ = runs["serial"]
        parallel, _ = runs["process"]
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.active_contents == b.active_contents
            assert np.array_equal(a.popularity, b.popularity)
            assert np.array_equal(a.timeliness, b.timeliness)
            for k in a.equilibria:
                ea, eb = a.equilibria[k], b.equilibria[k]
                assert np.array_equal(ea.policy.table, eb.policy.table), k
                assert np.array_equal(ea.density, eb.density), k
                assert np.array_equal(ea.value, eb.value), k
                assert np.array_equal(ea.mean_field.price, eb.mean_field.price), k

    def test_telemetry_streams_identical(self, runs):
        _, serial_events = runs["serial"]
        _, parallel_events = runs["process"]
        assert serial_events == parallel_events
        kinds = {e["ev"] for e in serial_events}
        assert "content_solve" in kinds
        assert "epoch" in kinds
        assert "iteration" in kinds


class TestBatchedSolverEquivalence:
    """The scalar-vs-batched equivalence guard.

    The batched tensor pipeline replicates the scalar solvers'
    floating-point operation order lane by lane, so the guard demands
    *bit-identical* equilibria — not just tolerance agreement — across
    (a) the per-content path, (b) the batched path on the serial
    backend, and (c) the batched path on a 2-worker process pool.
    Should a future change break exact identity for a legitimate
    numerical reason, loosen this to the documented determinism
    tolerance (``assert_allclose`` with rtol 1e-12) — never silently.
    """

    VARIANTS = {
        "scalar": ("serial", {}),
        "batched": ("serial", dict(solver_batching=True, batch_size=3)),
        "batched-process": (
            "process",
            dict(solver_batching=True, batch_size=3),
        ),
    }

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for name, (backend, kwargs) in self.VARIANTS.items():
            out[name] = run_epoch(BACKENDS[backend](), **kwargs)
        return out

    @pytest.mark.parametrize("variant", ["batched", "batched-process"])
    def test_equilibria_bit_identical_to_scalar(self, runs, variant):
        for a, b in zip(runs["scalar"], runs[variant]):
            assert a.active_contents == b.active_contents
            assert set(a.equilibria) == set(b.equilibria)
            for k in a.equilibria:
                ea, eb = a.equilibria[k], b.equilibria[k]
                assert np.array_equal(ea.value, eb.value), k
                assert np.array_equal(ea.policy.table, eb.policy.table), k
                assert np.array_equal(ea.density, eb.density), k
                assert np.array_equal(ea.mean_field.price, eb.mean_field.price), k
                assert ea.report.n_iterations == eb.report.n_iterations, k
                assert ea.report.converged == eb.report.converged, k

    def test_convergence_histories_identical(self, runs):
        # Masked lanes must replay the scalar iteration trace exactly.
        for a, b in zip(runs["scalar"], runs["batched"]):
            for k in a.equilibria:
                ha = a.equilibria[k].report.history
                hb = b.equilibria[k].report.history
                assert [r.policy_change for r in ha] == [
                    r.policy_change for r in hb
                ], k
                assert [r.mean_field_change for r in ha] == [
                    r.mean_field_change for r in hb
                ], k


class TestProfiledRunDeterminism:
    """Backend bit-identity must survive ``profile=True``.

    Profiling adds measured fields (CPU, RSS, GC) to span events; the
    structural content — span paths, call counts, diag findings,
    histogram counts — must stay identical between serial and a
    4-worker process pool.
    """

    @pytest.fixture(scope="class")
    def profiled(self):
        backends = {
            "serial": SerialExecutor,
            "process": lambda: ParallelExecutor(workers=4),
        }
        out = {}
        for name, factory in backends.items():
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer, profile=True)
            results = run_epoch(factory(), telemetry=telemetry)
            metrics = telemetry.metrics.snapshot()
            telemetry.close()
            out[name] = (results, normalised_events(buffer), metrics)
        return out

    def test_profiled_events_identical(self, profiled):
        _, serial_events, _ = profiled["serial"]
        _, parallel_events, _ = profiled["process"]
        assert serial_events == parallel_events

    def test_profiling_fields_present(self, profiled):
        # The profiled stream must actually carry the resource fields
        # (on the raw events, before normalisation strips them).
        buffer = io.StringIO()
        telemetry = SolverTelemetry.to_jsonl(buffer, profile=True)
        run_epoch(SerialExecutor(), telemetry=telemetry)
        telemetry.close()
        buffer.seek(0)
        span_events = [
            json.loads(line)
            for line in buffer
            if '"ev":"span"' in line
        ]
        assert span_events
        assert all("cpu_s" in e and "rss_kb" in e and "gc" in e
                   for e in span_events)

    def test_span_tree_structure_identical(self, profiled):
        trees = {}
        for name in ("serial", "process"):
            _, events, _ = profiled[name]
            spans = {}
            for event in events:
                if event.get("ev") == "span":
                    path = event["path"]
                    spans[path] = spans.get(path, 0) + 1
            trees[name] = spans
        assert trees["serial"] == trees["process"]
        assert any("solve" in path for path in trees["serial"])

    def test_histograms_identical(self, profiled):
        _, _, serial_metrics = profiled["serial"]
        _, _, parallel_metrics = profiled["process"]
        for name, entry in serial_metrics.items():
            if entry.get("kind") != "histogram":
                continue
            assert entry["count"] == parallel_metrics[name]["count"], name

    def test_equilibria_bit_identical_under_profiling(self, profiled):
        serial, _, _ = profiled["serial"]
        parallel, _, _ = profiled["process"]
        for a, b in zip(serial, parallel):
            for k in a.equilibria:
                assert np.array_equal(
                    a.equilibria[k].policy.table, b.equilibria[k].policy.table
                ), k


class TestSchemeSummaryDeterminism:
    @pytest.mark.parametrize("scheme", ["MFG-CP", "MPC", "RR"])
    def test_summaries_bit_identical(self, scheme):
        cfg = tiny_config()
        summaries = {}
        for name, factory in BACKENDS.items():
            summaries[name] = run_scheme_summary(
                scheme, cfg, n_edps=8, seeds=(7, 8, 9), executor=factory()
            )
        assert summaries["serial"] == summaries["process"]

    def test_telemetry_streams_identical(self):
        cfg = tiny_config()
        streams = {}
        for name, factory in BACKENDS.items():
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer)
            run_scheme_summary(
                "MFG-CP",
                cfg,
                n_edps=8,
                seeds=(7, 8, 9),
                telemetry=telemetry,
                executor=factory(),
            )
            telemetry.close()
            streams[name] = normalised_events(buffer)
        assert streams["serial"] == streams["process"]


class TestLiveStatusDeterminism:
    """Backend bit-identity must survive ``--live-status``.

    The live writer reads the wall clock and throttles its writes, so
    its event *counts* differ run to run — but it is a pure side
    channel: with ``live.*`` events stripped (exactly what
    :func:`repro.testing.normalized_events` does) the serial and
    process streams must still compare equal, and the results must
    stay bit-identical.
    """

    @pytest.fixture(scope="class")
    def live_runs(self, tmp_path_factory):
        from repro.obs import LiveStatusWriter, read_status
        from repro.testing import normalized_events

        out = {}
        for name, factory in BACKENDS.items():
            root = tmp_path_factory.mktemp(f"live-{name}")
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer)
            telemetry.set_live(
                LiveStatusWriter(root / "status.json", every=1)
            )
            results = run_epoch(factory(), telemetry=telemetry)
            telemetry.close()
            out[name] = (
                results,
                normalized_events(buffer),
                read_status(root / "status.json"),
            )
        return out

    def test_results_bit_identical(self, live_runs):
        serial, _, _ = live_runs["serial"]
        parallel, _, _ = live_runs["process"]
        for a, b in zip(serial, parallel):
            assert a.active_contents == b.active_contents
            for k in a.equilibria:
                assert np.array_equal(
                    a.equilibria[k].policy.table, b.equilibria[k].policy.table
                ), k

    def test_normalized_streams_identical(self, live_runs):
        _, serial_events, _ = live_runs["serial"]
        _, parallel_events, _ = live_runs["process"]
        assert serial_events == parallel_events
        # live.* must be gone from the normalised view...
        assert not any(
            str(e.get("ev", "")).startswith("live.") for e in serial_events
        )

    def test_raw_streams_contain_live_events(self, live_runs):
        # ...but the raw runs did carry them (the side channel works).
        _, _, status = live_runs["serial"]
        assert status["state"] == "done"
        assert status["items"]["done"] > 0

    def test_status_files_agree_on_progress(self, live_runs):
        _, _, serial_status = live_runs["serial"]
        _, _, parallel_status = live_runs["process"]
        assert serial_status["items"]["done"] == parallel_status["items"]["done"]
        assert serial_status["items"]["total"] == parallel_status["items"]["total"]
        assert serial_status["phase"] == parallel_status["phase"]
