"""Pickle round-trips for everything that crosses a process boundary.

The process backend ships work items (configs, pre-solved equilibria)
to pool workers and outcomes (results, telemetry snapshots) back, so
these objects must survive ``pickle`` with every array bit-identical.
"""

import pickle

import numpy as np

from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigRoundtrip:
    def test_fast_config(self, fast_config):
        assert roundtrip(fast_config) == fast_config

    def test_paper_default(self):
        config = MFGCPConfig.paper_default()
        assert roundtrip(config) == config


class TestEquilibriumRoundtrip:
    def test_arrays_survive(self, solved_equilibrium):
        copy = roundtrip(solved_equilibrium)
        assert copy.config == solved_equilibrium.config
        assert np.array_equal(copy.policy.table, solved_equilibrium.policy.table)
        assert np.array_equal(copy.density, solved_equilibrium.density)
        assert np.array_equal(copy.value, solved_equilibrium.value)
        assert copy.report.converged == solved_equilibrium.report.converged
        assert copy.report.n_iterations == solved_equilibrium.report.n_iterations

    def test_mean_field_path_survives(self, solved_equilibrium):
        path = solved_equilibrium.mean_field
        copy = roundtrip(path)
        for name in (
            "n_requests",
            "mean_control",
            "price",
            "mean_q",
            "mean_transfer",
            "sharing_benefit",
            "qualified_fraction",
            "case3_fraction",
        ):
            assert np.array_equal(getattr(copy, name), getattr(path, name)), name

    def test_copy_is_usable(self, solved_equilibrium):
        copy = roundtrip(solved_equilibrium)
        assert copy.accumulated_utility() == solved_equilibrium.accumulated_utility()


class TestEpochResultRoundtrip:
    def test_epoch_result_survives(self, fast_config):
        from repro.content.catalog import ContentCatalog
        from repro.content.requests import RequestProcess
        from repro.content.timeliness import TimelinessModel

        catalog = ContentCatalog.uniform(2, size_mb=100.0)
        requests = RequestProcess(
            n_contents=2,
            rate_per_edp=40.0,
            timeliness_model=TimelinessModel(l_max=3.0),
            rng=np.random.default_rng(0),
        )
        (epoch,) = MFGCPSolver(fast_config).run_epochs(catalog, requests)
        copy = roundtrip(epoch)
        assert copy.epoch == epoch.epoch
        assert copy.active_contents == epoch.active_contents
        assert np.array_equal(copy.popularity, epoch.popularity)
        assert np.array_equal(copy.timeliness, epoch.timeliness)
        assert copy.equilibria.keys() == epoch.equilibria.keys()
        for k in epoch.equilibria:
            assert np.array_equal(
                copy.equilibria[k].policy.table, epoch.equilibria[k].policy.table
            )
        assert copy.total_utility() == epoch.total_utility()
