"""Tests for the content-addressed checkpoint store."""

import os
import pickle

import numpy as np
import pytest

from repro.runtime import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    ExecutionPlan,
    WorkItem,
    execute_item,
    item_key,
)


def double(x):
    return 2 * x


def make_item(index=0, args=(21,), label="it", seed=None, **kwargs):
    return WorkItem(
        index=index, fn=double, args=args, label=label, seed=seed, **kwargs
    )


class TestItemKey:
    def test_stable_across_calls(self):
        assert item_key(make_item()) == item_key(make_item())

    def test_stable_across_plan_rebuilds(self):
        plan_a = ExecutionPlan.map(double, [(1,), (2,)], seed=7)
        plan_b = ExecutionPlan.map(double, [(1,), (2,)], seed=7)
        assert [item_key(i) for i in plan_a] == [item_key(i) for i in plan_b]

    @pytest.mark.parametrize(
        "variant",
        [
            dict(args=(22,)),
            dict(index=1),
            dict(label="other"),
            dict(seed=np.random.SeedSequence(5)),
        ],
    )
    def test_any_input_change_changes_key(self, variant):
        base = make_item()
        assert item_key(base) != item_key(make_item(**variant))

    def test_seed_lineage_matters(self):
        a = make_item(seed=np.random.SeedSequence(5))
        b = make_item(seed=np.random.SeedSequence(6))
        assert item_key(a) != item_key(b)

    def test_unpicklable_item_is_checkpoint_error(self):
        item = WorkItem(index=0, fn=double, args=(lambda: None,))
        with pytest.raises(CheckpointError, match="not picklable"):
            item_key(item)


class TestBatchedItemKeys:
    """Batched solver items hash their sorted content-index tuple.

    A batched run's checkpoint keys must never collide with a
    per-content run's (or with a differently sharded batched run), so
    ``--resume`` across a grain change recomputes instead of replaying
    the wrong cached object.
    """

    def _batched_item(self, content_ids, index=0):
        from repro.core.parameters import MFGCPConfig
        from repro.core.solver import _solve_content_batch_item

        shard = tuple(sorted(content_ids))
        configs = tuple(MFGCPConfig.fast() for _ in shard)
        return WorkItem(
            index=index,
            fn=_solve_content_batch_item,
            args=(shard, configs),
            label=f"batch:{shard[0]}-{shard[-1]}",
            accepts_telemetry=True,
        )

    def _scalar_item(self, content_id, index=0):
        from repro.core.parameters import MFGCPConfig
        from repro.core.solver import _solve_content_item

        return WorkItem(
            index=index,
            fn=_solve_content_item,
            args=(MFGCPConfig.fast(),),
            label=f"content:{content_id}",
            accepts_telemetry=True,
        )

    def test_batched_key_is_stable(self):
        assert item_key(self._batched_item([2, 0, 1])) == item_key(
            self._batched_item([0, 1, 2])
        )

    def test_batched_never_collides_with_per_content(self):
        batched = item_key(self._batched_item([0]))
        scalar = item_key(self._scalar_item(0))
        assert batched != scalar

    def test_different_shards_have_different_keys(self):
        assert item_key(self._batched_item([0, 1])) != item_key(
            self._batched_item([0, 1, 2])
        )
        assert item_key(self._batched_item([0, 1])) != item_key(
            self._batched_item([2, 3], index=1)
        )


class TestStoreRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        item = make_item()
        key = item_key(item)
        outcome = execute_item(item)
        store.save(key, outcome, label=item.label)
        loaded = store.load(key)
        assert loaded.index == outcome.index
        assert loaded.result == 42
        assert store.contains(key)
        assert len(store) == 1

    def test_manifest_records_label(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = item_key(make_item())
        store.save(key, execute_item(make_item()), label="it")
        reopened = CheckpointStore(tmp_path)
        manifest = reopened.validate_manifest()
        assert manifest["items"][key]["label"] == "it"
        assert manifest["schema"] == CHECKPOINT_SCHEMA_VERSION

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in range(4):
            item = make_item(index=index)
            store.save(item_key(item), execute_item(item), label=item.label)
        stray = [
            name
            for base, _, names in os.walk(tmp_path)
            for name in names
            if name.startswith(".tmp-ckpt-")
        ]
        assert stray == []

    def test_discard_forgets(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = item_key(make_item())
        store.save(key, execute_item(make_item()))
        store.discard(key)
        assert not store.contains(key)
        assert not os.path.exists(store.object_path(key))

    def test_reset_empties_the_store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = item_key(make_item())
        store.save(key, execute_item(make_item()))
        store.reset()
        assert len(store) == 0
        assert not store.contains(key)

    def test_missing_object_file_is_not_contained(self, tmp_path):
        # A manifest entry whose object file vanished must read as a
        # miss, not a hit that later explodes.
        store = CheckpointStore(tmp_path)
        key = item_key(make_item())
        store.save(key, execute_item(make_item()))
        os.unlink(store.object_path(key))
        assert not store.contains(key)


class TestCorruption:
    @pytest.fixture()
    def saved(self, tmp_path):
        store = CheckpointStore(tmp_path)
        item = make_item()
        key = item_key(item)
        store.save(key, execute_item(item), label=item.label)
        return store, key

    def test_flipped_byte_detected(self, saved):
        store, key = saved
        store.corrupt(key)
        with pytest.raises(CheckpointCorruptError):
            store.load(key)

    def test_flipped_payload_byte_fails_integrity_hash(self, saved):
        store, key = saved
        # Flip a byte in the middle, squarely inside the payload bytes.
        store.corrupt(key, position=len(open(store.object_path(key), "rb").read()) // 2)
        with pytest.raises(CheckpointCorruptError):
            store.load(key)

    def test_truncated_file_detected(self, saved):
        store, key = saved
        store.truncate(key)
        with pytest.raises(CheckpointCorruptError):
            store.load(key)

    def test_empty_file_detected(self, saved):
        store, key = saved
        store.truncate(key, keep=0)
        with pytest.raises(CheckpointCorruptError):
            store.load(key)

    def test_schema_version_mismatch_detected(self, saved):
        store, key = saved
        wrapper = pickle.load(open(store.object_path(key), "rb"))
        wrapper["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with open(store.object_path(key), "wb") as handle:
            pickle.dump(wrapper, handle)
        with pytest.raises(CheckpointCorruptError, match="schema"):
            store.load(key)

    def test_renamed_object_detected(self, saved):
        # A file copied under another item's key records the wrong key
        # inside its wrapper — content addressing catches the swap.
        store, key = saved
        other = item_key(make_item(index=1))
        os.rename(store.object_path(key), store.object_path(other))
        store._manifest["items"][other] = store._manifest["items"][key]
        with pytest.raises(CheckpointCorruptError, match="records key"):
            store.load(other)

    def test_wrapper_without_payload_detected(self, saved):
        store, key = saved
        wrapper = pickle.load(open(store.object_path(key), "rb"))
        del wrapper["payload"]
        with open(store.object_path(key), "wb") as handle:
            pickle.dump(wrapper, handle)
        with pytest.raises(CheckpointCorruptError, match="payload"):
            store.load(key)

    def test_batched_checkpoint_corruption_detected(self, tmp_path):
        # The corruption matrix must also cover the batched work-item
        # shape: an outcome holding a *list* of equilibria keyed by the
        # shard's sorted content tuple.  A flipped byte and a truncation
        # must both surface as CheckpointCorruptError, and the intact
        # sibling object must still load.
        from dataclasses import replace

        from repro.core.parameters import MFGCPConfig
        from repro.core.solver import _solve_content_batch_item

        cfg = replace(
            MFGCPConfig.fast(), n_time_steps=10, n_h=5, n_q=9, max_iterations=3
        )
        shard = (0, 1)
        item = WorkItem(
            index=0,
            fn=_solve_content_batch_item,
            args=(shard, (cfg, replace(cfg, content_size=8.0))),
            label="batch:0-1",
            accepts_telemetry=True,
        )
        sibling = WorkItem(
            index=1,
            fn=_solve_content_batch_item,
            args=((2, 3), (cfg, cfg)),
            label="batch:2-3",
            accepts_telemetry=True,
        )
        store = CheckpointStore(tmp_path)
        keys = []
        for it in (item, sibling):
            key = item_key(it)
            outcome = execute_item(it)
            assert isinstance(outcome.result, list) and len(outcome.result) == 2
            store.save(key, outcome, label=it.label)
            keys.append(key)

        store.corrupt(keys[0])
        with pytest.raises(CheckpointCorruptError):
            store.load(keys[0])
        loaded = store.load(keys[1])
        assert [r.config.content_size for r in loaded.result] == [
            cfg.content_size,
            cfg.content_size,
        ]

        store.truncate(keys[1])
        with pytest.raises(CheckpointCorruptError):
            store.load(keys[1])

    def test_non_outcome_payload_detected(self, saved):
        store, key = saved
        payload = pickle.dumps({"not": "an outcome"}, protocol=4)
        import hashlib

        wrapper = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        with open(store.object_path(key), "wb") as handle:
            pickle.dump(wrapper, handle)
        with pytest.raises(CheckpointCorruptError, match="ItemOutcome"):
            store.load(key)


class TestManifestValidation:
    def test_missing_manifest_refuses_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="nothing to resume"):
            store.validate_manifest()

    def test_garbage_manifest_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            handle.write("not json at all {")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.validate_manifest()

    def test_structurally_wrong_manifest_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            handle.write('["a", "list"]')
        with pytest.raises(CheckpointError, match="malformed"):
            store.validate_manifest()

    def test_wrong_schema_manifest_rejected(self, tmp_path):
        import json

        store = CheckpointStore(tmp_path)
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 999, "items": {}}, handle)
        with pytest.raises(CheckpointError, match="schema"):
            store.validate_manifest()

    def test_open_without_create_requires_store(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint store"):
            CheckpointStore(tmp_path / "nowhere", create=False)
