"""Tests for execution plans and work items."""

import numpy as np
import pytest

from repro.runtime import (
    ExecutionPlan,
    ParallelExecutor,
    SerialExecutor,
    WorkItem,
    as_executor,
    execute_item,
    make_executor,
    partition_indices,
)


def double(x):
    return 2 * x


def draw(x, rng=None):
    return float(rng.standard_normal()) + x


class TestWorkItem:
    def test_validates_index(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkItem(index=-1, fn=double, args=(1,))

    def test_validates_fn(self):
        with pytest.raises(TypeError, match="callable"):
            WorkItem(index=0, fn="not a function")

    def test_execute_returns_outcome(self):
        outcome = execute_item(WorkItem(index=3, fn=double, args=(21,)))
        assert outcome.index == 3
        assert outcome.result == 42
        assert outcome.telemetry is None


class TestExecutionPlan:
    def test_requires_contiguous_indices(self):
        items = [WorkItem(index=1, fn=double, args=(1,))]
        with pytest.raises(ValueError, match="indexed 0"):
            ExecutionPlan(items)

    def test_map_builds_labelled_items(self):
        plan = ExecutionPlan.map(double, [(1,), (2,)], labels=["a", "b"])
        assert len(plan) == 2
        assert [item.label for item in plan] == ["a", "b"]
        assert [item.args for item in plan] == [(1,), (2,)]

    def test_map_default_labels(self):
        plan = ExecutionPlan.map(double, [(1,)])
        assert plan[0].label == "double[0]"

    def test_map_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            ExecutionPlan.map(double, [(1,), (2,)], labels=["only-one"])

    def test_map_spawns_reproducible_seeds(self):
        plan_a = ExecutionPlan.map(draw, [(0,), (1,), (2,)], seed=42)
        plan_b = ExecutionPlan.map(draw, [(0,), (1,), (2,)], seed=42)
        results_a = [execute_item(item).result for item in plan_a]
        results_b = [execute_item(item).result for item in plan_b]
        assert results_a == results_b
        # Different items draw from independent streams.
        offsets = [r - i for i, r in enumerate(results_a)]
        assert len(set(offsets)) == len(offsets)

    def test_map_without_seed_injects_no_rng(self):
        plan = ExecutionPlan.map(double, [(1,)])
        assert plan[0].seed is None


class TestPartitionIndices:
    def test_covers_every_index_once_in_order(self):
        groups = partition_indices(10, 3)
        assert [i for g in groups for i in g] == list(range(10))

    def test_near_even(self):
        sizes = [len(g) for g in partition_indices(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_groups_collapses(self):
        groups = partition_indices(2, 5)
        assert groups == [(0,), (1,)]

    def test_zero_items_yield_zero_groups(self):
        # Regression: this used to raise through the modulo arithmetic;
        # an empty work list now partitions to an empty shard list.
        assert partition_indices(0, 4) == []

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            partition_indices(-1, 2)

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError, match="group"):
            partition_indices(4, 0)


class TestMakeExecutor:
    def test_serial_default(self):
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_process_spec(self):
        executor = make_executor("process:3")
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3
        assert executor.spec == "process:3"

    def test_workers_argument_overrides_spec(self):
        assert make_executor("process:3", workers=5).workers == 5

    def test_bare_process_uses_cpu_count(self):
        import os

        assert make_executor("process").workers == max(1, os.cpu_count() or 1)

    def test_rejects_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown executor spec"):
            make_executor("threads")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="worker count"):
            make_executor("process:lots")
        with pytest.raises(ValueError, match="positive"):
            make_executor("process:0")

    def test_as_executor_normalises(self):
        serial = SerialExecutor()
        assert as_executor(serial) is serial
        assert isinstance(as_executor(None), SerialExecutor)
        assert isinstance(as_executor("process:2"), ParallelExecutor)
