"""Tests for the resumable executor: checkpoint/resume, retry, degrade.

The functions under test must pickle into pool workers, so every work
fn lives at module scope and records its executions by appending to a
log file (append writes of one short line are atomic on POSIX).
"""

import io
import json
import os
import pickle

import pytest

from repro.obs.telemetry import SolverTelemetry, StrictNumericsError
from repro.runtime import (
    CheckpointStore,
    ExecutionPlan,
    FaultPolicy,
    ItemFailedError,
    ParallelExecutor,
    ResumableExecutor,
    item_key,
)
from repro.testing import clear_faults, install_faults


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


def record(x, log_dir, rng=None):
    """Work fn: logs its execution, returns a deterministic value."""
    with open(os.path.join(log_dir, "executions.log"), "a") as handle:
        handle.write(f"{x}\n")
    noise = float(rng.standard_normal()) if rng is not None else 0.0
    return x * 10 + noise


def make_plan(log_dir, n=5, seed=None):
    return ExecutionPlan.map(
        record,
        [(i, str(log_dir)) for i in range(n)],
        labels=[f"it:{i}" for i in range(n)],
        seed=seed,
    )


def executions(log_dir):
    path = os.path.join(str(log_dir), "executions.log")
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        return [line.strip() for line in handle if line.strip()]


def jsonl_telemetry():
    buffer = io.StringIO()
    return SolverTelemetry.to_jsonl(buffer), buffer


def events_of(buffer, kind):
    buffer.seek(0)
    return [
        event
        for line in buffer
        if line.strip()
        for event in [json.loads(line)]
        if event.get("ev") == kind
    ]


class TestResume:
    def test_kill_then_resume_runs_only_the_remainder(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        install_faults("raise:item=3,times=-1")
        with pytest.raises(ItemFailedError, match="it:3"):
            ResumableExecutor("serial", store=store).execute(make_plan(tmp_path))
        # Items 0-2 completed and were checkpointed; 3 died, 4 never ran.
        assert executions(tmp_path) == ["0", "1", "2"]
        assert len(store) == 3

        clear_faults()
        telemetry, buffer = jsonl_telemetry()
        resumed = ResumableExecutor(
            "serial", store=store, telemetry=telemetry
        ).execute(make_plan(tmp_path))
        telemetry.close()
        assert [o.result for o in resumed] == [0, 10, 20, 30, 40]
        # Exactly the two missing items executed on resume.
        assert executions(tmp_path) == ["0", "1", "2", "3", "4"]
        assert len(events_of(buffer, "item.cached")) == 3

    def test_resumed_results_match_uninterrupted_bitwise(self, tmp_path):
        clean_dir, resumed_dir = tmp_path / "clean", tmp_path / "resumed"
        clean_dir.mkdir(), resumed_dir.mkdir()
        clean = ResumableExecutor("serial").execute(
            make_plan(clean_dir, seed=42)
        )

        store = CheckpointStore(tmp_path / "ckpt")
        install_faults("raise:item=2,times=-1")
        with pytest.raises(ItemFailedError):
            ResumableExecutor("serial", store=store).execute(
                make_plan(resumed_dir, seed=42)
            )
        clear_faults()
        resumed = ResumableExecutor("serial", store=store).execute(
            make_plan(resumed_dir, seed=42)
        )
        assert pickle.dumps([o.result for o in clean]) == pickle.dumps(
            [o.result for o in resumed]
        )

    def test_fully_cached_rerun_executes_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        executor = ResumableExecutor("serial", store=store)
        executor.execute(make_plan(tmp_path))
        assert len(executions(tmp_path)) == 5

        telemetry, buffer = jsonl_telemetry()
        again = ResumableExecutor(
            "serial", store=store, telemetry=telemetry
        ).execute(make_plan(tmp_path))
        telemetry.close()
        assert len(executions(tmp_path)) == 5  # nothing re-ran
        assert [o.result for o in again] == [0, 10, 20, 30, 40]
        assert len(events_of(buffer, "item.cached")) == 5

    def test_changed_inputs_miss_the_cache(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=1)
        )
        # A different seed changes every item key: full recompute.
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=2)
        )
        assert len(executions(tmp_path)) == 10


class TestRetry:
    def test_transient_fault_is_retried_to_success(self, tmp_path):
        install_faults("raise:item=1")  # fails attempt 0 only
        telemetry, buffer = jsonl_telemetry()
        outcomes = ResumableExecutor(
            "serial",
            policy=FaultPolicy(max_retries=2),
            telemetry=telemetry,
        ).execute(make_plan(tmp_path))
        telemetry.close()
        assert [o.result for o in outcomes] == [0, 10, 20, 30, 40]
        retries = events_of(buffer, "item.retry")
        assert len(retries) == 1
        assert retries[0]["label"] == "it:1"
        assert retries[0]["attempt"] == 0

    def test_retried_run_matches_clean_run_bitwise(self, tmp_path):
        clean_dir, faulty_dir = tmp_path / "clean", tmp_path / "faulty"
        clean_dir.mkdir(), faulty_dir.mkdir()
        clean = ResumableExecutor("serial").execute(make_plan(clean_dir, seed=9))
        install_faults("raise:item=0;raise:item=3")
        retried = ResumableExecutor(
            "serial", policy=FaultPolicy(max_retries=1)
        ).execute(make_plan(faulty_dir, seed=9))
        assert pickle.dumps([o.result for o in clean]) == pickle.dumps(
            [o.result for o in retried]
        )

    def test_backoff_schedule_is_deterministic(self, tmp_path):
        sleeps = []
        install_faults("raise:item=0,times=3")
        policy = FaultPolicy(
            max_retries=3, backoff_base=0.25, backoff_factor=2.0, backoff_max=10.0
        )
        outcomes = ResumableExecutor(
            "serial", policy=policy, sleep=sleeps.append
        ).execute(make_plan(tmp_path, n=1))
        assert outcomes[0].result == 0
        assert sleeps == [0.25, 0.5, 1.0]

    def test_exhausted_fail_raises_item_failed(self, tmp_path):
        install_faults("raise:item=0,times=-1")
        with pytest.raises(ItemFailedError) as excinfo:
            ResumableExecutor(
                "serial", policy=FaultPolicy(max_retries=2)
            ).execute(make_plan(tmp_path, n=1))
        assert excinfo.value.attempts == 3
        assert excinfo.value.label == "it:0"

    def test_strict_numerics_is_never_retried(self, tmp_path):
        install_faults("raise:item=0,exc=strict,times=-1")
        with pytest.raises(StrictNumericsError):
            ResumableExecutor(
                "serial", policy=FaultPolicy(max_retries=5)
            ).execute(make_plan(tmp_path, n=1))
        # Zero retries burned: the item never re-executed.
        assert executions(tmp_path) == []


class TestExhaustionModes:
    def test_skip_records_none_and_carries_on(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        install_faults("raise:item=2,times=-1")
        telemetry, buffer = jsonl_telemetry()
        outcomes = ResumableExecutor(
            "serial",
            store=store,
            policy=FaultPolicy(on_exhaust="skip"),
            telemetry=telemetry,
        ).execute(make_plan(tmp_path))
        telemetry.close()
        assert [o.result for o in outcomes] == [0, 10, None, 30, 40]
        # Skipped items are never checkpointed: a rerun tries again.
        assert len(store) == 4
        failed = events_of(buffer, "item.failed")
        assert len(failed) == 1
        assert failed[0]["action"] == "skip"

    def test_degrade_substitutes_the_fallback(self, tmp_path):
        install_faults("raise:item=2,times=-1")
        outcomes = ResumableExecutor(
            "serial",
            policy=FaultPolicy(on_exhaust="degrade", fallback=-99),
        ).execute(make_plan(tmp_path))
        assert [o.result for o in outcomes] == [0, 10, -99, 30, 40]


class TestParallel:
    def test_parallel_matches_serial_bitwise(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "s", tmp_path / "p"
        serial_dir.mkdir(), parallel_dir.mkdir()
        install_faults("raise:item=1")
        policy = FaultPolicy(max_retries=2)
        serial = ResumableExecutor("serial", policy=policy).execute(
            make_plan(serial_dir, seed=3)
        )
        parallel = ResumableExecutor(
            ParallelExecutor(workers=2),
            store=CheckpointStore(tmp_path / "ckpt"),
            policy=policy,
        ).execute(make_plan(parallel_dir, seed=3))
        assert pickle.dumps([o.result for o in serial]) == pickle.dumps(
            [o.result for o in parallel]
        )

    def test_parallel_kill_then_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        install_faults("raise:item=2,times=-1")
        with pytest.raises(ItemFailedError):
            ResumableExecutor(ParallelExecutor(workers=2), store=store).execute(
                make_plan(tmp_path, seed=11)
            )
        clear_faults()
        resumed = ResumableExecutor(
            ParallelExecutor(workers=2), store=store
        ).execute(make_plan(tmp_path, seed=11))
        clean_dir = tmp_path / "clean-ref"
        clean_dir.mkdir()
        clean = ResumableExecutor("serial").execute(
            make_plan(clean_dir, seed=11)
        )
        assert pickle.dumps([o.result for o in resumed]) == pickle.dumps(
            [o.result for o in clean]
        )

    def test_fatal_failure_drains_running_siblings_into_store(self, tmp_path):
        # Item 0 dies instantly; item 1 is mid-flight on the other
        # worker.  The abort path must let item 1 land in the store so
        # a resume only recomputes item 0.
        store = CheckpointStore(tmp_path / "ckpt")
        install_faults("raise:item=0,times=-1;slow:item=1,seconds=0.2")
        with pytest.raises(ItemFailedError, match="it:0"):
            ResumableExecutor(ParallelExecutor(workers=2), store=store).execute(
                make_plan(tmp_path, n=2, seed=4)
            )
        assert len(store) == 1
        clear_faults()
        resumed = ResumableExecutor(
            ParallelExecutor(workers=2), store=store
        ).execute(make_plan(tmp_path, n=2, seed=4))
        # Each item executed exactly once across both runs.
        assert sorted(executions(tmp_path)) == ["0", "1"]
        clean_dir = tmp_path / "clean-ref"
        clean_dir.mkdir()
        clean = ResumableExecutor("serial").execute(
            make_plan(clean_dir, n=2, seed=4)
        )
        assert pickle.dumps([o.result for o in resumed]) == pickle.dumps(
            [o.result for o in clean]
        )


class TestCorruptCheckpoints:
    def test_flipped_byte_recomputes_only_that_item(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        baseline = ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=5)
        )
        assert len(executions(tmp_path)) == 5
        store.corrupt(item_key(make_plan(tmp_path, seed=5)[1]))

        telemetry, buffer = jsonl_telemetry()
        resumed = ResumableExecutor(
            "serial", store=store, telemetry=telemetry
        ).execute(make_plan(tmp_path, seed=5))
        telemetry.close()
        # Only the damaged item re-executed; results are unchanged.
        assert len(executions(tmp_path)) == 6
        assert pickle.dumps([o.result for o in baseline]) == pickle.dumps(
            [o.result for o in resumed]
        )
        diags = events_of(buffer, "diag.checkpoint.corrupt")
        assert len(diags) == 1
        assert diags[0]["severity"] == "warning"
        assert diags[0]["action"] == "recompute"

    def test_truncated_object_recomputes_only_that_item(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=5)
        )
        store.truncate(item_key(make_plan(tmp_path, seed=5)[0]))
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=5)
        )
        assert len(executions(tmp_path)) == 6

    def test_mixed_schema_versions_recompute_only_affected(self, tmp_path):
        from repro.runtime import CHECKPOINT_SCHEMA_VERSION

        store = CheckpointStore(tmp_path / "ckpt")
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=5)
        )
        key = item_key(make_plan(tmp_path, seed=5)[3])
        with open(store.object_path(key), "rb") as handle:
            wrapper = pickle.load(handle)
        wrapper["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with open(store.object_path(key), "wb") as handle:
            pickle.dump(wrapper, handle)
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path, seed=5)
        )
        assert len(executions(tmp_path)) == 6

    def test_corrupt_fault_rule_damages_the_saved_object(self, tmp_path):
        install_faults("corrupt:item=0")
        store = CheckpointStore(tmp_path / "ckpt")
        ResumableExecutor("serial", store=store).execute(make_plan(tmp_path))
        clear_faults()
        # The rerun detects the damage and recomputes exactly item 0.
        ResumableExecutor("serial", store=store).execute(make_plan(tmp_path))
        assert len(executions(tmp_path)) == 6

    def test_capture_mismatch_recomputes(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        # First run without telemetry capture: snapshots are None.
        ResumableExecutor("serial", store=store).execute(
            make_plan(tmp_path), capture=False
        )
        telemetry, buffer = jsonl_telemetry()
        ResumableExecutor(
            "serial", store=store, telemetry=telemetry
        ).execute(make_plan(tmp_path), capture=True)
        telemetry.close()
        # A capture-less checkpoint cannot serve a capturing run.
        assert len(executions(tmp_path)) == 10
        retries = events_of(buffer, "item.retry")
        assert retries and "telemetry" in retries[0]["reason"]


class TestWrapperContract:
    def test_refuses_nested_wrappers(self):
        with pytest.raises(ValueError, match="nest"):
            ResumableExecutor(ResumableExecutor("serial"))

    def test_spec_names_the_inner_backend(self):
        assert ResumableExecutor("serial").spec == "resumable[serial]"
        assert (
            ResumableExecutor(ParallelExecutor(workers=3)).spec
            == "resumable[process:3]"
        )
