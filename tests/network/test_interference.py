"""Tests for mean-field interference calibration."""

import numpy as np
import pytest

from repro.core.parameters import ChannelParameters
from repro.network.interference import calibrate_channel, mean_interference
from repro.network.topology import NetworkTopology, PlacementConfig


def make_topology(n_edps=8, n_requesters=20, seed=0, area=500.0):
    return NetworkTopology(
        config=PlacementConfig(
            area_size=area, n_edps=n_edps, n_requesters=n_requesters
        ),
        rng=np.random.default_rng(seed),
    )


class TestMeanInterference:
    def test_positive_for_multicell(self):
        value = mean_interference(make_topology(), ChannelParameters())
        assert value > 0.0

    def test_zero_for_single_edp(self):
        value = mean_interference(
            make_topology(n_edps=1), ChannelParameters()
        )
        assert value == 0.0

    def test_grows_with_density(self):
        sparse = mean_interference(make_topology(n_edps=4), ChannelParameters())
        dense = mean_interference(make_topology(n_edps=40), ChannelParameters())
        assert dense > sparse

    def test_scales_with_power(self):
        base = ChannelParameters()
        doubled = ChannelParameters(transmission_power=2.0)
        topo = make_topology()
        assert mean_interference(topo, doubled) == pytest.approx(
            2.0 * mean_interference(topo, base)
        )

    def test_manual_two_edp_geometry(self):
        # Two EDPs, one requester: interference is exactly the non-serving
        # EDP's expected received power.
        topo = make_topology(n_edps=2, n_requesters=1, seed=3)
        ch = ChannelParameters()
        ou_mean, ou_std = ch.process().stationary_moments()
        expected_h2 = ou_mean**2 + ou_std**2
        dist = topo.edp_requester_distances()[:, 0]
        serving = topo.serving_edp()[0]
        other = 1 - serving
        manual = expected_h2 * ch.transmission_power * dist[other] ** (-3.0)
        assert mean_interference(topo, ch) == pytest.approx(manual)


class TestCalibrateChannel:
    def test_sets_topology_quantities(self):
        topo = make_topology()
        base = ChannelParameters()
        calibrated = calibrate_channel(topo, base)
        assert calibrated.mean_distance == pytest.approx(
            topo.mean_association_distance()
        )
        assert calibrated.mean_interference == pytest.approx(
            mean_interference(topo, base)
        )

    def test_calibrated_rate_positive(self):
        calibrated = calibrate_channel(make_topology(), ChannelParameters())
        rate = float(calibrated.rate_of_fading(np.array(calibrated.mean)))
        assert rate > 0.0

    def test_interference_lowers_grid_rate(self):
        topo = make_topology(n_edps=30)
        base = ChannelParameters()
        calibrated = calibrate_channel(topo, base)
        # At the same representative distance, interference cuts rate.
        from dataclasses import replace

        no_interf = replace(calibrated, mean_interference=0.0)
        h = np.array(base.mean)
        assert float(calibrated.rate_of_fading(h)) < float(no_interf.rate_of_fading(h))

    def test_rejects_rate_below_floor(self):
        # A dense deployment saturates the SINR; requiring the backhaul
        # rate as a floor flags the interference-dominated regime.
        topo = make_topology(n_edps=60, area=50.0)
        base = ChannelParameters()
        calibrated = calibrate_channel(topo, base)  # no floor: fine
        rate = float(calibrated.rate_of_fading(np.array(base.mean)))
        with pytest.raises(ValueError, match="interference-dominated"):
            calibrate_channel(topo, base, min_rate=rate + 1.0)
