"""Tests for the channel gain model."""

import numpy as np
import pytest

from repro.network.channel import ChannelModel, channel_gain
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess


def make_model(seed=0, distances=None, tau=3.0):
    distances = np.full((3, 4), 50.0) if distances is None else distances
    return ChannelModel(
        fading_process=OrnsteinUhlenbeckProcess(
            reversion=4.0, mean=5.0, volatility=0.5,
            rng=np.random.default_rng(seed),
        ),
        distances=distances,
        path_loss_exponent=tau,
    )


class TestChannelGain:
    def test_formula(self):
        gain = channel_gain(2.0, 10.0, 3.0)
        assert float(gain) == pytest.approx(4.0 * 10.0 ** -3)

    def test_negative_fading_enters_squared(self):
        assert channel_gain(-2.0, 10.0, 3.0) == channel_gain(2.0, 10.0, 3.0)

    def test_gain_decreases_with_distance(self):
        near = channel_gain(1.0, 10.0, 3.0)
        far = channel_gain(1.0, 100.0, 3.0)
        assert near > far

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError, match="distances"):
            channel_gain(1.0, 0.0, 3.0)

    def test_broadcasting(self):
        gains = channel_gain(np.ones((2, 3)), np.full((2, 3), 10.0), 2.0)
        assert gains.shape == (2, 3)


class TestChannelModel:
    def test_initial_fading_from_stationary_law(self):
        model = make_model()
        mean, std = model.fading_process.stationary_moments()
        # 12 links is few, but all should be within ~5 sigma.
        assert np.all(np.abs(model.fading - mean) < 6 * std)

    def test_explicit_initial_fading(self):
        init = np.full((3, 4), 7.0)
        model = ChannelModel(
            fading_process=OrnsteinUhlenbeckProcess(
                reversion=4.0, mean=5.0, volatility=0.5
            ),
            distances=np.full((3, 4), 50.0),
            initial_fading=init,
        )
        assert np.all(model.fading == 7.0)

    def test_initial_fading_shape_mismatch(self):
        with pytest.raises(ValueError, match="initial_fading"):
            ChannelModel(
                fading_process=OrnsteinUhlenbeckProcess(
                    reversion=4.0, mean=5.0, volatility=0.5
                ),
                distances=np.full((3, 4), 50.0),
                initial_fading=np.zeros((2, 2)),
            )

    def test_advance_reverts_toward_mean(self):
        model = make_model(seed=1)
        model.fading = np.full((3, 4), 20.0)
        model.advance(10.0)
        assert np.all(np.abs(model.fading - 5.0) < 2.0)

    def test_gains_shape_and_positivity(self):
        model = make_model()
        gains = model.gains()
        assert gains.shape == (3, 4)
        assert np.all(gains >= 0.0)

    def test_single_link_gain(self):
        model = make_model()
        assert model.gain(1, 2) == pytest.approx(
            float(model.fading[1, 2]) ** 2 * 50.0 ** -3
        )

    def test_rejects_nonpositive_distances(self):
        with pytest.raises(ValueError, match="distances"):
            make_model(distances=np.zeros((2, 2)))
