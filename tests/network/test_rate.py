"""Tests for the SINR transmission-rate model (Eq. (2))."""

import numpy as np
import pytest

from repro.network.rate import RateModel, sinr, transmission_rate


class TestSINR:
    def test_single_edp_no_interference(self):
        gains = np.array([[2.0, 4.0]])
        powers = np.array([3.0])
        s = sinr(gains, powers, noise_power=1.5)
        assert np.allclose(s, gains * 3.0 / 1.5)

    def test_two_edps_interfere(self):
        gains = np.array([[1.0], [2.0]])
        powers = np.array([1.0, 1.0])
        s = sinr(gains, powers, noise_power=0.5)
        # Link 0 sees EDP 1's signal as interference and vice versa.
        assert s[0, 0] == pytest.approx(1.0 / (0.5 + 2.0))
        assert s[1, 0] == pytest.approx(2.0 / (0.5 + 1.0))

    def test_interference_lowers_sinr(self):
        gains = np.array([[1.0], [0.0]])
        powers = np.array([1.0, 1.0])
        clean = sinr(gains, powers, 0.5)[0, 0]
        gains_busy = np.array([[1.0], [5.0]])
        busy = sinr(gains_busy, powers, 0.5)[0, 0]
        assert busy < clean

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            sinr(np.ones(3), np.ones(3), 1.0)
        with pytest.raises(ValueError, match="powers"):
            sinr(np.ones((2, 3)), np.ones(3), 1.0)

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError, match="noise_power"):
            sinr(np.ones((2, 3)), np.ones(2), 0.0)


class TestTransmissionRate:
    def test_shannon_formula(self):
        gains = np.array([[1.0]])
        powers = np.array([1.0])
        rate = transmission_rate(gains, powers, noise_power=1.0, bandwidth=10.0)
        assert rate[0, 0] == pytest.approx(10.0 * np.log2(2.0))

    def test_rate_non_negative(self):
        rng = np.random.default_rng(0)
        gains = rng.uniform(0.0, 1.0, size=(4, 6))
        rates = transmission_rate(gains, np.ones(4), 1e-3, 5.0)
        assert np.all(rates >= 0.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            transmission_rate(np.ones((1, 1)), np.ones(1), 1.0, 0.0)


class TestRateModel:
    def make(self):
        return RateModel(bandwidth=14.0, noise_power=2e-5)

    def test_interference_free_rate(self):
        model = self.make()
        rate = model.interference_free_rate(gain=2e-5, power=1.0)
        assert rate == pytest.approx(14.0 * np.log2(2.0))

    def test_interference_free_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            self.make().interference_free_rate(-1.0, 1.0)

    def test_effective_rate_monotone_in_fading(self):
        model = self.make()
        h = np.linspace(1.0, 10.0, 20)
        rates = model.effective_rate_of_fading(
            h, distance=50.0, power=1.0, path_loss_exponent=3.0
        )
        assert np.all(np.diff(rates) > 0)

    def test_effective_rate_interference_penalty(self):
        model = self.make()
        clean = model.effective_rate_of_fading(5.0, 50.0, 1.0, 3.0)
        noisy = model.effective_rate_of_fading(5.0, 50.0, 1.0, 3.0, interference=1e-4)
        assert noisy < clean

    def test_rates_wrapper_matches_function(self):
        model = self.make()
        gains = np.array([[1e-5, 2e-5], [3e-5, 4e-5]])
        powers = np.array([1.0, 2.0])
        assert np.allclose(
            model.rates(gains, powers),
            transmission_rate(gains, powers, 2e-5, 14.0),
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="bandwidth"):
            RateModel(bandwidth=0.0, noise_power=1.0)
        with pytest.raises(ValueError, match="noise_power"):
            RateModel(bandwidth=1.0, noise_power=0.0)
