"""Tests for EDP/requester placement and association."""

import numpy as np
import pytest

from repro.network.topology import NetworkTopology, PlacementConfig


def make(n_edps=10, n_requesters=25, area=500.0, seed=0, min_distance=1.0):
    return NetworkTopology(
        config=PlacementConfig(
            area_size=area,
            n_edps=n_edps,
            n_requesters=n_requesters,
            min_distance=min_distance,
        ),
        rng=np.random.default_rng(seed),
    )


class TestPlacement:
    def test_positions_inside_area(self):
        topo = make(area=100.0)
        for pos in (topo.edp_positions, topo.requester_positions):
            assert np.all(pos >= 0.0)
            assert np.all(pos <= 100.0)

    def test_position_counts(self):
        topo = make(n_edps=7, n_requesters=13)
        assert topo.edp_positions.shape == (7, 2)
        assert topo.requester_positions.shape == (13, 2)

    def test_distances_floored(self):
        topo = make(min_distance=5.0)
        assert np.all(topo.edp_requester_distances() >= 5.0)

    def test_edp_distances_zero_diagonal(self):
        dist = make().edp_edp_distances()
        assert np.all(np.diag(dist) == 0.0)
        off = dist[~np.eye(dist.shape[0], dtype=bool)]
        assert np.all(off >= 1.0)


class TestAssociation:
    def test_serving_edp_is_nearest(self):
        topo = make(n_edps=5, n_requesters=10)
        dist = topo.edp_requester_distances()
        serving = topo.serving_edp()
        for j in range(10):
            assert dist[serving[j], j] == dist[:, j].min()

    def test_served_requesters_partition(self):
        topo = make(n_edps=5, n_requesters=20)
        served = topo.served_requesters()
        all_requesters = sorted(j for lst in served.values() for j in lst)
        assert all_requesters == list(range(20))

    def test_load_sums_to_population(self):
        topo = make(n_edps=4, n_requesters=30)
        assert topo.load_per_edp().sum() == 30

    def test_mean_association_distance_positive(self):
        assert make().mean_association_distance() > 0.0

    def test_mean_association_distance_empty(self):
        assert make(n_requesters=0).mean_association_distance() == 0.0


class TestAdjacency:
    def test_k_nearest_default(self):
        peers = make(n_edps=10).adjacent_edps(0)
        assert len(peers) == 5
        assert 0 not in peers

    def test_k_capped_by_population(self):
        peers = make(n_edps=3).adjacent_edps(0, k=10)
        assert len(peers) == 2

    def test_radius_query(self):
        topo = make(n_edps=10, area=100.0)
        peers = topo.adjacent_edps(0, radius=1e9)
        assert len(peers) == 9

    def test_radius_zero_gives_none(self):
        topo = make(n_edps=10)
        assert len(topo.adjacent_edps(0, radius=0.5)) == 0

    def test_rejects_bad_index(self):
        with pytest.raises(IndexError):
            make(n_edps=3).adjacent_edps(3)


class TestGraphAPI:
    def test_distance_matches_matrix(self):
        topo = make(n_edps=6)
        dist = topo.edp_edp_distances()
        for a in range(6):
            for b in range(6):
                assert topo.distance(a, b) == dist[a, b]

    def test_distance_symmetric_zero_diagonal(self):
        topo = make(n_edps=5)
        assert topo.distance(2, 2) == 0.0
        assert topo.distance(1, 3) == topo.distance(3, 1) >= 1.0

    def test_distance_rejects_bad_index(self):
        with pytest.raises(IndexError):
            make(n_edps=3).distance(0, 3)

    def test_matrix_copy_does_not_corrupt_cache(self):
        topo = make(n_edps=5)
        before = topo.distance(0, 1)
        matrix = topo.edp_edp_distances()
        matrix[:] = -1.0
        assert topo.distance(0, 1) == before

    def test_neighbors_sorted_by_distance(self):
        topo = make(n_edps=12)
        peers = topo.neighbors(0, k=6)
        dists = [topo.distance(0, int(p)) for p in peers]
        assert dists == sorted(dists)

    def test_neighbors_radius_sorted_and_bounded(self):
        topo = make(n_edps=12, area=100.0)
        peers = topo.neighbors(3, radius=60.0)
        dists = [topo.distance(3, int(p)) for p in peers]
        assert dists == sorted(dists)
        assert all(d <= 60.0 for d in dists)
        assert 3 not in peers

    def test_neighbors_matches_adjacent_edps(self):
        topo = make(n_edps=10)
        assert list(topo.neighbors(2, k=4)) == list(topo.adjacent_edps(2, k=4))

    def test_path_trivial(self):
        assert make(n_edps=4).path(2, 2) == [2]

    def test_path_endpoints_and_edges(self):
        topo = make(n_edps=15)
        hops = topo.path(0, 14, k=3)
        assert hops[0] == 0 and hops[-1] == 14
        assert len(set(hops)) == len(hops)
        for u, v in zip(hops, hops[1:]):
            # every hop is an edge of the symmetrised k-NN graph
            assert v in topo.neighbors(u, k=3) or u in topo.neighbors(v, k=3)

    def test_path_no_longer_than_direct_graph_distance(self):
        topo = make(n_edps=10)
        hops = topo.path(0, 9, k=9)  # complete graph: direct edge wins
        assert hops == [0, 9]

    def test_path_unreachable_raises(self):
        topo = make(n_edps=8)
        with pytest.raises(ValueError, match="unreachable"):
            topo.path(0, 7, radius=0.5)

    def test_path_deterministic(self):
        a, b = make(n_edps=20, seed=3), make(n_edps=20, seed=3)
        assert a.path(1, 17, k=4) == b.path(1, 17, k=4)


class TestValidation:
    def test_rejects_bad_area(self):
        with pytest.raises(ValueError, match="area_size"):
            PlacementConfig(area_size=0.0)

    def test_rejects_no_edps(self):
        with pytest.raises(ValueError, match="EDP"):
            PlacementConfig(n_edps=0)

    def test_rejects_negative_requesters(self):
        with pytest.raises(ValueError, match="n_requesters"):
            PlacementConfig(n_requesters=-1)

    def test_rejects_bad_min_distance(self):
        with pytest.raises(ValueError, match="min_distance"):
            PlacementConfig(min_distance=0.0)
