"""Tests for EDP/requester placement and association."""

import numpy as np
import pytest

from repro.network.topology import NetworkTopology, PlacementConfig


def make(n_edps=10, n_requesters=25, area=500.0, seed=0, min_distance=1.0):
    return NetworkTopology(
        config=PlacementConfig(
            area_size=area,
            n_edps=n_edps,
            n_requesters=n_requesters,
            min_distance=min_distance,
        ),
        rng=np.random.default_rng(seed),
    )


class TestPlacement:
    def test_positions_inside_area(self):
        topo = make(area=100.0)
        for pos in (topo.edp_positions, topo.requester_positions):
            assert np.all(pos >= 0.0)
            assert np.all(pos <= 100.0)

    def test_position_counts(self):
        topo = make(n_edps=7, n_requesters=13)
        assert topo.edp_positions.shape == (7, 2)
        assert topo.requester_positions.shape == (13, 2)

    def test_distances_floored(self):
        topo = make(min_distance=5.0)
        assert np.all(topo.edp_requester_distances() >= 5.0)

    def test_edp_distances_zero_diagonal(self):
        dist = make().edp_edp_distances()
        assert np.all(np.diag(dist) == 0.0)
        off = dist[~np.eye(dist.shape[0], dtype=bool)]
        assert np.all(off >= 1.0)


class TestAssociation:
    def test_serving_edp_is_nearest(self):
        topo = make(n_edps=5, n_requesters=10)
        dist = topo.edp_requester_distances()
        serving = topo.serving_edp()
        for j in range(10):
            assert dist[serving[j], j] == dist[:, j].min()

    def test_served_requesters_partition(self):
        topo = make(n_edps=5, n_requesters=20)
        served = topo.served_requesters()
        all_requesters = sorted(j for lst in served.values() for j in lst)
        assert all_requesters == list(range(20))

    def test_load_sums_to_population(self):
        topo = make(n_edps=4, n_requesters=30)
        assert topo.load_per_edp().sum() == 30

    def test_mean_association_distance_positive(self):
        assert make().mean_association_distance() > 0.0

    def test_mean_association_distance_empty(self):
        assert make(n_requesters=0).mean_association_distance() == 0.0


class TestAdjacency:
    def test_k_nearest_default(self):
        peers = make(n_edps=10).adjacent_edps(0)
        assert len(peers) == 5
        assert 0 not in peers

    def test_k_capped_by_population(self):
        peers = make(n_edps=3).adjacent_edps(0, k=10)
        assert len(peers) == 2

    def test_radius_query(self):
        topo = make(n_edps=10, area=100.0)
        peers = topo.adjacent_edps(0, radius=1e9)
        assert len(peers) == 9

    def test_radius_zero_gives_none(self):
        topo = make(n_edps=10)
        assert len(topo.adjacent_edps(0, radius=0.5)) == 0

    def test_rejects_bad_index(self):
        with pytest.raises(IndexError):
            make(n_edps=3).adjacent_edps(3)


class TestValidation:
    def test_rejects_bad_area(self):
        with pytest.raises(ValueError, match="area_size"):
            PlacementConfig(area_size=0.0)

    def test_rejects_no_edps(self):
        with pytest.raises(ValueError, match="EDP"):
            PlacementConfig(n_edps=0)

    def test_rejects_negative_requesters(self):
        with pytest.raises(ValueError, match="n_requesters"):
            PlacementConfig(n_requesters=-1)

    def test_rejects_bad_min_distance(self):
        with pytest.raises(ValueError, match="min_distance"):
            PlacementConfig(min_distance=0.0)
