"""Smoke coverage for the runnable examples.

Every example must at least compile; the two fastest are executed end
to end so the documented user journey stays green.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesCompile:
    def test_examples_exist(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "video_marketplace.py",
            "traffic_data_caching.py",
            "capacity_constrained_caching.py",
            "breaking_news_cycle.py",
            "heterogeneous_edge.py",
            "stationary_operations.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        compile(path.read_text(encoding="utf-8"), str(path), "exec")

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_has_main_guard(self, path):
        text = path.read_text(encoding="utf-8")
        assert '__name__ == "__main__"' in text
        assert text.lstrip().startswith('"""'), "examples start with a docstring"


class TestExamplesRun:
    @pytest.mark.parametrize(
        "name", ["quickstart.py", "heterogeneous_edge.py"]
    )
    def test_runs_clean(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip(), "example produced no output"
