"""Tests for the convergence diagnostics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    fixed_point_rate,
    is_monotone_tail,
    iterations_to_tolerance,
)
from repro.core.equilibrium import ConvergenceReport, IterationRecord


def report_from_changes(changes):
    history = [
        IterationRecord(i + 1, c, 0.0, 0.5, 0.5) for i, c in enumerate(changes)
    ]
    return ConvergenceReport(
        converged=True,
        n_iterations=len(changes),
        final_policy_change=changes[-1],
        history=history,
    )


class TestFixedPointRate:
    def test_geometric_series_recovered(self):
        report = report_from_changes([1.0 * 0.6**k for k in range(8)])
        assert fixed_point_rate(report) == pytest.approx(0.6, rel=1e-6)

    def test_contraction_below_one(self, solved_equilibrium):
        rate = fixed_point_rate(solved_equilibrium.report)
        assert rate < 1.0

    def test_short_history_nan(self):
        report = report_from_changes([0.5, 0.25])
        assert np.isnan(fixed_point_rate(report))


class TestIterationsToTolerance:
    def test_finds_first_crossing(self):
        report = report_from_changes([1.0, 0.5, 0.05, 0.01])
        assert iterations_to_tolerance(report, 0.1) == 3

    def test_never_reached(self):
        report = report_from_changes([1.0, 0.9])
        assert iterations_to_tolerance(report, 0.1) == -1

    def test_rejects_bad_tolerance(self):
        report = report_from_changes([1.0])
        with pytest.raises(ValueError, match="tolerance"):
            iterations_to_tolerance(report, 0.0)


class TestMonotoneTail:
    def test_decreasing_tail(self):
        assert is_monotone_tail([5, 4, 3, 2, 1], tail=3)

    def test_non_monotone_tail(self):
        assert not is_monotone_tail([5, 4, 3, 4, 1], tail=3)

    def test_increasing_mode(self):
        assert is_monotone_tail([1, 2, 3], tail=3, decreasing=False)

    def test_short_series_passes(self):
        assert is_monotone_tail([1.0], tail=5)

    def test_rejects_tiny_tail(self):
        with pytest.raises(ValueError, match="tail"):
            is_monotone_tail([1, 2, 3], tail=1)
