"""Tests for the analysis metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    accumulate,
    mean_field_gap,
    scheme_comparison,
    utility_ratio,
)
from repro.baselines.mfg_cp import MFGCPScheme
from repro.game.simulator import GameSimulator


class TestAccumulate:
    def test_constant_rate(self):
        times = np.linspace(0, 2, 21)
        assert accumulate(np.full(21, 3.0), times) == pytest.approx(6.0)

    def test_linear_rate(self):
        times = np.linspace(0, 1, 101)
        assert accumulate(times.copy(), times) == pytest.approx(0.5, rel=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="differ"):
            accumulate(np.zeros(3), np.zeros(4))


@pytest.fixture(scope="module")
def mfgcp_reports(solved_equilibrium):
    """Two homogeneous runs sharing one equilibrium solve."""
    cfg = solved_equilibrium.config
    reports = {}
    for seed, label in ((0, "MFG-CP"),):
        sim = GameSimulator(
            cfg,
            [(MFGCPScheme(equilibrium=solved_equilibrium), 50)],
            rng=np.random.default_rng(seed),
        )
        reports[label] = sim.run()
    return reports


class TestSchemeComparison:
    def test_rows_sorted_by_utility(self, mfgcp_reports):
        rows = scheme_comparison(mfgcp_reports)
        assert len(rows) == 1
        name, utility, income, staleness = rows[0]
        assert name == "MFG-CP"
        assert income > 0.0
        assert staleness > 0.0

    def test_utility_ratio_identity(self, mfgcp_reports):
        assert utility_ratio(mfgcp_reports, "MFG-CP", "MFG-CP") == pytest.approx(1.0)

    def test_utility_ratio_rejects_nonpositive_baseline(self):
        class Fixed:
            def __init__(self, value):
                self.value = value

            def total_utility(self, name):
                return self.value

        reports = {"good": Fixed(10.0), "bad": Fixed(0.0)}
        with pytest.raises(ValueError, match="non-positive"):
            utility_ratio(reports, "good", "bad")
        assert utility_ratio(
            {"good": Fixed(10.0), "base": Fixed(5.0)}, "good", "base"
        ) == pytest.approx(2.0)


class TestMeanFieldGap:
    def test_gap_small_for_equilibrium_population(
        self, solved_equilibrium, mfgcp_reports
    ):
        gap = mean_field_gap(solved_equilibrium, mfgcp_reports["MFG-CP"])
        # The finite population tracks the mean field closely.
        assert gap["mean_q_rmse"] < 5.0
        assert gap["price_rmse"] < 0.02
        assert gap["mean_q_max_gap"] >= gap["mean_q_rmse"]
