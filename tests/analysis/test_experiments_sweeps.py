"""Smoke tests for the sweep harnesses (tiny configs).

The benches exercise the full-size sweeps; these tests run the same
harness code on deliberately coarse configurations so the structure
and invariants of every experiment function stay covered by plain
``pytest tests/``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import experiments
from repro.core.parameters import MFGCPConfig


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        MFGCPConfig.fast(), n_time_steps=25, n_h=7, n_q=17, max_iterations=15
    )


class TestHeatmapHarness:
    def test_fig67_structure(self, tiny_config):
        data = experiments.fig67_heatmap(
            content_sizes=(80.0, 100.0), config=tiny_config
        )
        assert set(data) == {80.0, 100.0}
        for q_size, series in data.items():
            assert series["density"].shape[1] == tiny_config.n_q
            assert series["mean_q"][0] == pytest.approx(
                0.7 * q_size, abs=0.05 * q_size
            )


class TestW5SweepHarness:
    def test_fig8_structure(self, tiny_config):
        data = experiments.fig8_w5_sweep(w5_values=(90.0, 180.0), config=tiny_config)
        consumed = {
            w5: series["mean_q"][0] - series["mean_q"][-1]
            for w5, series in data.items()
        }
        assert consumed[90.0] > consumed[180.0]


class TestInitialDistributionHarness:
    def test_fig10_structure(self, tiny_config):
        data = experiments.fig10_initial_distribution(
            mean_fractions=(0.5, 0.8), config=tiny_config
        )
        assert set(data) == {0.5, 0.8}
        for series in data.values():
            assert series["utility"].shape == series["time"].shape


class TestEta1Harness:
    def test_fig11_income_decays(self, tiny_config):
        data = experiments.fig11_eta1_timeseries(
            eta1_values=(2e-3,), config=tiny_config
        )
        income = data[2e-3]["trading_income"]
        assert income[-1] < income[0]


class TestComparisonHarnesses:
    def test_fig12_row_structure(self, tiny_config):
        rows = experiments.fig12_total_vs_eta1(
            eta1_values=(2e-3,),
            schemes=("MPC", "RR"),
            n_edps=10,
            config=tiny_config,
        )
        assert len(rows) == 2
        for eta1, scheme, utility, income in rows:
            assert scheme in ("MPC", "RR")
            assert np.isfinite(utility)
            assert income > 0

    def test_fig13_row_structure(self, tiny_config):
        rows = experiments.fig13_popularity_sweep(
            popularity_values=(0.3, 0.6),
            schemes=("RR",),
            n_edps=10,
            config=tiny_config,
        )
        assert [r[0] for r in rows] == [0.3, 0.6]
        # Utility grows with popularity (more requests).
        assert rows[1][2] > rows[0][2]


class TestAblationHarnesses:
    def test_damping_rows(self, tiny_config):
        rows = experiments.ablation_damping(
            damping_values=(0.5, 1.0), config=tiny_config
        )
        assert [r[0] for r in rows] == [0.5, 1.0]
        for _, converged, n_iter, final in rows:
            assert converged
            assert n_iter >= 1

    def test_grid_resolution_rows(self, tiny_config):
        rows = experiments.ablation_grid_resolution(
            resolutions=((25, 7, 17), (40, 9, 25)), config=tiny_config
        )
        assert len(rows) == 2
        assert abs(rows[0][1] - rows[1][1]) < 12.0

    def test_sharing_price_rows(self, tiny_config):
        rows = experiments.ablation_sharing_price(
            sharing_prices=(0.0, 0.3), n_edps=10, config=tiny_config
        )
        assert rows[0][3] == 0.0       # no money at p_bar = 0
        assert rows[1][3] >= 0.0

    def test_meanfield_gap_rows(self, tiny_config):
        rows = experiments.ablation_meanfield_gap(
            population_sizes=(10, 40), config=tiny_config, n_seeds=2
        )
        assert [r[0] for r in rows] == [10, 40]
        for _, q_rmse, p_rmse in rows:
            assert q_rmse >= 0.0
            assert p_rmse >= 0.0

    def test_exploitability_rows(self, tiny_config):
        rows = experiments.ablation_exploitability(
            population_sizes=(8,),
            deviation_levels=(0.0, 1.0),
            config=tiny_config,
        )
        m, gain, utility = rows[0]
        assert m == 8
        assert np.isfinite(gain)
        assert np.isfinite(utility)
