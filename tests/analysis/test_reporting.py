"""Tests for the plain-text reporting helpers."""

import numpy as np
import pytest

from repro.analysis.reporting import format_series, format_table, print_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["y", 2.25]], precision=2)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert "1.50" in lines[2]
        assert "2.25" in lines[3]

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_integers_not_decorated(self):
        text = format_table(["n"], [[42]])
        assert "42" in text
        assert "42.0" not in text

    def test_alignment_uniform_width(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_print_table_writes(self, capsys):
        print_table(["a"], [[1]])
        assert "a" in capsys.readouterr().out


class TestFormatSeries:
    def test_basic(self):
        text = format_series("U(t)", [0.0, 0.5, 1.0], [1.0, 2.0, 3.0])
        lines = text.splitlines()
        assert lines[0] == "U(t)"
        assert len(lines) == 4
        assert "t=0.500" in lines[2]

    def test_subsampling(self):
        text = format_series("s", np.linspace(0, 1, 11), np.zeros(11), every=5)
        assert len(text.splitlines()) == 4  # name + 3 samples

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="differ"):
            format_series("s", [0.0, 1.0], [1.0])

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="every"):
            format_series("s", [0.0], [1.0], every=0)
