"""Tests for the equilibrium sensitivity analysis."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    SensitivityRow,
    equilibrium_outputs,
    format_sensitivity,
    sensitivity_analysis,
)
from repro.core.parameters import MFGCPConfig


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        MFGCPConfig.fast(), n_time_steps=25, n_h=7, n_q=17, max_iterations=15
    )


@pytest.fixture(scope="module")
def rows(tiny_config):
    return sensitivity_analysis(
        config=tiny_config, parameters=("p_hat", "eta1", "w5"), rel_step=0.15
    )


class TestEquilibriumOutputs:
    def test_keys(self, solved_equilibrium):
        outputs = equilibrium_outputs(solved_equilibrium)
        assert set(outputs) == {
            "total_utility",
            "trading_income",
            "final_mean_q",
            "min_price",
        }
        assert outputs["min_price"] <= solved_equilibrium.config.p_hat


class TestSensitivityAnalysis:
    def test_row_structure(self, rows):
        assert [r.parameter for r in rows] == ["p_hat", "eta1", "w5"]
        for row in rows:
            assert row.base_value > 0
            assert set(row.elasticities) == {
                "total_utility",
                "trading_income",
                "final_mean_q",
                "min_price",
            }
            assert all(np.isfinite(v) for v in row.elasticities.values())

    def test_price_cap_raises_income(self, rows):
        # A higher maximum price raises the trading income.
        p_hat_row = next(r for r in rows if r.parameter == "p_hat")
        assert p_hat_row.elasticities["trading_income"] > 0

    def test_eta1_depresses_price(self, rows):
        eta1_row = next(r for r in rows if r.parameter == "eta1")
        assert eta1_row.elasticities["min_price"] < 0

    def test_w5_suppresses_caching(self, rows):
        # More expensive placement => less caching => more remaining q.
        w5_row = next(r for r in rows if r.parameter == "w5")
        assert w5_row.elasticities["final_mean_q"] > 0

    def test_dominant_output(self, rows):
        row = rows[0]
        dom = row.dominant_output()
        assert abs(row.elasticities[dom]) == max(
            abs(v) for v in row.elasticities.values()
        )

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError, match="rel_step"):
            sensitivity_analysis(config=tiny_config, rel_step=0.0)
        with pytest.raises(AttributeError, match="no field"):
            sensitivity_analysis(config=tiny_config, parameters=("nope",))
        with pytest.raises(KeyError, match="unknown outputs"):
            sensitivity_analysis(
                config=tiny_config, parameters=("p_hat",), outputs=("nope",)
            )


class TestFormatting:
    def test_format_sensitivity(self, rows):
        text = format_sensitivity(rows)
        assert "p_hat" in text
        assert "dtotal_utility" in text

    def test_format_empty_rejected(self):
        with pytest.raises(ValueError, match="no sensitivity rows"):
            format_sensitivity([])
