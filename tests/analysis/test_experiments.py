"""Tests for the experiment harness (light checks; benches run full)."""

import numpy as np
import pytest

from repro.analysis import experiments
from repro.core.parameters import MFGCPConfig


class TestFactories:
    def test_default_config_fast(self):
        cfg = experiments.default_config()
        assert cfg == MFGCPConfig.fast()

    def test_default_config_full(self):
        cfg = experiments.default_config(fast=False)
        assert cfg == MFGCPConfig.paper_default()

    @pytest.mark.parametrize("name", experiments.SCHEME_ORDER)
    def test_make_scheme_names(self, name):
        assert experiments.make_scheme(name).name == name

    def test_make_scheme_unknown(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            experiments.make_scheme("nope")


class TestFig3Harness:
    def test_series_structure(self):
        data = experiments.fig3_channel_evolution(
            long_term_means=(5.0,), volatilities=(0.5,), n_steps=200
        )
        assert "time" in data
        assert "mean=5.0, vol=0.5" in data
        assert data["mean=5.0, vol=0.5"].shape == data["time"].shape


class TestEquilibriumHarnesses:
    def test_fig4_reuses_injected_result(self, solved_equilibrium):
        data = experiments.fig4_meanfield_evolution(result=solved_equilibrium)
        assert data["density"].shape == (
            solved_equilibrium.grid.n_t + 1,
            solved_equilibrium.grid.n_q,
        )

    def test_fig5_profiles(self, solved_equilibrium):
        data = experiments.fig5_policy_evolution(
            result=solved_equilibrium, caching_states=(10.0, 50.0)
        )
        assert "q=10" in data
        assert data["q=10"].shape == solved_equilibrium.grid.t.shape

    def test_fig9_convergence_structure(self, solved_equilibrium):
        data = experiments.fig9_convergence(
            initial_states=(30.0, 90.0), result=solved_equilibrium
        )
        assert set(data) == {30.0, 90.0}
        assert data[30.0]["caching_state"][0] == 30.0


class TestSimulationHarnesses:
    def test_run_scheme_summary_keys(self, fast_config):
        summary = experiments.run_scheme_summary("RR", fast_config, 10, seeds=(0,))
        assert {"total", "trading_income", "mean_control"} <= set(summary)

    def test_run_scheme_summary_requires_seeds(self, fast_config):
        with pytest.raises(ValueError, match="seed"):
            experiments.run_scheme_summary("RR", fast_config, 10, seeds=())

    def test_run_scheme_report(self, fast_config):
        report = experiments.run_scheme("RR", fast_config, 10, seed=0)
        assert report.schemes() == ["RR"]

    def test_table2_structure(self, fast_config):
        rows = experiments.table2_computation_time(
            population_sizes=(5, 10),
            schemes=("RR",),
            catalog_size=2,
            repeats=1,
        )
        assert [(r[0], r[1]) for r in rows] == [("RR", 5), ("RR", 10)]
        assert all(r[2] > 0 for r in rows)

    def test_table2_validation(self):
        with pytest.raises(ValueError, match="catalog_size"):
            experiments.table2_computation_time(catalog_size=0)
        with pytest.raises(ValueError, match="repeats"):
            experiments.table2_computation_time(repeats=0)
