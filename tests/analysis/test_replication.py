"""Tests for Monte-Carlo replication and confidence intervals."""

import numpy as np
import pytest

from repro.analysis.replication import (
    ReplicatedStatistic,
    replicate,
    replicate_scheme_utility,
    summarise,
)


class TestSummarise:
    def test_known_interval(self):
        stat = summarise("x", [1.0, 2.0, 3.0, 4.0, 5.0], confidence=0.95)
        assert stat.mean == pytest.approx(3.0)
        assert stat.n == 5
        # t_{0.975, 4} ~ 2.776; sem = std/sqrt(5).
        sem = np.std([1, 2, 3, 4, 5], ddof=1) / np.sqrt(5)
        assert stat.half_width == pytest.approx(2.7764 * sem, rel=1e-3)
        assert stat.ci_low < stat.mean < stat.ci_high

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarise("x", rng.normal(0, 1, 5))
        large = summarise("x", rng.normal(0, 1, 100))
        assert large.half_width < small.half_width

    def test_coverage_on_gaussian(self):
        # ~95% of 95% CIs should contain the true mean.
        rng = np.random.default_rng(1)
        hits = 0
        trials = 300
        for _ in range(trials):
            stat = summarise("x", rng.normal(10.0, 2.0, 10))
            hits += stat.ci_low <= 10.0 <= stat.ci_high
        assert 0.88 <= hits / trials <= 0.99

    def test_overlap(self):
        a = summarise("a", [1.0, 1.1, 0.9, 1.0])
        b = summarise("b", [1.05, 1.0, 0.95, 1.1])
        c = summarise("c", [5.0, 5.1, 4.9, 5.0])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_describe(self):
        stat = summarise("util", [1.0, 2.0, 3.0])
        assert "util" in stat.describe()
        assert "95% CI" in stat.describe()

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            summarise("x", [1.0])
        with pytest.raises(ValueError, match="confidence"):
            summarise("x", [1.0, 2.0], confidence=1.0)


class TestReplicate:
    def test_collects_all_outputs(self):
        def experiment(seed):
            rng = np.random.default_rng(seed)
            return {"a": rng.normal(), "b": rng.normal() + 10.0}

        stats_by_name = replicate(experiment, seeds=range(10))
        assert set(stats_by_name) == {"a", "b"}
        assert stats_by_name["b"].mean > stats_by_name["a"].mean

    def test_rejects_inconsistent_keys(self):
        def experiment(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="keys"):
            replicate(experiment, seeds=[0, 1])

    def test_rejects_single_seed(self):
        with pytest.raises(ValueError, match="seeds"):
            replicate(lambda s: {"a": 1.0}, seeds=[0])


class TestReplicateSchemeUtility:
    def test_rr_utility_ci(self, fast_config):
        stat = replicate_scheme_utility("RR", fast_config, 20, seeds=(0, 1, 2, 3))
        assert stat.n == 4
        assert np.isfinite(stat.mean)
        assert stat.ci_low < stat.mean < stat.ci_high

    def test_requires_multiple_seeds(self, fast_config):
        with pytest.raises(ValueError, match="seeds"):
            replicate_scheme_utility("RR", fast_config, 10, seeds=(0,))
