"""Tests for the ASCII heat-map renderer."""

import numpy as np
import pytest

from repro.analysis.reporting import format_heatmap


class TestFormatHeatmap:
    def test_basic_render(self):
        field = np.array([[0.0, 1.0], [0.5, 0.0]])
        text = format_heatmap(field, [0.0, 1.0], [10.0, 20.0], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("0 |")
        assert "peak 1" in lines[-1]

    def test_peak_uses_darkest_shade(self):
        field = np.array([[0.0, 1.0]])
        text = format_heatmap(field, [0.0], [0.0, 1.0])
        assert "@" in text

    def test_zero_field_all_blank(self):
        field = np.zeros((2, 3))
        text = format_heatmap(field, [0, 1], [0, 1, 2])
        row = text.splitlines()[0]
        assert row.endswith("|   |")

    def test_column_subsampling(self):
        field = np.random.default_rng(0).uniform(0, 1, (2, 100))
        text = format_heatmap(field, [0, 1], list(range(100)), max_cols=10)
        row = text.splitlines()[0]
        body = row.split("|")[1]
        assert len(body) <= 10

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            format_heatmap(np.zeros(3), [0], [0, 1, 2])
        with pytest.raises(ValueError, match="labels"):
            format_heatmap(np.zeros((2, 2)), [0], [0, 1])
        with pytest.raises(ValueError, match="non-negative"):
            format_heatmap(np.array([[-1.0]]), [0], [0])
        with pytest.raises(ValueError, match="max_cols"):
            format_heatmap(np.zeros((1, 1)), [0], [0], max_cols=1)

    def test_renders_solved_density(self, solved_equilibrium):
        res = solved_equilibrium
        marginal = res.marginal_q_path()
        text = format_heatmap(
            marginal[:: max(1, res.grid.n_t // 8)],
            res.grid.t[:: max(1, res.grid.n_t // 8)],
            res.grid.q,
        )
        assert "|" in text
        assert "peak" in text
