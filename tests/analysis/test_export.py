"""Tests for the CSV/JSON export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (
    export_equilibrium,
    write_json,
    write_rows_csv,
    write_series_csv,
)


class TestWriteRowsCSV:
    def test_roundtrip(self, tmp_path):
        path = write_rows_csv(
            tmp_path / "t.csv", ["a", "b"], [[1, 2.5], ["x", -1]]
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert rows[2] == ["x", "-1"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_rows_csv(tmp_path / "deep" / "dir" / "t.csv", ["a"], [[1]])
        assert path.exists()

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError, match="cells"):
            write_rows_csv(tmp_path / "t.csv", ["a", "b"], [[1]])


class TestWriteSeriesCSV:
    def test_shared_time_axis(self, tmp_path):
        path = write_series_csv(
            tmp_path / "s.csv",
            [0.0, 0.5, 1.0],
            {"u": [1.0, 2.0, 3.0], "v": [9.0, 8.0, 7.0]},
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time", "u", "v"]
        assert float(rows[2][1]) == 2.0
        assert float(rows[3][2]) == 7.0

    def test_rejects_mismatched_series(self, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            write_series_csv(tmp_path / "s.csv", [0.0, 1.0], {"u": [1.0]})


class TestWriteJSON:
    def test_numpy_types_serialised(self, tmp_path):
        path = write_json(
            tmp_path / "m.json",
            {
                "arr": np.array([1.0, 2.0]),
                "f": np.float64(3.5),
                "i": np.int64(7),
                "b": np.bool_(True),
            },
        )
        payload = json.loads(path.read_text())
        assert payload["arr"] == [1.0, 2.0]
        assert payload["f"] == 3.5
        assert payload["i"] == 7
        assert payload["b"] is True

    def test_rejects_unserialisable(self, tmp_path):
        with pytest.raises(TypeError, match="JSON"):
            write_json(tmp_path / "m.json", {"bad": object()})


class TestExportEquilibrium:
    def test_full_artifact_set(self, tmp_path, solved_equilibrium):
        written = export_equilibrium(solved_equilibrium, tmp_path / "eq")
        names = sorted(p.name for p in written)
        assert names == [
            "density_marginal.csv",
            "market_paths.csv",
            "policy_mid.csv",
            "policy_t0.csv",
            "summary.json",
            "utility_paths.csv",
        ]
        summary = json.loads((tmp_path / "eq" / "summary.json").read_text())
        assert summary["converged"] is True
        assert "total" in summary["accumulated_utility"]

    def test_market_paths_content(self, tmp_path, solved_equilibrium):
        export_equilibrium(solved_equilibrium, tmp_path / "eq")
        with (tmp_path / "eq" / "market_paths.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "time"
        assert len(rows) == solved_equilibrium.grid.n_t + 2
        # First price matches the solved path.
        assert float(rows[1][1]) == pytest.approx(
            float(solved_equilibrium.mean_field.price[0])
        )
