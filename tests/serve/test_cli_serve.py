"""Tests for the ``repro serve`` CLI subcommand."""

import pytest

from repro.cli import build_parser, main

FAST = ["--requests", "400", "--edps", "4", "--contents", "3", "--slots", "8",
        "--capacity-fraction", "0.5"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "mfg"
        assert args.requests == 100_000
        assert args.edps == 16
        assert args.contents == 12
        assert args.workload == "video_marketplace"
        assert args.slots == 25
        assert args.capacity_fraction == 0.3
        assert args.seed == 7
        assert args.shards is None
        assert args.out is None

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workload", "iot"])


class TestServeCommand:
    def test_single_policy_table(self, capsys):
        assert main(["serve", "--policy", "lru"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Serving comparison" in out
        assert "hit_ratio" in out
        assert "lru" in out

    def test_all_policies_compared(self, capsys):
        assert main(["serve", "--policy", "all"] + FAST) == 0
        out = capsys.readouterr().out
        for name in ("mfg", "lru", "lfu", "random", "most-popular"):
            assert name in out

    def test_policy_comma_list(self, capsys):
        assert main(["serve", "--policy", "lru,random"] + FAST) == 0
        out = capsys.readouterr().out
        assert "lru" in out
        assert "random" in out
        assert "mfg" not in out

    def test_empty_policy_is_error(self, capsys):
        assert main(["serve", "--policy", ","] + FAST) == 2
        assert "no serving policy" in capsys.readouterr().err

    def test_unknown_policy_is_error(self, capsys):
        assert main(["serve", "--policy", "fifo"] + FAST) == 2
        assert "unknown serving policy" in capsys.readouterr().err

    def test_undersized_capacity_is_error(self, capsys):
        argv = ["serve", "--policy", "lru", "--capacity-fraction", "0.01",
                "--contents", "3"]
        assert main(argv) == 2
        assert "holds no content" in capsys.readouterr().err

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        argv = ["serve", "--policy", "lru,random", "--out", str(out_dir)] + FAST
        assert main(argv) == 0
        assert "wrote" in capsys.readouterr().out
        assert (out_dir / "serving_comparison.csv").exists()
        assert (out_dir / "serving_summary.json").exists()
        assert (out_dir / "per_edp_lru.csv").exists()

    def test_telemetry_records_serving_events(self, tmp_path, capsys):
        out_file = tmp_path / "serve.jsonl"
        argv = ["serve", "--policy", "lfu", "--telemetry", str(out_file)] + FAST
        assert main(argv) == 0
        from repro.obs import read_events

        shards = read_events(out_file, kind="serve_shard")
        assert shards, "replay should emit per-shard events"
        reports = read_events(out_file, kind="serving_report")
        assert len(reports) == 1
        assert reports[0]["policy"] == "lfu"
        assert reports[0]["requests"] > 0

    def test_backend_matches_serial_output(self, capsys):
        argv = ["serve", "--policy", "lru,lfu"] + FAST
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--backend", "process:2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
