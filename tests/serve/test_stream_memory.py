"""Flat-memory acceptance test for the streaming replay pipeline.

Replays over 10^6 requests through the chunked streaming engine in a
subprocess and asserts that peak RSS (``resource.getrusage``
high-water mark) is independent of the request count: a 10x longer
replay at the same chunk size may not grow peak memory beyond a small
slack factor.  Subprocess isolation matters — ``ru_maxrss`` is a
process-lifetime maximum, so the measurement must not share a process
with the rest of the suite.

Marked ``slow``; CI runs it in the stream-smoke job.
"""

import subprocess
import sys

import pytest

# Replays `n_slots` argv[1] slots at a fixed per-slot request volume and
# fixed chunk size, then prints "<requests> <ru_maxrss_kb>".  Request
# volume scales with the slot count while per-chunk memory stays
# constant, which is exactly the bounded-memory claim under test.
_REPLAY_SCRIPT = r"""
import resource
import sys

from repro.serve.engine import ServingEngine
from repro.serve.stream import ZipfStream, stream_workload

n_slots = int(sys.argv[1])
stream = ZipfStream(
    n_catalog=16,
    n_edps=8,
    n_slots=n_slots,
    dt=1.0,
    rate_per_edp=250.0,
    seed=3,
)
engine = ServingEngine(
    stream_workload(stream),
    8,
    capacity_fraction=0.3,
    stream=stream,
    stream_chunk=8,
)
report = engine.replay("lru")
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(report.requests, peak_kb)
"""


def _measure(n_slots: int):
    proc = subprocess.run(
        [sys.executable, "-c", _REPLAY_SCRIPT, str(n_slots)],
        capture_output=True,
        text=True,
        check=True,
    )
    requests, peak_kb = proc.stdout.split()
    return int(requests), int(peak_kb)


@pytest.mark.slow
def test_peak_rss_independent_of_request_count():
    pytest.importorskip("resource")
    small_requests, small_peak = _measure(50)
    large_requests, large_peak = _measure(500)

    # The large replay really is the headline scale: 10^6+ requests.
    assert small_requests >= 90_000
    assert large_requests >= 1_000_000
    assert large_requests > 9 * small_requests

    # 10x the requests, (almost) none of the memory growth: interpreter
    # noise and allocator slack aside, peak RSS must not scale with the
    # replay length.
    assert large_peak < small_peak * 1.35, (
        f"peak RSS grew with request count: {small_peak} KB at "
        f"{small_requests} requests vs {large_peak} KB at "
        f"{large_requests} requests"
    )


@pytest.mark.slow
def test_materialized_replay_for_scale_reference():
    """The streamed path handles a horizon whose materialised chunk
    would be ~10x larger per EDP; sanity-check the chunked replay's
    request accounting against the stream's own expectation."""
    from repro.serve.stream import ZipfStream

    stream = ZipfStream(
        n_catalog=16, n_edps=8, n_slots=500, dt=1.0, rate_per_edp=250.0, seed=3
    )
    expected = stream.expected_total_requests()
    requests, _ = _measure(500)
    assert requests == pytest.approx(expected, rel=0.01)
