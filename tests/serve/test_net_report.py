"""Network report containers, merge discipline, and artifact export."""

import csv
import json

import pytest

from repro.serve.net.report import (
    NET_REPORT_HEADERS,
    PER_NODE_HEADERS,
    NetworkReplayStats,
    NetworkServingReport,
    NodeServingStats,
    export_network_reports,
    network_comparison_rows,
)
from repro.serve.net.topology import path_topology


def make_report(strategy="lce", hits=30, source=70, **node_kwargs):
    topo = path_topology(4)
    totals = NetworkReplayStats.empty(topo)
    totals.requests = hits + source
    totals.cache_hits = hits
    totals.source_hits = source
    totals.hops = 2 * (hits + source)
    totals.latency_s = 0.05 * (hits + source)
    totals.replicas = 1
    totals.per_node[1].hits = hits
    totals.per_node[1].placements = 5
    totals.per_node[1].queue_accepted = 4
    totals.per_node[1].queue_rejected = 1
    for key, value in node_kwargs.items():
        setattr(totals.per_node[1], key, value)
    return NetworkServingReport(
        strategy=strategy, topology="path:4", n_slots=10, dt=0.1, seed=0,
        n_replicas=1, node_capacity_mb=50.0,
        per_node=tuple(totals.per_node[n] for n in sorted(totals.per_node)),
        totals=totals,
    )


class TestNodeStats:
    def test_merge_sums_counters(self):
        a = NodeServingStats(node=1, depth=2, hits=3, queue_rejected=1)
        b = NodeServingStats(node=1, depth=2, hits=4, queue_accepted=2)
        a.merge(b)
        assert a.hits == 7
        assert a.queue_offers == 3
        assert a.queue_rejection_rate == pytest.approx(1 / 3)

    def test_merge_rejects_other_node(self):
        a = NodeServingStats(node=1, depth=2)
        with pytest.raises(ValueError, match="node 2"):
            a.merge(NodeServingStats(node=2, depth=1))


class TestReplayStats:
    def test_empty_covers_routers(self):
        topo = path_topology(5)
        stats = NetworkReplayStats.empty(topo)
        assert sorted(stats.per_node) == list(topo.routers)
        assert all(
            stats.per_node[v].depth == topo.depths[v] for v in topo.routers
        )

    def test_merge_accumulates(self):
        topo = path_topology(4)
        a = NetworkReplayStats.empty(topo)
        b = NetworkReplayStats.empty(topo)
        a.requests, b.requests = 10, 20
        a.max_hops, b.max_hops = 2, 3
        b.per_node[1].hits = 6
        a.merge(b)
        assert a.requests == 30
        assert a.max_hops == 3
        assert a.per_node[1].hits == 6


class TestReport:
    def test_ratios(self):
        report = make_report(hits=30, source=70)
        assert report.hit_ratio == pytest.approx(0.3)
        assert report.source_share == pytest.approx(0.7)
        assert report.mean_hops == pytest.approx(2.0)
        assert report.mean_latency_s == pytest.approx(0.05)
        assert report.rejection_rate == pytest.approx(0.2)

    def test_node_hit_share_sums_with_source(self):
        report = make_report(hits=30, source=70)
        total = sum(report.node_hit_share(s.node) for s in report.per_node)
        assert total + report.source_share == pytest.approx(1.0)

    def test_node_hit_share_unknown_node_raises(self):
        with pytest.raises(ValueError, match="not a caching node"):
            make_report().node_hit_share(99)

    def test_rows_match_headers(self):
        report = make_report()
        assert len(report.to_row()) == len(NET_REPORT_HEADERS)
        for row in report.per_node_rows():
            assert len(row) == len(PER_NODE_HEADERS)

    def test_per_node_order_enforced(self):
        report = make_report()
        with pytest.raises(ValueError, match="ascending"):
            NetworkServingReport(
                strategy="x", topology="path:4", n_slots=1, dt=0.1, seed=0,
                n_replicas=1, node_capacity_mb=1.0,
                per_node=tuple(reversed(report.per_node)),
                totals=report.totals,
            )

    def test_summary_round_trips_json(self):
        summary = make_report().summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["per_node"]["1"]["hits"] == 30


class TestComparisonAndExport:
    def test_rows_sorted_best_first(self):
        rows = network_comparison_rows(
            [make_report("lce", hits=10, source=90),
             make_report("mfg", hits=40, source=60)]
        )
        assert [r[0] for r in rows] == ["mfg", "lce"]

    def test_export_writes_artifacts(self, tmp_path):
        reports = [make_report("lce"), make_report("mfg", hits=50, source=50)]
        written = export_network_reports(reports, tmp_path)
        names = {p.name for p in written}
        assert names == {
            "network_comparison.csv", "network_summary.json",
            "per_node_lce.csv", "per_node_mfg.csv",
        }
        with open(tmp_path / "network_comparison.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(NET_REPORT_HEADERS)
        assert len(rows) == 3
        with open(tmp_path / "network_summary.json") as handle:
            summary = json.load(handle)
        assert set(summary) == {"lce", "mfg"}

    def test_export_empty_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no network reports"):
            export_network_reports([], tmp_path)
