"""Shared fixtures for the serving-engine suite.

Per-content equilibrium solves cost a few hundred ms each, so the
suite shares one solved engine (session scope) and reuses its
equilibria wherever a test needs the mfg policy.
"""

import pytest

from repro.content.workloads import video_marketplace
from repro.serve import ServingEngine


@pytest.fixture(scope="session")
def workload():
    return video_marketplace(n_contents=4, seed=3)


@pytest.fixture(scope="session")
def engine(workload):
    """A small solved engine: 6 EDPs, 12 slots, 4 contents."""
    eng = ServingEngine(workload, n_edps=6, n_slots=12, seed=9)
    eng.solve_equilibria()
    return eng


@pytest.fixture(scope="session")
def equilibria(engine):
    return engine.solve_equilibria()
