"""Tests for the deterministic request-trace source."""

import pickle

import numpy as np
import pytest

from repro.content.timeliness import TimelinessModel
from repro.serve import RequestTraceSource, edp_seed_sequences, partition_edps


def make_source(n_edps=4, n_slots=6, seed=5, rate=20.0):
    return RequestTraceSource(
        popularity=(0.5, 0.3, 0.2),
        rate_per_edp=rate,
        timeliness=TimelinessModel(l_max=3.0),
        n_slots=n_slots,
        dt=0.1,
        seed=seed,
        n_edps=n_edps,
    )


class TestSeedSequences:
    def test_children_reproducible(self):
        a = edp_seed_sequences(7, 5)
        b = edp_seed_sequences(7, 5)
        assert [c.entropy for c in a] == [c.entropy for c in b]
        assert [c.spawn_key for c in a] == [c.spawn_key for c in b]

    def test_children_distinct(self):
        children = edp_seed_sequences(7, 5)
        keys = {c.spawn_key for c in children}
        assert len(keys) == 5

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError, match="EDP"):
            edp_seed_sequences(7, 0)


class TestTraceSource:
    def test_slot_times_are_midpoints(self):
        source = make_source(n_slots=4)
        assert np.allclose(source.slot_times(), [0.05, 0.15, 0.25, 0.35])
        assert source.horizon == pytest.approx(0.4)

    def test_stream_covers_all_slots(self):
        source = make_source(n_slots=6)
        events = list(source.stream(0))
        assert [e.slot for e in events] == list(range(6))
        assert all(e.batch.counts.shape == (3,) for e in events)

    def test_stream_reproducible_per_edp(self):
        source = make_source()
        a = [e.batch.counts.tolist() for e in source.stream(2)]
        b = [e.batch.counts.tolist() for e in source.stream(2)]
        assert a == b

    def test_streams_differ_across_edps(self):
        source = make_source(rate=100.0)
        a = [e.batch.counts.tolist() for e in source.stream(0)]
        b = [e.batch.counts.tolist() for e in source.stream(1)]
        assert a != b

    def test_request_stream_independent_of_policy_draws(self):
        """Burning policy draws must not perturb the request trace."""
        source = make_source()
        req_only, _ = source.rng_pair_for(1)
        baseline = [e.batch.counts.tolist() for e in source.stream(1, req_only)]
        req_rng, policy_rng = source.rng_pair_for(1)
        interleaved = []
        for event in source.stream(1, req_rng):
            interleaved.append(event.batch.counts.tolist())
            policy_rng.random(5)  # policy decisions draw elsewhere
        assert interleaved == baseline

    def test_expected_total_requests(self):
        source = make_source(n_edps=4, n_slots=6, rate=20.0)
        # 20 req/unit-time x 0.6 units x 4 EDPs
        assert source.expected_total_requests() == pytest.approx(48.0)

    def test_pickle_roundtrip(self):
        source = make_source()
        clone = pickle.loads(pickle.dumps(source))
        a = [e.batch.counts.tolist() for e in source.stream(0)]
        b = [e.batch.counts.tolist() for e in clone.stream(0)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError, match="popularity"):
            make_source().__class__(
                popularity=(),
                rate_per_edp=1.0,
                timeliness=TimelinessModel(),
                n_slots=2,
                dt=0.1,
                seed=0,
                n_edps=1,
            )
        with pytest.raises(IndexError, match="out of range"):
            make_source(n_edps=3).rng_pair_for(3)


class TestPartition:
    def test_covers_every_edp_once(self):
        shards = partition_edps(10, 3)
        flat = [e for shard in shards for e in shard]
        assert flat == list(range(10))

    def test_near_even_sizes(self):
        sizes = [len(s) for s in partition_edps(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_edps_collapses(self):
        shards = partition_edps(3, 8)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_single_shard(self):
        assert partition_edps(4, 1) == [(0, 1, 2, 3)]

    def test_zero_edps_yield_zero_shards(self):
        # An empty population shards to an empty plan — the engine
        # still refuses to *run* with no EDPs, but partitioning is
        # well defined (the fig-sweep runners rely on this).
        assert partition_edps(0, 2) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="negative"):
            partition_edps(-1, 2)
        with pytest.raises(ValueError, match="shard"):
            partition_edps(4, 0)
