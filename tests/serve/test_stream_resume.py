"""Chunk-granular resume: kill a streaming replay mid-run, resume, compare.

The acceptance contract for streamed fault tolerance: a ``process:4``
streaming replay killed mid-shard by the deterministic fault harness
must, after ``--resume``, produce a report, export artifacts, and
normalised telemetry byte-identical to an uninterrupted run.  The
fault fires on a *chunk* label (``serve:<policy>:edp<i>:chunk<j>``),
so the resumed run exercises both layers of state: completed shards
replay from the checkpoint store, and the interrupted shard
fast-forwards its finished chunks from the stream-state files.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.runtime.checkpoint import stream_state_dir as _stream_state_dir
from repro.testing import normalized_events


def exit_code(argv):
    try:
        return main(argv)
    except SystemExit as err:
        return int(err.code or 0)


SERVE_ARGS = [
    "serve",
    "--policy", "lru,lfu",
    "--requests", "9000",
    "--edps", "8",
    "--contents", "8",
    "--slots", "12",
    "--seed", "7",
    "--stream", "zipf",
    "--stream-chunk", "3",
    "--shards", "4",
    "--backend", "process:4",
    "--no-registry",
]


def test_kill_and_resume_matches_uninterrupted_run(tmp_path, capsys):
    clean_t = tmp_path / "clean.jsonl"
    resume_t = tmp_path / "resumed.jsonl"
    ckpt = tmp_path / "ckpt"
    out_clean = tmp_path / "out_clean"
    out_resume = tmp_path / "out_resume"

    assert main(
        SERVE_ARGS + ["--telemetry", str(clean_t), "--out", str(out_clean)]
    ) == 0
    clean_out = capsys.readouterr().out

    # Kill mid-run: a permanent fault on one EDP's third chunk. The
    # glob matches chunk labels only — shard item labels
    # (serve:lru:shard0) never collide with serve:lru:edp*.
    assert exit_code(
        SERVE_ARGS + [
            "--telemetry", str(tmp_path / "dead.jsonl"),
            "--checkpoint-dir", str(ckpt),
            "--inject-faults", "raise:label=serve:lru:edp2:chunk2,times=-1",
        ]
    ) == 1
    capsys.readouterr()

    # The interrupted run left chunk-granular stream state behind:
    # completed chunks of the in-flight shard are on disk, keyed per
    # (spec, policy, EDP).
    state_files = list(Path(_stream_state_dir(ckpt)).glob("*.pkl"))
    assert state_files, "expected stream-state files from the killed run"

    # Resume without faults: finished shards come from the checkpoint
    # store, the interrupted shard fast-forwards its saved chunks.
    assert main(
        SERVE_ARGS + [
            "--telemetry", str(resume_t),
            "--checkpoint-dir", str(ckpt), "--resume",
            "--out", str(out_resume),
        ]
    ) == 0
    resume_out = capsys.readouterr().out

    # Identical stdout table (modulo the artifact/telemetry paths printed).
    def strip(text):
        for token in (str(out_clean), str(out_resume)):
            text = text.replace(token, "O")
        for token in (str(clean_t), str(resume_t)):
            text = text.replace(token, "T")
        return text

    assert strip(clean_out) == strip(resume_out)

    # Byte-identical export artifacts.
    for name in ("serving_comparison.csv", "serving_summary.json"):
        assert (out_clean / name).read_bytes() == (out_resume / name).read_bytes()

    # Identical normalised telemetry (bookkeeping + timings stripped).
    assert normalized_events(str(clean_t)) == normalized_events(str(resume_t))

    # The resumed stream recorded a mid-EDP chunk fast-forward.
    resumed_events = [
        json.loads(line)
        for line in resume_t.read_text().splitlines()
        if '"stream.resumed"' in line
    ]
    assert resumed_events
    assert all(ev["chunk"] >= 1 for ev in resumed_events)

    # Stream state is consumed on completion.
    assert not list(Path(_stream_state_dir(ckpt)).glob("*.pkl"))


def test_stream_state_is_reset_without_resume(tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    assert exit_code(
        SERVE_ARGS + [
            "--checkpoint-dir", str(ckpt),
            "--inject-faults", "raise:label=serve:lru:edp2:chunk2,times=-1",
        ]
    ) == 1
    capsys.readouterr()
    assert list(Path(_stream_state_dir(ckpt)).glob("*.pkl"))

    # Re-running WITHOUT --resume resets the store, including the
    # stream-state directory, then completes from scratch.
    assert main(SERVE_ARGS + ["--checkpoint-dir", str(ckpt)]) == 0
    capsys.readouterr()
    assert not list(Path(_stream_state_dir(ckpt)).glob("*.pkl"))
