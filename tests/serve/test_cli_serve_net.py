"""Tests for the ``repro serve-net`` CLI subcommand."""

import pytest

from repro.cli import build_parser, main

FAST = ["--topology", "path:5", "--contents", "4", "--replicas", "2",
        "--slots", "10", "--capacity-fraction", "0.3", "--rate", "40"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve-net"])
        assert args.topology == "tree:2x4"
        assert args.strategy == "all"
        assert args.contents == 12
        assert args.alpha == 1.0
        assert args.replicas == 4
        assert args.capacity_fraction == 0.1
        assert args.queue_capacity == 8
        assert args.seed == 0
        assert args.shards is None
        assert args.out is None

    def test_runtime_and_telemetry_args_present(self):
        args = build_parser().parse_args(
            ["serve-net", "--backend", "process:2", "--telemetry", "x.jsonl"]
        )
        assert args.backend == "process:2"
        assert args.telemetry == "x.jsonl"


class TestServeNetCommand:
    def test_strategy_comma_list(self, capsys):
        assert main(["serve-net", "--strategy", "lce,lcd"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Cache-network comparison" in out
        assert "lce" in out and "lcd" in out
        assert "probcache" not in out

    def test_per_node_breakdown(self, capsys):
        argv = ["serve-net", "--strategy", "lce", "--per-node"] + FAST
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Per-node breakdown — lce" in out
        assert "queue_rejection_rate" in out

    def test_empty_strategy_is_error(self, capsys):
        assert main(["serve-net", "--strategy", ","] + FAST) == 2
        assert "no placement strategy" in capsys.readouterr().err

    def test_unknown_strategy_is_error(self, capsys):
        assert main(["serve-net", "--strategy", "belady"] + FAST) == 2
        assert "unknown placement strategy" in capsys.readouterr().err

    def test_bad_topology_is_error(self, capsys):
        argv = ["serve-net", "--strategy", "lce", "--topology", "torus:3"]
        assert main(argv) == 2
        assert "unknown topology kind" in capsys.readouterr().err

    def test_undersized_capacity_is_error(self, capsys):
        argv = ["serve-net", "--strategy", "lce", "--topology", "path:4",
                "--contents", "4", "--capacity-fraction", "0.01"]
        assert main(argv) == 2
        assert "holds no content" in capsys.readouterr().err

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        argv = ["serve-net", "--strategy", "lce,edge",
                "--out", str(out_dir)] + FAST
        assert main(argv) == 0
        assert "wrote" in capsys.readouterr().out
        assert (out_dir / "network_comparison.csv").exists()
        assert (out_dir / "network_summary.json").exists()
        assert (out_dir / "per_node_lce.csv").exists()
        assert (out_dir / "per_node_edge.csv").exists()

    def test_telemetry_records_network_events(self, tmp_path):
        out_file = tmp_path / "net.jsonl"
        argv = ["serve-net", "--strategy", "lcd",
                "--telemetry", str(out_file)] + FAST
        assert main(argv) == 0
        from repro.obs import read_events

        shards = read_events(out_file, kind="net_shard")
        assert shards, "replay should emit per-shard events"
        reports = read_events(out_file, kind="network_report")
        assert len(reports) == 1
        assert reports[0]["strategy"] == "lcd"
        assert reports[0]["topology"] == "path:5"
        assert reports[0]["requests"] > 0

    def test_report_renders_cache_network_section(self, tmp_path, capsys):
        out_file = tmp_path / "net.jsonl"
        argv = ["serve-net", "--strategy", "lce",
                "--telemetry", str(out_file)] + FAST
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "cache networks" in out

    def test_backend_matches_serial_output(self, capsys):
        argv = ["serve-net", "--strategy", "lce,probcache"] + FAST
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--backend", "process:2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
