"""Unit coverage for the streaming workload generators and chunk protocol.

Pins the demand shapes the property suite takes for granted: Zipf
exponent and popularity moments, diurnal phase boundaries, flash-crowd
spike placement, shuffled-popularity permutation determinism, and
trace-file streaming with ``load_trace_csv``-matching skip counts.
Also covers the :class:`RequestChunk` container, the engine-level
validation of stream mode, and the live-status stream block.
"""

import json

import numpy as np
import pytest

from repro.content.timeliness import TimelinessModel
from repro.content.trace import load_trace_csv, trace_to_popularity
from repro.serve.engine import ServingEngine
from repro.serve.net.engine import NetworkReplayEngine
from repro.serve.stream import (
    DiurnalStream,
    FixedPopularityStream,
    FlashCrowdStream,
    RequestChunk,
    STREAM_WORKLOADS,
    ShuffledZipfStream,
    TraceStream,
    ZipfStream,
    concat_chunks,
    make_stream,
    stream_workload,
)

GEOMETRY = dict(n_edps=2, n_slots=12, dt=0.5, rate_per_edp=20.0, seed=3)


class TestZipfStream:
    def test_popularity_follows_rank_power_law(self):
        stream = ZipfStream(n_catalog=8, alpha=1.3, **GEOMETRY)
        pop = np.asarray(stream.popularity)
        ranks = np.arange(1, 9, dtype=float)
        expected = ranks**-1.3 / (ranks**-1.3).sum()
        np.testing.assert_allclose(pop, expected, rtol=1e-12)
        assert pop.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pop) < 0)  # strictly rank-decreasing

    def test_alpha_steepens_the_head(self):
        flat = ZipfStream(n_catalog=8, alpha=0.5, **GEOMETRY)
        steep = ZipfStream(n_catalog=8, alpha=2.0, **GEOMETRY)
        assert steep.popularity[0] > flat.popularity[0]
        assert steep.popularity[-1] < flat.popularity[-1]

    def test_empirical_request_moments_match_intensities(self):
        # Means over many slots converge on the per-slot Poisson
        # intensities (deterministic given the seed, so exact bounds).
        stream = ZipfStream(
            n_catalog=6, alpha=1.0, n_edps=1, n_slots=400, dt=0.5,
            rate_per_edp=40.0, seed=9,
        )
        counts = stream.materialize(0).counts
        empirical = counts.mean(axis=0)
        np.testing.assert_allclose(empirical, stream.intensities(0), rtol=0.1)
        total = counts.sum()
        assert total == pytest.approx(stream.expected_total_requests(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one content"):
            ZipfStream(n_catalog=0, **GEOMETRY)
        with pytest.raises(ValueError, match="exponent must be positive"):
            ZipfStream(n_catalog=4, alpha=0.0, **GEOMETRY)


class TestShuffledZipfStream:
    def test_permutation_deterministic_per_seed(self):
        kwargs = dict(GEOMETRY, seed=21)
        a = ShuffledZipfStream(n_catalog=12, **kwargs)
        b = ShuffledZipfStream(n_catalog=12, **kwargs)
        assert np.array_equal(a.permutation(), b.permutation())
        assert np.array_equal(a.base_weights(), b.base_weights())

    def test_different_seeds_shuffle_differently(self):
        a = ShuffledZipfStream(n_catalog=12, **dict(GEOMETRY, seed=0))
        b = ShuffledZipfStream(n_catalog=12, **dict(GEOMETRY, seed=1))
        assert not np.array_equal(a.permutation(), b.permutation())

    def test_weights_are_a_permutation_of_zipf(self):
        plain = ZipfStream(n_catalog=12, alpha=1.0, **GEOMETRY)
        shuffled = ShuffledZipfStream(n_catalog=12, alpha=1.0, **GEOMETRY)
        assert np.array_equal(
            np.sort(shuffled.base_weights()), np.sort(plain.base_weights())
        )

    def test_permutation_independent_of_request_draws(self):
        stream = ShuffledZipfStream(n_catalog=12, **GEOMETRY)
        before = stream.permutation()
        stream.materialize(0)
        assert np.array_equal(stream.permutation(), before)


class TestDiurnalStream:
    def make(self, period=8, multipliers=(0.25, 1.0, 1.75, 1.0)):
        return DiurnalStream(
            n_catalog=4,
            period_slots=period,
            phase_multipliers=multipliers,
            n_edps=1, n_slots=32, dt=0.5, rate_per_edp=10.0, seed=0,
        )

    def test_phase_boundaries_land_on_integer_division(self):
        stream = self.make(period=8)  # 4 phases of 2 slots each
        phases = [stream.phase_of(s) for s in range(8)]
        assert phases == [0, 0, 1, 1, 2, 2, 3, 3]
        # The pattern repeats every period.
        assert [stream.phase_of(8 + s) for s in range(8)] == phases

    def test_uneven_split_floors(self):
        # 3 phases over 8 slots: boundaries at floor(s*3/8).
        stream = self.make(period=8, multipliers=(1.0, 2.0, 3.0))
        phases = [stream.phase_of(s) for s in range(8)]
        assert phases == [0, 0, 0, 1, 1, 1, 2, 2]

    def test_rate_multiplier_tracks_phase(self):
        stream = self.make(period=8)
        assert stream.rate_multiplier(0) == 0.25
        assert stream.rate_multiplier(2) == 1.0
        assert stream.rate_multiplier(4) == 1.75
        np.testing.assert_allclose(
            stream.intensities(4), stream.intensities(2) * 1.75
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="period_slots"):
            self.make(period=0)
        with pytest.raises(ValueError, match="phases cannot split"):
            self.make(period=2, multipliers=(1.0, 1.0, 1.0))
        with pytest.raises(ValueError, match="at least one phase"):
            self.make(multipliers=())


class TestFlashCrowdStream:
    def make(self, **kw):
        kw.setdefault("spike_content", 2)
        kw.setdefault("spike_slot", 4)
        kw.setdefault("spike_duration", 3)
        kw.setdefault("spike_factor", 10.0)
        kw.setdefault("rate_boost", 2.0)
        return FlashCrowdStream(n_catalog=6, alpha=1.0, **GEOMETRY, **kw)

    def test_spike_window_placement(self):
        stream = self.make()
        assert [stream.in_spike(s) for s in range(12)] == [
            s in (4, 5, 6) for s in range(12)
        ]

    def test_spike_multiplies_only_the_spiking_content(self):
        stream = self.make()
        base = stream.base_weights()
        inside = stream.weights_at(5)
        outside = stream.weights_at(3)
        assert np.array_equal(outside, base)
        assert inside[2] == pytest.approx(base[2] * 10.0)
        mask = np.arange(6) != 2
        assert np.array_equal(inside[mask], base[mask])

    def test_rate_boost_only_in_window(self):
        stream = self.make()
        assert stream.rate_multiplier(4) == 2.0
        assert stream.rate_multiplier(7) == 1.0

    def test_spiking_content_dominates_demand_in_window(self):
        stream = self.make(spike_factor=50.0)
        inside = stream.intensities(5)
        assert inside[2] == max(inside)

    def test_validation(self):
        with pytest.raises(ValueError, match="spike_content"):
            self.make(spike_content=6)
        with pytest.raises(ValueError, match="spike_slot"):
            self.make(spike_slot=12)
        with pytest.raises(ValueError, match="spike_duration"):
            self.make(spike_duration=0)
        with pytest.raises(ValueError, match="spike_factor"):
            self.make(spike_factor=0.5)


TRACE_CSV = """video_id,category_id,views,tags,receiver
v1,Music,1000,a|b,0
v2,Gaming,600,,1
v3,,300,,0
v4,Music,not-a-number,,1
v5,Sports,400,,nope
v6,Gaming,200,,
"""


class TestTraceStream:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(TRACE_CSV)
        return path

    def test_skip_counts_match_load_trace_csv(self, trace_path):
        oracle = load_trace_csv(trace_path)
        stream = TraceStream.from_csv(trace_path, **GEOMETRY)
        # v3 (missing category), v4 (non-numeric views), v5 (malformed
        # receiver) are skipped; only v5 counts as a receiver skip.
        assert oracle.skipped_rows == 3
        assert oracle.skipped_receivers == 1
        assert stream.skipped_rows == oracle.skipped_rows
        assert stream.skipped_receivers == oracle.skipped_receivers

    def test_shares_match_trace_to_popularity(self, trace_path):
        oracle = load_trace_csv(trace_path)
        labels, shares = trace_to_popularity(oracle)
        stream = TraceStream.from_csv(trace_path, **GEOMETRY)
        assert stream.labels == tuple(labels)
        np.testing.assert_allclose(stream.base_weights(), shares)
        # Music 1000, Gaming 800, then the truncated catalog.
        assert stream.labels[0] == "Music"

    def test_n_contents_truncates_the_catalog(self, trace_path):
        stream = TraceStream.from_csv(trace_path, n_contents=1, **GEOMETRY)
        assert stream.n_contents == 1
        assert stream.labels == ("Music",)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStream.from_csv(tmp_path / "absent.csv", **GEOMETRY)

    def test_stream_workload_reuses_trace_labels(self, trace_path):
        stream = TraceStream.from_csv(trace_path, **GEOMETRY)
        workload = stream_workload(stream)
        assert [c.name for c in workload.catalog] == list(stream.labels)


class TestRequestChunk:
    def chunk(self):
        stream = ZipfStream(n_catalog=4, **GEOMETRY)
        return stream.chunk(0, 1, 4)

    def test_geometry(self):
        chunk = self.chunk()
        assert chunk.start_slot == 4
        assert chunk.n_slots == 4
        assert chunk.n_contents == 4
        assert chunk.n_requests == int(chunk.counts.sum())
        assert len(chunk.timeliness) == chunk.n_requests

    def test_offsets_partition_the_draws(self):
        chunk = self.chunk()
        offs = chunk.offsets()
        assert offs[0] == 0 and offs[-1] == chunk.n_requests
        assert np.all(np.diff(offs) == chunk.counts.reshape(-1))

    def test_timeliness_for_matches_offsets(self):
        chunk = self.chunk()
        offs = chunk.offsets()
        k = chunk.n_contents
        for s in range(chunk.n_slots):
            for c in range(k):
                cell = chunk.timeliness_for(s, c)
                assert np.array_equal(
                    cell, chunk.timeliness[offs[s * k + c]:offs[s * k + c + 1]]
                )
                assert len(cell) == chunk.counts[s, c]

    def test_slot_batches_legacy_view(self):
        chunk = self.chunk()
        batches = list(chunk.slot_batches())
        assert [slot for slot, _, _ in batches] == [4, 5, 6, 7]
        for (slot, t, batch), row in zip(batches, chunk.counts):
            assert t == pytest.approx((slot + 0.5) * chunk.dt)
            assert np.array_equal(batch.counts, row)
            assert [len(g) for g in batch.timeliness] == list(row)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_slots, n_contents"):
            RequestChunk(
                edp=0, start_slot=0, dt=1.0,
                counts=np.zeros(3, dtype=np.int64),
                timeliness=np.empty(0),
            )
        with pytest.raises(ValueError, match="timeliness draws"):
            RequestChunk(
                edp=0, start_slot=0, dt=1.0,
                counts=np.ones((2, 2), dtype=np.int64),
                timeliness=np.empty(3),
            )

    def test_concat_rejects_gaps_and_mixed_edps(self):
        stream = ZipfStream(n_catalog=4, **GEOMETRY)
        chunks = list(stream.iter_chunks(0, 4))
        with pytest.raises(ValueError, match="not consecutive"):
            concat_chunks([chunks[0], chunks[2]])
        with pytest.raises(ValueError, match="different EDPs"):
            concat_chunks([chunks[0], stream.chunk(1, 1, 4)])
        with pytest.raises(ValueError, match="no chunks"):
            concat_chunks([])


class TestMakeStream:
    def test_dispatch_covers_the_workload_catalog(self):
        for kind in STREAM_WORKLOADS:
            if kind == "trace":
                continue
            stream = make_stream(kind, n_contents=6, **GEOMETRY)
            assert stream.n_contents == 6

    def test_aliases(self):
        assert isinstance(
            make_stream("shuffled", **GEOMETRY), ShuffledZipfStream
        )
        assert isinstance(make_stream("flash", **GEOMETRY), FlashCrowdStream)

    def test_flash_spike_defaults_to_quarter_horizon(self):
        stream = make_stream("flash-crowd", **GEOMETRY)
        assert stream.spike_slot == GEOMETRY["n_slots"] // 4

    def test_fixed_needs_shares(self):
        with pytest.raises(ValueError, match="needs explicit shares"):
            make_stream("fixed", **GEOMETRY)
        stream = make_stream("fixed", shares=(2.0, 1.0), **GEOMETRY)
        assert isinstance(stream, FixedPopularityStream)

    def test_trace_needs_path(self):
        with pytest.raises(ValueError, match="needs a trace file"):
            make_stream("trace", **GEOMETRY)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown streaming workload"):
            make_stream("bogus", **GEOMETRY)

    def test_timeliness_threads_through(self):
        law = TimelinessModel(l_max=2.0)
        stream = make_stream("zipf", timeliness=law, **GEOMETRY)
        assert stream.timeliness is law


class TestWarmupAndValidation:
    def test_warmup_bounds(self):
        with pytest.raises(ValueError, match="warmup_slots"):
            ZipfStream(n_catalog=4, **dict(GEOMETRY, seed=0), warmup_slots=12)
        stream = ZipfStream(n_catalog=4, **GEOMETRY, warmup_slots=3)
        assert stream.measured_slots == 9

    def test_warmup_leaves_the_trace_unchanged(self):
        plain = ZipfStream(n_catalog=4, **GEOMETRY)
        warm = ZipfStream(n_catalog=4, **GEOMETRY, warmup_slots=4)
        assert_identical = (
            plain.materialize(0).counts.tobytes()
            == warm.materialize(0).counts.tobytes()
        )
        assert assert_identical

    def test_chunk_index_range(self):
        stream = ZipfStream(n_catalog=4, **GEOMETRY)
        with pytest.raises(ValueError, match="chunk_slots"):
            stream.chunk(0, 0, 0)
        with pytest.raises(IndexError, match="chunk"):
            stream.chunk(0, 99, 4)
        with pytest.raises(IndexError, match="EDP"):
            stream.chunk(5, 0, 4)


class TestEngineStreamValidation:
    def make_stream(self, n_edps=4, n_contents=6):
        return ZipfStream(
            n_catalog=n_contents,
            **dict(GEOMETRY, n_edps=n_edps),
        )

    def test_rate_conflicts_with_stream(self):
        stream = self.make_stream()
        with pytest.raises(ValueError, match="mutually exclusive"):
            ServingEngine(
                stream_workload(stream), 4,
                stream=stream, rate_per_edp=5.0,
            )

    def test_edp_count_must_match(self):
        stream = self.make_stream(n_edps=4)
        with pytest.raises(ValueError, match="covers 4 EDPs"):
            ServingEngine(stream_workload(stream), 8, stream=stream)

    def test_catalog_must_match(self):
        stream = self.make_stream()
        other = stream_workload(self.make_stream(n_contents=3))
        with pytest.raises(ValueError, match="does not match"):
            ServingEngine(other, 4, stream=stream, capacity_fraction=1.0)

    def test_negative_chunk_rejected(self):
        stream = self.make_stream()
        with pytest.raises(ValueError, match="stream_chunk"):
            ServingEngine(
                stream_workload(stream), 4, stream=stream, stream_chunk=-1
            )

    def test_net_engine_rejects_receiver_popularity_with_stream(self):
        stream = ZipfStream(
            n_catalog=6, n_edps=4, n_slots=12, dt=0.5,
            rate_per_edp=20.0, seed=3,
        )
        with pytest.raises(ValueError, match="not supported in stream mode"):
            NetworkReplayEngine(
                stream_workload(stream),
                "path:4",
                stream=stream,
                receiver_popularity=np.ones((2, 6)),
            )

    def test_net_engine_lane_count_must_match(self):
        stream = ZipfStream(
            n_catalog=6, n_edps=3, n_slots=12, dt=0.5,
            rate_per_edp=20.0, seed=3,
        )
        with pytest.raises(ValueError, match="lanes"):
            NetworkReplayEngine(
                stream_workload(stream), "path:4",
                n_replicas=2, stream=stream, capacity_fraction=1.0,
            )


class TestLiveStreamStatus:
    def test_snapshot_carries_stream_block(self, tmp_path):
        from repro.obs.live import LiveStatusWriter

        path = tmp_path / "status.json"
        live = LiveStatusWriter(path, every=1)
        live.set_phase("serve:lru", total_items=2)
        live.set_stream(
            workload="ZipfStream",
            chunk_slots=8,
            n_chunks=4,
            expected_requests=1000.0,
        )
        live.note_requests(250, hits=100, latency_s=1.0)
        live.write(force=True)
        payload = json.loads(path.read_text())
        stream = payload["stream"]
        assert stream["workload"] == "ZipfStream"
        assert stream["chunk_slots"] == 8
        assert stream["n_chunks"] == 4
        assert stream["progress"] == pytest.approx(0.25)

    def test_watch_renders_stream_line(self):
        from repro.obs.watch import render_status

        frame = render_status({
            "state": "running",
            "phase": "serve:lru",
            "elapsed_s": 3.0,
            "items": {"done": 1, "total": 2},
            "stream": {
                "workload": "ZipfStream",
                "chunk_slots": 8,
                "n_chunks": 4,
                "expected_requests": 1000.0,
                "progress": 0.25,
            },
        })
        assert "stream" in frame
        assert "ZipfStream" in frame
        assert "25.0%" in frame
