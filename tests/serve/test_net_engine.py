"""Network replay engine: routing semantics, determinism, MFG acceptance.

The determinism tests mirror ``tests/serve/test_engine.py``: replay the
same traces serial vs a 2-worker process pool and across shard counts,
requiring bit-identical reports and identical normalised telemetry.
"""

import io
import json

import numpy as np
import pytest

from repro.content.workloads import zipf_workload
from repro.obs.telemetry import SolverTelemetry
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.serve.net import (
    NetworkReplayEngine,
    NetworkReplaySpec,
    parse_topology,
)

BACKENDS = {"serial": SerialExecutor, "process": lambda: ParallelExecutor(workers=2)}


def normalised_events(buffer):
    """Telemetry events with sequence numbers and timings stripped."""
    events = []
    buffer.seek(0)
    for line in buffer:
        if not line.strip():
            continue
        event = json.loads(line)
        if event.get("ev") == "metrics":
            continue
        event.pop("seq", None)
        for key in [k for k in event if k.endswith("_s")]:
            event.pop(key)
        events.append(event)
    return events


@pytest.fixture(scope="module")
def net_workload():
    return zipf_workload(n_contents=6, alpha=1.0, rate_per_edp=50.0, seed=0)


@pytest.fixture(scope="module")
def path_engine(net_workload):
    return NetworkReplayEngine(
        net_workload, "path:6", n_replicas=3, capacity_fraction=0.2, seed=0
    )


class TestSpec:
    def test_engine_spec_is_consistent(self, path_engine):
        spec = path_engine.spec()
        assert spec.source.n_edps == spec.n_replicas * spec.n_receivers
        assert spec.node_capacity_mb == path_engine.node_capacity_mb

    def test_stream_geometry_mismatch_raises(self, path_engine):
        spec = path_engine.spec()
        with pytest.raises(ValueError, match="streams"):
            NetworkReplaySpec(
                topology=spec.topology,
                source=spec.source,
                n_receivers=spec.n_receivers,
                n_replicas=spec.n_replicas + 1,
                sizes_mb=spec.sizes_mb,
                node_capacity_mb=spec.node_capacity_mb,
                queue_capacity=spec.queue_capacity,
                queue_service_rate=spec.queue_service_rate,
            )

    def test_receiver_popularity_shape_checked(self, path_engine):
        spec = path_engine.spec()
        with pytest.raises(ValueError, match="receiver_popularity"):
            NetworkReplaySpec(
                topology=spec.topology,
                source=spec.source,
                n_receivers=spec.n_receivers,
                n_replicas=spec.n_replicas,
                sizes_mb=spec.sizes_mb,
                node_capacity_mb=spec.node_capacity_mb,
                queue_capacity=spec.queue_capacity,
                queue_service_rate=spec.queue_service_rate,
                receiver_popularity=np.ones((spec.n_receivers + 1, 2)),
            )

    def test_tiny_node_capacity_rejected(self, net_workload):
        with pytest.raises(ValueError, match="holds no content"):
            NetworkReplayEngine(
                net_workload, "path:4", capacity_fraction=0.01
            )


class TestReplaySemantics:
    @pytest.fixture(scope="class")
    def reports(self, path_engine):
        return {
            r.strategy: r
            for r in path_engine.compare(["lce", "lcd", "probcache", "edge"])
        }

    def test_every_request_served_exactly_once(self, reports):
        for report in reports.values():
            assert report.requests > 0
            assert report.cache_hits + report.source_hits == report.requests
            shares = sum(
                report.node_hit_share(s.node) for s in report.per_node
            )
            assert shares + report.source_share == pytest.approx(1.0)

    def test_same_requests_under_every_strategy(self, reports):
        """Strategy draws must not perturb the shared request streams."""
        totals = {name: r.requests for name, r in reports.items()}
        assert len(set(totals.values())) == 1, totals

    def test_hops_bounded_by_route(self, path_engine, reports):
        longest = max(len(r) - 1 for r in path_engine.topology.routes)
        for report in reports.values():
            assert 0 < report.mean_hops <= longest
            assert report.totals.max_hops <= longest

    def test_latency_consistent_with_hops(self, reports):
        # Fewer mean hops must mean cheaper mean latency on a path
        # (per-hop latencies are fixed and identical for every route).
        ordered = sorted(reports.values(), key=lambda r: r.mean_hops)
        latencies = [r.mean_latency_s for r in ordered]
        assert latencies == sorted(latencies)

    def test_edge_only_places_at_edge(self, path_engine, reports):
        report = reports["edge"]
        edge_node = path_engine.topology.routes[0][1]
        for stats in report.per_node:
            if stats.node != edge_node:
                assert stats.placements == 0

    def test_lce_places_most(self, reports):
        assert reports["lce"].placements >= reports["lcd"].placements
        assert reports["lce"].placements >= reports["edge"].placements

    def test_replay_reproducible(self, path_engine, reports):
        again = path_engine.replay("lcd")
        assert again.summary() == reports["lcd"].summary()


class TestReceiverPopularity:
    def test_degenerate_demand_caches_trivially(self, net_workload):
        topo = parse_topology("ring:4")
        focused = np.zeros((topo.n_receivers, len(net_workload.catalog)))
        focused[:, 0] = 1.0
        base = NetworkReplayEngine(
            net_workload, topo, n_replicas=2, capacity_fraction=0.2, seed=3
        ).replay("lce")
        single = NetworkReplayEngine(
            net_workload, topo, n_replicas=2, capacity_fraction=0.2, seed=3,
            receiver_popularity=focused,
        ).replay("lce")
        # Everyone asking for one cacheable content must beat the
        # Zipf mix at the same budget.
        assert single.hit_ratio > base.hit_ratio


class TestDeterminism:
    @pytest.fixture(scope="class")
    def runs(self, net_workload):
        out = {}
        for name, factory in BACKENDS.items():
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer)
            engine = NetworkReplayEngine(
                net_workload, "tree:2x2", n_replicas=4, shards=2,
                capacity_fraction=0.2, seed=5,
                executor=factory(), telemetry=telemetry,
            )
            reports = engine.compare(["lce", "probcache"])
            telemetry.close()
            out[name] = (
                [r.summary() for r in reports],
                normalised_events(buffer),
            )
        return out

    def test_reports_bit_identical(self, runs):
        serial, _ = runs["serial"]
        parallel, _ = runs["process"]
        assert serial == parallel

    def test_telemetry_streams_identical(self, runs):
        _, serial_events = runs["serial"]
        _, parallel_events = runs["process"]
        assert serial_events == parallel_events
        kinds = {e["ev"] for e in serial_events}
        assert "net_shard" in kinds
        assert "network_report" in kinds

    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_shard_count_never_changes_results(
        self, net_workload, shards, runs
    ):
        engine = NetworkReplayEngine(
            net_workload, "tree:2x2", n_replicas=4, shards=shards,
            capacity_fraction=0.2, seed=5,
        )
        reports = [r.summary() for r in engine.compare(["lce", "probcache"])]
        assert reports == runs["serial"][0]


class TestMFGAcceptance:
    @pytest.fixture(scope="class")
    def acceptance(self):
        """The ISSUE acceptance run: 15-router binary tree, Zipf(1)."""
        workload = zipf_workload(n_contents=12, alpha=1.0,
                                 rate_per_edp=60.0, seed=0)
        engine = NetworkReplayEngine(
            workload, "tree:2x4", n_replicas=4, capacity_fraction=0.1, seed=0
        )
        return engine, {
            r.strategy: r for r in engine.compare(["lce", "mfg"])
        }

    def test_mfg_beats_lce_at_equal_budget(self, acceptance):
        _, reports = acceptance
        assert reports["mfg"].hit_ratio > reports["lce"].hit_ratio
        # Equal total budget by construction: one engine, one
        # node_capacity_mb shared by both strategies.
        assert (
            reports["mfg"].node_capacity_mb
            == reports["lce"].node_capacity_mb
        )

    def test_mfg_concentrates_placement_near_receivers(self, acceptance):
        engine, reports = acceptance
        report = reports["mfg"]
        depths = {s.node: s.depth for s in report.per_node}
        max_depth = max(depths.values())
        deep = sum(
            s.placements for s in report.per_node
            if s.depth == max_depth
        )
        shallow = sum(
            s.placements for s in report.per_node if s.depth == 1
        )
        # Depth-scaled admission: leaf routers place more than the root
        # level even though there are 8 of them vs 1.
        assert deep > shallow

    def test_equilibria_cached(self, acceptance):
        engine, _ = acceptance
        assert engine.solve_equilibria() is engine.solve_equilibria()
