"""Placement-strategy semantics: LCE, LCD, ProbCache, edge-only, MFG."""

import numpy as np
import pytest

from repro.serve.cache import EdgeCache
from repro.serve.net.strategies import (
    STRATEGY_NAMES,
    EdgeOnlyStrategy,
    LCDStrategy,
    LCEStrategy,
    MFGNetworkStrategy,
    PlacementSite,
    ProbCacheStrategy,
    make_strategy,
)


def site(**overrides):
    base = dict(
        node=2, slot=0, content=1, hops_from_server=1, hops_to_receiver=2,
        path_len=3, downstream_index=1, is_edge=False, depth=2, max_depth=3,
        path_capacity=4.0, node_capacity=2.0,
    )
    base.update(overrides)
    return PlacementSite(**base)


RNG = np.random.default_rng(0)


class TestClassical:
    def test_lce_always_places(self):
        assert LCEStrategy().should_place(site(), RNG)
        assert LCEStrategy().should_place(site(downstream_index=3), RNG)

    def test_lcd_places_only_first_downstream(self):
        strategy = LCDStrategy()
        assert strategy.should_place(site(downstream_index=1), RNG)
        assert not strategy.should_place(site(downstream_index=2), RNG)

    def test_edge_places_only_at_edge(self):
        strategy = EdgeOnlyStrategy()
        assert strategy.should_place(site(is_edge=True), RNG)
        assert not strategy.should_place(site(is_edge=False), RNG)

    def test_default_victim_is_lru(self):
        cache = EdgeCache(capacity_mb=100.0)
        cache.store(0, 20.0, t=5.0)
        cache.store(1, 20.0, t=1.0)
        cache.store(2, 20.0, t=3.0)
        assert LCEStrategy().victim(0, cache, RNG) == 1


class TestProbCache:
    def test_probability_formula(self):
        # p = N/(t_tw*c_v) * (x/L)^L; make it 1 to remove randomness.
        strategy = ProbCacheStrategy(t_tw=1.0)
        sure = site(path_capacity=8.0, node_capacity=2.0,
                    hops_from_server=3, path_len=3)
        assert strategy.should_place(sure, np.random.default_rng(1))

    def test_far_from_server_unlikely(self):
        strategy = ProbCacheStrategy(t_tw=10.0)
        rng = np.random.default_rng(2)
        rare = site(path_capacity=2.0, node_capacity=2.0,
                    hops_from_server=1, path_len=6)
        hits = sum(strategy.should_place(rare, rng) for _ in range(500))
        # p = 0.1 * (1/6)^6 ~ 2e-6: essentially never.
        assert hits == 0

    def test_zero_capacity_never_places(self):
        assert not ProbCacheStrategy().should_place(
            site(node_capacity=0.0), RNG
        )

    def test_bad_t_tw_raises(self):
        with pytest.raises(ValueError, match="t_tw"):
            ProbCacheStrategy(t_tw=0.0)


class TestMFGStrategy:
    def test_admission_scales_with_depth(self):
        strategy = MFGNetworkStrategy(
            rate=np.full((2, 3), 0.6), score=np.zeros((2, 3))
        )
        edge = strategy.admission_probability(site(depth=3, max_depth=3))
        upstream = strategy.admission_probability(site(depth=1, max_depth=3))
        assert edge == pytest.approx(0.6)
        assert upstream == pytest.approx(0.2)

    def test_zero_max_depth_uses_full_rate(self):
        strategy = MFGNetworkStrategy(
            rate=np.full((1, 1), 0.5), score=np.zeros((1, 1))
        )
        p = strategy.admission_probability(
            site(slot=0, content=0, depth=0, max_depth=0)
        )
        assert p == pytest.approx(0.5)

    def test_victim_prefers_lowest_score(self):
        score = np.array([[0.9, 0.1, 0.5]])
        strategy = MFGNetworkStrategy(rate=np.zeros((1, 3)), score=score)
        cache = EdgeCache(capacity_mb=100.0)
        for k in range(3):
            cache.store(k, 20.0, t=float(k))
        assert strategy.victim(0, cache, RNG) == 1

    def test_table_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="matching"):
            MFGNetworkStrategy(rate=np.zeros((2, 3)), score=np.zeros((3, 2)))

    def test_rate_out_of_range_raises(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            MFGNetworkStrategy(rate=np.full((1, 1), 1.5),
                               score=np.zeros((1, 1)))


class TestFactory:
    @pytest.mark.parametrize("name", ["lce", "lcd", "probcache", "edge"])
    def test_classical_names(self, name):
        assert make_strategy(name).name == name

    def test_edge_only_alias(self):
        assert make_strategy("edge-only").name == "edge"

    def test_mfg_without_equilibria_raises(self):
        with pytest.raises(ValueError, match="equilibria"):
            make_strategy("mfg")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown placement strategy"):
            make_strategy("belady")

    def test_names_constant_covers_factory(self):
        for name in STRATEGY_NAMES:
            if name == "mfg":
                continue
            assert make_strategy(name).name == name
