"""Admission-queue fluid drain and rejection accounting."""

import pytest

from repro.serve.net.queue import AdmissionQueue


class TestAdmissionQueue:
    def test_accepts_until_capacity(self):
        q = AdmissionQueue(capacity=3, service_rate=1e-9)
        results = [q.offer(0.0) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert q.accepted == 3
        assert q.rejected == 2
        assert q.offers == 5
        assert q.rejection_rate == pytest.approx(0.4)

    def test_drains_between_offers(self):
        q = AdmissionQueue(capacity=2, service_rate=1.0)
        assert q.offer(0.0) and q.offer(0.0)
        assert not q.offer(0.0)  # full
        # One unit of time drains one job; room for exactly one more.
        assert q.offer(1.0)
        assert not q.offer(1.0)

    def test_backlog_empties_over_long_gap(self):
        q = AdmissionQueue(capacity=4, service_rate=2.0)
        q.offer(0.0)
        q.offer(10.0)
        assert q.backlog == pytest.approx(1.0)  # old job long gone

    def test_backlog_integral_triangular(self):
        # One job at t=0 drains by t=1 at rate 1: area = 1*1/2.
        q = AdmissionQueue(capacity=4, service_rate=1.0)
        q.offer(0.0)
        q.offer(5.0)
        assert q.backlog_integral == pytest.approx(0.5)
        assert q.mean_backlog() == pytest.approx(0.1)

    def test_backlog_integral_trapezoid(self):
        # Two jobs at t=0, drain 0.5 by t=0.5: trapezoid (2 + 1.5)/2 * 0.5.
        q = AdmissionQueue(capacity=4, service_rate=1.0)
        q.offer(0.0)
        q.offer(0.0)
        q.offer(0.5)
        assert q.backlog_integral == pytest.approx(0.875)

    def test_rejection_rate_empty(self):
        assert AdmissionQueue(capacity=1, service_rate=1.0).rejection_rate == 0.0

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionQueue(capacity=0, service_rate=1.0)
        with pytest.raises(ValueError, match="service_rate"):
            AdmissionQueue(capacity=1, service_rate=0.0)
