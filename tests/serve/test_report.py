"""Tests for serving-report containers and export."""

import csv
import json

import pytest

from repro.serve import (
    EDPServingStats,
    REPORT_HEADERS,
    ServingReport,
    comparison_rows,
    export_serving_reports,
)


def make_stats(edp, requests=100, hits=60, violations=5, backhaul=250.0,
               revenue=40.0, latency=12.0):
    return EDPServingStats(
        edp=edp,
        requests=requests,
        hits=hits,
        staleness_violations=violations,
        refreshes=2,
        backhaul_mb=backhaul,
        revenue=revenue,
        latency_s=latency,
    )


def make_report(policy="lru", hits=60, **kwargs):
    return ServingReport(
        policy=policy,
        n_slots=10,
        dt=0.1,
        seed=7,
        eta2=1.0,
        backhaul_rate=20.0,
        per_edp=(make_stats(0, hits=hits), make_stats(1, hits=hits)),
        **kwargs,
    )


class TestEDPStats:
    def test_derived_metrics(self):
        stats = make_stats(0)
        assert stats.misses == 40
        assert stats.hit_ratio == pytest.approx(0.6)
        assert stats.mean_latency_s == pytest.approx(0.12)

    def test_empty_edp_divides_safely(self):
        stats = EDPServingStats(edp=0)
        assert stats.hit_ratio == 0.0
        assert stats.mean_latency_s == 0.0

    def test_rejects_negative_edp(self):
        with pytest.raises(ValueError, match="edp"):
            EDPServingStats(edp=-1)


class TestServingReport:
    def test_aggregates_sum_over_edps(self):
        report = make_report()
        assert report.n_edps == 2
        assert report.requests == 200
        assert report.hits == 120
        assert report.misses == 80
        assert report.hit_ratio == pytest.approx(0.6)
        assert report.staleness_violations == 10
        assert report.staleness_violation_rate == pytest.approx(0.05)
        assert report.backhaul_mb == pytest.approx(500.0)
        assert report.revenue == pytest.approx(80.0)
        assert report.mean_latency_s == pytest.approx(0.12)

    def test_net_income_charges_backhaul(self):
        report = make_report()
        # eta2 * backhaul_mb / backhaul_rate = 1.0 * 500 / 20 = 25
        assert report.backhaul_cost == pytest.approx(25.0)
        assert report.net_income == pytest.approx(55.0)

    def test_summary_round_trips_through_json(self):
        summary = make_report().summary()
        clone = json.loads(json.dumps(summary))
        assert clone == summary
        assert clone["policy"] == "lru"
        assert clone["hit_ratio"] == pytest.approx(0.6)

    def test_to_row_matches_headers(self):
        row = make_report().to_row()
        assert len(row) == len(REPORT_HEADERS)
        assert row[0] == "lru"

    def test_requires_edp_order(self):
        with pytest.raises(ValueError, match="EDP order"):
            ServingReport(
                policy="lru", n_slots=1, dt=0.1, seed=0, eta2=1.0,
                backhaul_rate=20.0, per_edp=(make_stats(1), make_stats(0)),
            )

    def test_requires_positive_backhaul_rate(self):
        with pytest.raises(ValueError, match="backhaul_rate"):
            ServingReport(
                policy="lru", n_slots=1, dt=0.1, seed=0, eta2=1.0,
                backhaul_rate=0.0,
            )


class TestComparison:
    def test_rows_sorted_by_hit_ratio(self):
        reports = [
            make_report(policy="lru", hits=50),
            make_report(policy="mfg", hits=90),
            make_report(policy="random", hits=20),
        ]
        rows = comparison_rows(reports)
        assert [r[0] for r in rows] == ["mfg", "lru", "random"]


class TestExport:
    def test_writes_expected_files(self, tmp_path):
        reports = [make_report(policy="mfg", hits=90), make_report(policy="lru")]
        written = export_serving_reports(reports, tmp_path)
        names = {p.name for p in written}
        assert names == {
            "serving_comparison.csv",
            "serving_summary.json",
            "per_edp_mfg.csv",
            "per_edp_lru.csv",
        }
        with open(tmp_path / "serving_comparison.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(REPORT_HEADERS)
        assert [r[0] for r in rows[1:]] == ["mfg", "lru"]
        summary = json.loads((tmp_path / "serving_summary.json").read_text())
        assert set(summary) == {"mfg", "lru"}
        assert summary["mfg"]["requests"] == 200
        with open(tmp_path / "per_edp_lru.csv", newline="") as fh:
            edp_rows = list(csv.reader(fh))
        assert len(edp_rows) == 3  # header + 2 EDPs

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError, match="no serving reports"):
            export_serving_reports([], tmp_path)
