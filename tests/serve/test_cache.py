"""Tests for the edge-cache mechanics."""

import pytest

from repro.serve import EdgeCache


class TestCapacityAccounting:
    def test_store_and_lookup(self):
        cache = EdgeCache(capacity_mb=250.0)
        entry = cache.store(3, 100.0, t=0.5)
        assert cache.lookup(3) is entry
        assert entry.fetched_at == 0.5
        assert entry.last_used == 0.5
        assert entry.hits == 0
        assert 3 in cache
        assert cache.lookup(7) is None

    def test_used_and_free(self):
        cache = EdgeCache(capacity_mb=250.0)
        cache.store(0, 100.0, t=0.0)
        cache.store(1, 100.0, t=0.0)
        assert cache.used_mb == pytest.approx(200.0)
        assert cache.free_mb == pytest.approx(50.0)
        assert len(cache) == 2

    def test_has_room_vs_fits(self):
        cache = EdgeCache(capacity_mb=250.0)
        cache.store(0, 200.0, t=0.0)
        assert not cache.has_room(100.0)   # would need eviction
        assert cache.fits(100.0)           # could fit after eviction
        assert not cache.fits(300.0)       # can never fit

    def test_evict_frees_room(self):
        cache = EdgeCache(capacity_mb=250.0)
        cache.store(0, 200.0, t=0.0)
        evicted = cache.evict(0)
        assert evicted.content == 0
        assert cache.used_mb == 0.0
        assert 0 not in cache

    def test_insertion_order_preserved(self):
        cache = EdgeCache(capacity_mb=500.0)
        for k in (4, 1, 3):
            cache.store(k, 100.0, t=0.0)
        assert [e.content for e in cache] == [4, 1, 3]


class TestEntryAge:
    def test_age_advances_with_time(self):
        cache = EdgeCache(capacity_mb=100.0)
        entry = cache.store(0, 50.0, t=1.0)
        assert entry.age(1.5) == pytest.approx(0.5)
        assert entry.age(0.5) == 0.0  # clamped; clocks never run backwards


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EdgeCache(capacity_mb=0.0)

    def test_rejects_duplicate_store(self):
        cache = EdgeCache(capacity_mb=300.0)
        cache.store(0, 100.0, t=0.0)
        with pytest.raises(ValueError, match="already cached"):
            cache.store(0, 100.0, t=1.0)

    def test_rejects_store_without_room(self):
        cache = EdgeCache(capacity_mb=150.0)
        cache.store(0, 100.0, t=0.0)
        with pytest.raises(ValueError, match="no room"):
            cache.store(1, 100.0, t=0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="size_mb"):
            EdgeCache(capacity_mb=100.0).store(0, 0.0, t=0.0)

    def test_evict_missing_raises(self):
        with pytest.raises(KeyError):
            EdgeCache(capacity_mb=100.0).evict(5)
