"""Cache-network topology builders, routing tables, and the grammar."""

import pickle

import pytest

from repro.serve.net.topology import (
    CacheNetworkTopology,
    build_topology,
    mesh_topology,
    parse_topology,
    path_topology,
    ring_topology,
    tree_topology,
)


class TestPath:
    def test_roles(self):
        topo = path_topology(6)
        assert topo.receivers == (0,)
        assert topo.routers == (1, 2, 3, 4)
        assert topo.sources == (5,)
        assert topo.n_nodes == 6

    def test_route_is_the_chain(self):
        topo = path_topology(6)
        assert topo.routes == ((0, 1, 2, 3, 4, 5),)

    def test_route_latency_cumulative(self):
        topo = path_topology(4, receiver_latency_s=0.002,
                             internal_latency_s=0.010,
                             source_latency_s=0.034)
        lat = topo.route_latencies[0]
        assert lat[0] == 0.0
        assert lat[1] == pytest.approx(0.002)
        assert lat[2] == pytest.approx(0.012)
        assert lat[3] == pytest.approx(0.046)

    def test_depths_and_diameter(self):
        topo = path_topology(6)
        assert topo.depths == (5, 4, 3, 2, 1, 0)
        assert topo.diameter == 5

    def test_too_small_raises(self):
        with pytest.raises(ValueError, match="PATH"):
            path_topology(2)


class TestTree:
    def test_binary_depth4_is_the_15_router_tree(self):
        topo = tree_topology(2, 4)
        assert len(topo.routers) == 15
        assert len(topo.receivers) == 8  # one per leaf router
        assert topo.sources == (15,)
        assert topo.diameter == 8  # leaf receiver to leaf receiver

    def test_every_route_ends_at_the_source(self):
        topo = tree_topology(3, 2)
        for route in topo.routes:
            assert route[-1] in topo.sources
            assert route[0] in topo.receivers
            # interior nodes are all caching routers
            assert all(topo.is_router(v) for v in route[1:-1])

    def test_depths_decrease_along_route(self):
        topo = tree_topology(2, 3)
        for route in topo.routes:
            depths = [topo.depths[v] for v in route]
            assert depths == sorted(depths, reverse=True)
            assert depths[-1] == 0

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError, match="branching"):
            tree_topology(1, 3)
        with pytest.raises(ValueError, match="depth"):
            tree_topology(2, 0)


class TestRing:
    def test_roles_and_connectivity(self):
        topo = ring_topology(5)
        assert len(topo.routers) == 5
        assert len(topo.receivers) == 5
        assert topo.sources == (5,)
        # Router 0 touches the source; its receiver's route is short.
        assert topo.route_for(topo.receivers[0]) == (topo.receivers[0], 0, 5)

    def test_routes_wrap_the_shorter_way(self):
        topo = ring_topology(6)
        for route in topo.routes:
            # receiver + at most half the ring + source
            assert len(route) <= 2 + 6 // 2 + 1


class TestMesh:
    def test_deterministic_given_seed(self):
        a = mesh_topology(8, seed=3)
        b = mesh_topology(8, seed=3)
        assert a == b

    def test_seed_changes_geometry(self):
        a = mesh_topology(8, seed=3)
        b = mesh_topology(8, seed=4)
        assert a.edges != b.edges

    def test_connected_with_tiny_k(self):
        # k=1 usually leaves islands; the builder must bridge them.
        topo = mesh_topology(12, k_neighbors=1, seed=0)
        for route in topo.routes:
            assert route[-1] in topo.sources

    def test_latencies_positive(self):
        topo = mesh_topology(10, seed=5)
        assert all(latency > 0 for _, _, latency in topo.edges)


class TestInvariants:
    @pytest.mark.parametrize("topo", [
        path_topology(5),
        tree_topology(2, 3),
        ring_topology(4),
        mesh_topology(7, seed=1),
    ], ids=["path", "tree", "ring", "mesh"])
    def test_roles_partition_nodes(self, topo):
        roles = set(topo.receivers) | set(topo.routers) | set(topo.sources)
        assert roles == set(range(topo.n_nodes))
        assert not set(topo.receivers) & set(topo.routers)
        assert not set(topo.routers) & set(topo.sources)

    @pytest.mark.parametrize("topo", [
        path_topology(5),
        tree_topology(2, 3),
        ring_topology(4),
        mesh_topology(7, seed=1),
    ], ids=["path", "tree", "ring", "mesh"])
    def test_pickles(self, topo):
        assert pickle.loads(pickle.dumps(topo)) == topo

    def test_overlapping_roles_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            CacheNetworkTopology(
                name="bad", n_nodes=3,
                edges=((0, 1, 0.01), (1, 2, 0.01)),
                receivers=(0,), routers=(1, 0), sources=(2,),
            )

    def test_disconnected_receiver_rejected(self):
        with pytest.raises(ValueError, match="no source reachable"):
            build_topology(
                "bad", edges=((1, 2, 0.01),),
                receivers=(0,), routers=(1,), sources=(2,),
            )

    def test_neighbors_sorted(self):
        topo = tree_topology(2, 2)
        assert topo.neighbors(0) == (1, 2, 3)  # children + source

    def test_route_for_non_receiver_raises(self):
        topo = path_topology(4)
        with pytest.raises(ValueError, match="not a receiver"):
            topo.route_for(1)

    def test_describe_mentions_shape(self):
        text = path_topology(5).describe()
        assert "path:5" in text and "diameter" in text


class TestGrammar:
    def test_path_spec(self):
        assert parse_topology("path:6").n_nodes == 6

    def test_tree_spec(self):
        topo = parse_topology("tree:2x4")
        assert len(topo.routers) == 15

    def test_ring_spec(self):
        assert len(parse_topology("ring:5").routers) == 5

    def test_mesh_spec_with_and_without_k(self):
        assert parse_topology("mesh:8", seed=2).name == "mesh:8"
        assert parse_topology("mesh:8x2", seed=2).name == "mesh:8x2"

    def test_case_and_whitespace_tolerant(self):
        assert parse_topology("  TREE:2x2  ").name == "tree:2x2"

    @pytest.mark.parametrize("spec", [
        "torus:3", "path", "path:ax", "tree:3", "ring:2x2", "mesh:3x2x1",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)
