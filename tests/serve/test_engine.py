"""Tests for the serving engine: replay semantics and determinism.

The backend-determinism tests mirror ``tests/runtime/test_determinism``:
replay the same trace under the serial and a 2-worker process backend
and require bit-identical reports plus identical normalised telemetry
streams.
"""

import io
import json

import numpy as np
import pytest

from repro.content.workloads import video_marketplace
from repro.obs.telemetry import SolverTelemetry
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.serve import ReplaySpec, ServingEngine, replay_shard

BACKENDS = {"serial": SerialExecutor, "process": lambda: ParallelExecutor(workers=2)}


def normalised_events(buffer):
    """Telemetry events with sequence numbers and timings stripped."""
    events = []
    buffer.seek(0)
    for line in buffer:
        if not line.strip():
            continue
        event = json.loads(line)
        if event.get("ev") == "metrics":
            continue
        event.pop("seq", None)
        for key in [k for k in event if k.endswith("_s")]:
            event.pop(key)
        events.append(event)
    return events


class TestReplaySpec:
    def test_engine_spec_is_consistent(self, engine):
        spec = engine.spec()
        assert spec.price.shape == (engine.source.n_slots, len(engine.sizes_mb))
        assert all(m > h for m, h in zip(spec.miss_latency_s, spec.hit_latency_s))

    def test_rejects_mismatched_catalog(self, engine):
        spec = engine.spec()
        with pytest.raises(ValueError, match="sizes_mb"):
            ReplaySpec(
                source=spec.source,
                sizes_mb=spec.sizes_mb[:-1],
                update_periods=spec.update_periods,
                capacity_mb=spec.capacity_mb,
                l_max=spec.l_max,
                hit_latency_s=spec.hit_latency_s,
                miss_latency_s=spec.miss_latency_s,
                price=spec.price,
                eta2=spec.eta2,
                backhaul_rate=spec.backhaul_rate,
            )

    def test_rejects_bad_price_shape(self, engine):
        spec = engine.spec()
        with pytest.raises(ValueError, match="price"):
            ReplaySpec(
                source=spec.source,
                sizes_mb=spec.sizes_mb,
                update_periods=spec.update_periods,
                capacity_mb=spec.capacity_mb,
                l_max=spec.l_max,
                hit_latency_s=spec.hit_latency_s,
                miss_latency_s=spec.miss_latency_s,
                price=spec.price[:-1],
                eta2=spec.eta2,
                backhaul_rate=spec.backhaul_rate,
            )


class TestReplayInvariants:
    @pytest.fixture(scope="class")
    def reports(self, engine):
        return {r.policy: r for r in engine.compare(["mfg", "lru", "random"])}

    def test_hits_plus_misses_cover_requests(self, reports):
        for report in reports.values():
            assert report.requests > 0
            assert report.hits + report.misses == report.requests
            for stats in report.per_edp:
                assert stats.hits + stats.misses == stats.requests

    def test_same_requests_under_every_policy(self, reports):
        """Policy draws must not perturb the shared request trace."""
        totals = {name: r.requests for name, r in reports.items()}
        assert len(set(totals.values())) == 1, totals
        per_edp = {
            name: [s.requests for s in r.per_edp] for name, r in reports.items()
        }
        assert per_edp["mfg"] == per_edp["lru"] == per_edp["random"]

    def test_replay_reproducible(self, engine, reports):
        again = engine.replay("lru")
        assert again.summary() == reports["lru"].summary()


class TestBackendDeterminism:
    @pytest.fixture(scope="class")
    def runs(self, workload):
        out = {}
        for name, factory in BACKENDS.items():
            buffer = io.StringIO()
            telemetry = SolverTelemetry.to_jsonl(buffer)
            engine = ServingEngine(
                workload,
                n_edps=6,
                n_slots=12,
                seed=9,
                shards=3,
                executor=factory(),
                telemetry=telemetry,
            )
            reports = engine.compare(["mfg", "lfu"])
            telemetry.close()
            out[name] = (
                [r.summary() for r in reports],
                normalised_events(buffer),
            )
        return out

    def test_reports_bit_identical(self, runs):
        serial, _ = runs["serial"]
        parallel, _ = runs["process"]
        assert serial == parallel

    def test_telemetry_streams_identical(self, runs):
        _, serial_events = runs["serial"]
        _, parallel_events = runs["process"]
        assert serial_events == parallel_events
        kinds = {e["ev"] for e in serial_events}
        assert "serve_shard" in kinds
        assert "serving_report" in kinds

    def test_shard_count_never_changes_results(self, workload):
        summaries = []
        for shards in (1, 2, 5):
            engine = ServingEngine(
                workload, n_edps=5, n_slots=10, seed=4, shards=shards
            )
            summaries.append(engine.replay("lru").summary())
        assert summaries[0] == summaries[1] == summaries[2]

    def test_shard_function_matches_engine(self, engine):
        """replay_shard is the same computation the engine runs."""
        report = engine.replay("lfu")
        spec = engine.spec()
        policy = engine.build_policy("lfu")
        stats = replay_shard(spec, policy, tuple(range(engine.n_edps)))
        assert [s.requests for s in stats] == [
            s.requests for s in report.per_edp
        ]
        assert [s.hits for s in stats] == [s.hits for s in report.per_edp]


class TestPolicyQuality:
    """Policy ordering at a contended scale (16 EDPs, 8 contents).

    Sparse replays barely exercise eviction or refresh, so the
    acceptance-criteria comparisons run at the density where cache
    pressure is real (~30k requests).
    """

    @pytest.fixture(scope="class")
    def contended(self):
        workload = video_marketplace(n_contents=8, seed=11)
        engine = ServingEngine(
            workload, n_edps=16, n_slots=20, rate_per_edp=100.0, seed=0
        )
        return {
            r.policy: r for r in engine.compare(["mfg", "lfu", "random"])
        }

    def test_mfg_beats_random_replacement(self, contended):
        assert contended["mfg"].hit_ratio > contended["random"].hit_ratio

    def test_mfg_keeps_copies_fresh(self, contended):
        """The refresh schedule holds staleness violations down."""
        assert (
            contended["mfg"].staleness_violation_rate
            < contended["lfu"].staleness_violation_rate
        )
        assert contended["mfg"].refreshes > 0


class TestEngineValidation:
    def test_rejects_empty_population(self, workload):
        with pytest.raises(ValueError, match="EDP"):
            ServingEngine(workload, n_edps=0)

    def test_rejects_bad_capacity_fraction(self, workload):
        with pytest.raises(ValueError, match="capacity_fraction"):
            ServingEngine(workload, n_edps=2, capacity_fraction=0.0)

    def test_rejects_tiny_capacity(self, workload):
        with pytest.raises(ValueError, match="holds no content"):
            ServingEngine(workload, n_edps=2, capacity_mb=1e-6)

    def test_rejects_bad_shards(self, workload):
        with pytest.raises(ValueError, match="shards"):
            ServingEngine(workload, n_edps=2, shards=0)

    def test_rejects_unknown_policy(self, engine):
        with pytest.raises(ValueError, match="unknown serving policy"):
            engine.replay("fifo")


class TestLiveStatusIntegration:
    """Replay feeds the live status file's serving views exactly."""

    def test_status_totals_match_report(self, workload, tmp_path):
        from repro.obs import LiveStatusWriter, read_status

        tele = SolverTelemetry.to_jsonl(io.StringIO())
        tele.set_live(LiveStatusWriter(tmp_path / "status.json", every=1))
        engine = ServingEngine(
            workload, n_edps=6, n_slots=12, seed=9, shards=3, telemetry=tele
        )
        report = engine.replay("lru")
        tele.close()
        status = read_status(tmp_path / "status.json")
        assert status["state"] == "done"
        assert status["requests"]["total"] == report.requests
        assert status["requests"]["hits"] == report.hits
        # hit_ratio is rounded to 6 decimals in the status file.
        assert status["requests"]["hit_ratio"] == pytest.approx(
            report.hit_ratio, abs=1e-6
        )
        # The latency sketch approximates the per-shard batch means:
        # its mean must land near the report's mean request latency.
        assert status["latency_s"]["approx"] is True
        assert status["latency_s"]["mean"] == pytest.approx(
            report.mean_latency_s, rel=0.25
        )
        assert status["phase"].startswith("serve:replay:lru")
