"""Tests for the serving policies."""

import numpy as np
import pytest

from repro.serve import (
    EdgeCache,
    LFUPolicy,
    LRUPolicy,
    MFGPolicyAdapter,
    MostPopularPolicy,
    POLICY_NAMES,
    RandomEvictionPolicy,
    make_policy,
)


def filled_cache(times=(0.1, 0.3, 0.2)):
    """Three 100 MB copies with controllable last-used times."""
    cache = EdgeCache(capacity_mb=400.0)
    for k, t in enumerate(times):
        entry = cache.store(k, 100.0, t=0.0)
        entry.last_used = t
    return cache


class TestClassicalEviction:
    def test_lru_victim(self):
        cache = filled_cache(times=(0.1, 0.3, 0.2))
        assert LRUPolicy().victim(0, cache, None) == 0

    def test_lru_tie_breaks_by_content(self):
        cache = filled_cache(times=(0.2, 0.2, 0.5))
        assert LRUPolicy().victim(0, cache, None) == 0

    def test_lfu_victim(self):
        cache = filled_cache()
        cache.lookup(0).hits = 5
        cache.lookup(1).hits = 1
        cache.lookup(2).hits = 3
        assert LFUPolicy().victim(0, cache, None) == 1

    def test_random_victim_follows_rng(self):
        cache = filled_cache()
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        picks1 = [RandomEvictionPolicy().victim(0, cache, rng1) for _ in range(10)]
        picks2 = [RandomEvictionPolicy().victim(0, cache, rng2) for _ in range(10)]
        assert picks1 == picks2
        assert set(picks1) <= {0, 1, 2}

    def test_default_admission_is_open(self):
        cache = filled_cache()
        assert LRUPolicy().admit(0, 9, 1, cache, None)
        assert not LRUPolicy().refresh_due(0, 0, age=99.0)


class TestMostPopular:
    def test_placement_greedy_by_popularity(self):
        policy = MostPopularPolicy(
            sizes_mb=(100.0, 100.0, 100.0, 100.0),
            popularity=(0.1, 0.4, 0.3, 0.2),
        )
        assert list(policy.placement(250.0)) == [1, 2]

    def test_placement_skips_oversized(self):
        policy = MostPopularPolicy(
            sizes_mb=(300.0, 100.0), popularity=(0.9, 0.1)
        )
        assert list(policy.placement(250.0)) == [1]

    def test_warm_fills_cache_and_reports_bytes(self):
        policy = MostPopularPolicy(
            sizes_mb=(100.0, 100.0, 100.0), popularity=(0.2, 0.5, 0.3)
        )
        cache = EdgeCache(capacity_mb=250.0)
        loaded = policy.warm(cache, t=0.0)
        assert loaded == pytest.approx(200.0)
        assert 1 in cache and 2 in cache and 0 not in cache

    def test_static_placement_never_admits(self):
        policy = MostPopularPolicy(sizes_mb=(100.0,), popularity=(1.0,))
        assert not policy.admit(0, 0, 5, EdgeCache(capacity_mb=100.0), None)
        with pytest.raises(RuntimeError, match="static"):
            policy.victim(0, EdgeCache(capacity_mb=100.0), None)

    def test_validation(self):
        with pytest.raises(ValueError, match="sizes"):
            MostPopularPolicy(sizes_mb=(1.0,), popularity=(0.5, 0.5))


def make_adapter(rate, score, periods=None, sizes=None):
    rate = np.asarray(rate, dtype=float)
    k = rate.shape[1]
    return MFGPolicyAdapter(
        rate=rate,
        score=np.asarray(score, dtype=float),
        update_periods=periods if periods is not None else (1.0,) * k,
        sizes_mb=sizes if sizes is not None else (100.0,) * k,
    )


class TestMFGAdapter:
    def test_burst_always_admitted(self):
        adapter = make_adapter([[0.0, 0.0]], [[0.5, 0.5]])
        cache = EdgeCache(capacity_mb=100.0)
        assert adapter.admit(0, 0, 2, cache, np.random.default_rng(0))

    def test_singleton_follows_rate(self):
        always = make_adapter([[1.0]], [[0.5]])
        never = make_adapter([[0.0]], [[0.5]])
        cache = EdgeCache(capacity_mb=100.0)
        rng = np.random.default_rng(0)
        assert always.admit(0, 0, 1, cache, rng)
        assert not never.admit(0, 0, 1, cache, rng)

    def test_singleton_score_guard(self):
        # Full cache; incoming content 1 scores below the cached copy.
        adapter = make_adapter([[1.0, 1.0]], [[0.8, 0.2]])
        cache = EdgeCache(capacity_mb=100.0)
        cache.store(0, 100.0, t=0.0)
        rng = np.random.default_rng(0)
        assert not adapter.admit(0, 1, 1, cache, rng)
        # Swap the scores and the same request is admitted.
        flipped = make_adapter([[1.0, 1.0]], [[0.2, 0.8]])
        assert flipped.admit(0, 1, 1, cache, rng)

    def test_victim_is_lowest_score(self):
        adapter = make_adapter([[1.0, 1.0, 1.0]], [[0.5, 0.1, 0.9]])
        cache = EdgeCache(capacity_mb=400.0)
        for k in range(3):
            cache.store(k, 100.0, t=0.0)
        assert adapter.victim(0, cache, None) == 1

    def test_refresh_schedule_tightens_with_rate(self):
        eager = make_adapter([[0.9]], [[0.5]], periods=(1.0,))
        lazy = make_adapter([[0.1]], [[0.5]], periods=(1.0,))
        assert eager.refresh_due(0, 0, age=0.2)       # slack 0.1
        assert not lazy.refresh_due(0, 0, age=0.2)    # slack 0.9

    def test_validation(self):
        with pytest.raises(ValueError, match="matching"):
            make_adapter([[0.5]], [[0.5, 0.5]])
        with pytest.raises(ValueError, match="update periods"):
            make_adapter([[0.5, 0.5]], [[0.5, 0.5]], periods=(1.0,))
        with pytest.raises(ValueError, match="sizes"):
            make_adapter([[0.5, 0.5]], [[0.5, 0.5]], sizes=(100.0,))
        with pytest.raises(ValueError, match="0, 1"):
            make_adapter([[1.7]], [[0.5]])


class TestFromEquilibria:
    def test_tables_cover_all_slots_and_contents(self, engine, equilibria):
        slot_times = engine.source.slot_times()
        adapter = MFGPolicyAdapter.from_equilibria(
            equilibria,
            sizes_mb=engine.sizes_mb,
            update_periods=engine.update_periods,
            slot_times=slot_times,
            horizon=engine.source.horizon,
        )
        k = len(engine.sizes_mb)
        assert adapter.rate.shape == (len(slot_times), k)
        assert adapter.score.shape == (len(slot_times), k)
        assert np.all(adapter.rate >= 0.0) and np.all(adapter.rate <= 1.0)
        assert np.all(adapter.score >= 0.0) and np.all(adapter.score <= 1.0)

    def test_missing_equilibrium_raises(self, engine, equilibria):
        partial = {k: v for k, v in equilibria.items() if k != 1}
        with pytest.raises(ValueError, match="contents \\[1\\]"):
            MFGPolicyAdapter.from_equilibria(
                partial,
                sizes_mb=engine.sizes_mb,
                update_periods=engine.update_periods,
                slot_times=engine.source.slot_times(),
            )


class TestFactory:
    def test_names_resolve(self, engine, equilibria):
        for name in POLICY_NAMES:
            kwargs = {}
            if name == "mfg":
                kwargs = dict(
                    equilibria=equilibria,
                    update_periods=engine.update_periods,
                    slot_times=engine.source.slot_times(),
                    horizon=engine.source.horizon,
                )
            policy = make_policy(
                name,
                sizes_mb=engine.sizes_mb,
                popularity=engine.source.popularity,
                **kwargs,
            )
            assert policy.name == name

    def test_aliases(self):
        assert make_policy("rr", sizes_mb=(1.0,), popularity=(1.0,)).name == "random"
        assert (
            make_policy("MPC", sizes_mb=(1.0,), popularity=(1.0,)).name
            == "most-popular"
        )

    def test_mfg_requires_equilibria(self):
        with pytest.raises(ValueError, match="equilibria"):
            make_policy("mfg", sizes_mb=(1.0,), popularity=(1.0,))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown serving policy"):
            make_policy("fifo", sizes_mb=(1.0,), popularity=(1.0,))
