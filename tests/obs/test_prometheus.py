"""Tests for the Prometheus text exposition (`repro export-metrics`)."""

import io

import pytest

from repro.obs import SolverTelemetry, load_run, render_prometheus
from repro.obs.prometheus import _metric_name


def summary_of(build):
    buffer = io.StringIO()
    tele = SolverTelemetry.to_jsonl(buffer)
    build(tele)
    tele.close()
    buffer.seek(0)
    return load_run(buffer)


class TestNameSanitisation:
    def test_dots_and_dashes_become_underscores(self):
        assert _metric_name("serve.edp-latency s") == "repro_serve_edp_latency_s"

    def test_leading_digit_guarded(self):
        assert _metric_name("9lives") == "repro__9lives"

    def test_empty_name_fallback(self):
        assert _metric_name("...") == "repro_unnamed"


class TestExposition:
    def test_counter_gets_total_suffix(self):
        text = render_prometheus(summary_of(lambda t: t.inc("solver.sweeps", 3)))
        assert "# TYPE repro_solver_sweeps_total counter" in text
        assert "repro_solver_sweeps_total 3" in text

    def test_gauge_rendered_plain(self):
        text = render_prometheus(summary_of(lambda t: t.gauge("residual", 0.5)))
        assert "# TYPE repro_residual gauge" in text
        assert "repro_residual 0.5" in text

    def test_histogram_rendered_as_summary(self):
        def build(tele):
            for v in (1.0, 2.0, 3.0, 4.0):
                tele.observe("stage", v)

        text = render_prometheus(summary_of(build))
        assert "# TYPE repro_stage summary" in text
        assert 'repro_stage{quantile="0.5"}' in text
        assert 'repro_stage{quantile="0.99"}' in text
        assert "repro_stage_sum 10" in text
        assert "repro_stage_count 4" in text

    def test_promoted_histogram_flagged_in_help(self, monkeypatch):
        import repro.obs.metrics as metrics_mod

        monkeypatch.setattr(metrics_mod, "DEFAULT_EXACT_CAP", 4)

        def build(tele):
            for i in range(10):
                tele.observe("stage", float(i + 1))

        text = render_prometheus(summary_of(build))
        assert "sketch-approximated quantiles" in text

    def test_event_derived_families_for_inflight_run(self):
        # A run killed before close() has no final metrics snapshot;
        # the event-derived families must still expose something.
        buffer = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buffer)
        tele.event("iteration", iteration=1, policy_change=0.1)
        tele.diag("hjb.residual", "warning", value=2.0, message="big")
        # Deliberately NOT closed: simulate an in-flight run.
        buffer.seek(0)
        text = render_prometheus(load_run(buffer))
        assert 'repro_events_total{kind="iteration"} 1' in text
        assert 'repro_diag_findings_total{severity="warning"} 1' in text

    def test_serving_report_families(self):
        def build(tele):
            tele.event(
                "serving_report", policy="mfg", requests=1000, hit_ratio=0.8,
                staleness_violation_rate=0.01, backhaul_mb=12.5,
            )

        text = render_prometheus(summary_of(build))
        assert 'repro_serving_requests_total{policy="mfg"} 1000' in text
        assert 'repro_serving_hit_ratio{policy="mfg"} 0.8' in text
        assert 'repro_serving_backhaul_mb{policy="mfg"} 12.5' in text

    def test_registry_event_family_collision_resolved(self):
        # `diag.findings` (registry counter) sanitises to the same
        # family as the event-derived severity breakdown; the labelled
        # family must win and appear exactly once.
        text = render_prometheus(
            summary_of(lambda t: t.diag("x", "info", value=1.0, message="m"))
        )
        assert text.count("# TYPE repro_diag_findings_total counter") == 1
        assert 'repro_diag_findings_total{severity="info"} 1' in text
        lines = [
            l for l in text.splitlines()
            if l.startswith("repro_diag_findings_total ")
        ]
        assert lines == []  # no unlabelled duplicate sample

    def test_output_deterministic(self):
        def build(tele):
            tele.inc("b.counter")
            tele.gauge("a.gauge", 1.0)
            tele.observe("c.hist", 2.0)

        assert render_prometheus(summary_of(build)) == render_prometheus(
            summary_of(build)
        )

    def test_label_escaping(self):
        def build(tele):
            tele.event("serving_report", policy='l"r\nu', requests=1)

        text = render_prometheus(summary_of(build))
        assert r'policy="l\"r\nu"' in text
