"""Unit tests for BENCH trajectories and trend analytics (repro.obs.trend)."""

import json
from pathlib import Path

import pytest

from repro.obs.trend import (
    BENCH_SCHEMA_VERSION,
    BenchFormatError,
    TrendSeries,
    append_bench_entry,
    bench_series,
    find_regressions,
    latest_entry_metrics,
    load_bench_trajectory,
    metric_direction,
    registry_series,
    render_trend,
    sparkline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

COMMITTED_BENCH_FILES = ("BENCH_serve.json", "BENCH_net.json", "BENCH_batch.json")


def write_trajectory(path, metric_values, metric="serial_requests_per_s"):
    doc = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": "serve",
        "entries": [
            {"git_sha": None, "dirty": None, "recorded_at": None,
             "metrics": {metric: v}}
            for v in metric_values
        ],
    }
    path.write_text(json.dumps(doc))
    return str(path)


class TestLoader:
    @pytest.mark.parametrize("name", COMMITTED_BENCH_FILES)
    def test_committed_bench_files_round_trip(self, name):
        path = REPO_ROOT / name
        doc = load_bench_trajectory(str(path))
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert doc["bench"] == name[len("BENCH_"):-len(".json")]
        assert doc["entries"], f"{name} should carry at least one entry"
        metrics = latest_entry_metrics(doc)
        assert metrics and all(isinstance(k, str) for k in metrics)
        # And the loaded document survives the loader unchanged.
        assert load_bench_trajectory(str(path)) == doc

    def test_legacy_flat_dict_migrates(self, tmp_path):
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps({"serial_s": 1.5, "speedup": 4.0}))
        doc = load_bench_trajectory(str(path))
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert doc["bench"] == "legacy"
        assert len(doc["entries"]) == 1
        entry = doc["entries"][0]
        assert entry["git_sha"] is None and entry["recorded_at"] is None
        assert entry["metrics"] == {"serial_s": 1.5, "speedup": 4.0}

    @pytest.mark.parametrize("payload", [
        "",                                  # unreadable
        "not json",                          # unreadable
        "[1, 2]",                            # not an object
        "{}",                                # empty: neither shape
        '{"schema": 99, "entries": [{}]}',   # future schema
        '{"schema": 1, "entries": []}',      # empty trajectory
        '{"schema": 1, "entries": [42]}',    # entry not an object
        '{"schema": 1, "entries": [{"metrics": 3}]}',  # metrics not a dict
    ])
    def test_malformed_raises_bench_format_error(self, tmp_path, payload):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(payload)
        with pytest.raises(BenchFormatError):
            load_bench_trajectory(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchFormatError):
            load_bench_trajectory(str(tmp_path / "nope.json"))


class TestAppend:
    def test_creates_then_appends(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        doc = append_bench_entry(path, {"serial_s": 1.0}, bench="x")
        assert len(doc["entries"]) == 1
        doc = append_bench_entry(path, {"serial_s": 1.1})
        assert len(doc["entries"]) == 2
        on_disk = load_bench_trajectory(path)
        assert on_disk == doc
        assert [e["metrics"]["serial_s"] for e in on_disk["entries"]] == [1.0, 1.1]
        assert on_disk["entries"][-1]["recorded_at"] is not None

    def test_append_migrates_legacy_snapshot(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"serial_s": 2.0}))
        doc = append_bench_entry(str(path), {"serial_s": 1.9})
        assert len(doc["entries"]) == 2
        assert doc["entries"][0]["metrics"] == {"serial_s": 2.0}


class TestDirections:
    def test_per_s_wins_over_the_s_suffix(self):
        # "serial_requests_per_s" contains "_s" but must gate on drops.
        assert metric_direction("serial_requests_per_s") == "higher"
        assert metric_direction("hit_ratio") == "higher"
        assert metric_direction("speedup") == "higher"

    def test_lower_is_better_names(self):
        assert metric_direction("serial_s") == "lower"
        assert metric_direction("scalar_s_per_content") == "lower"
        assert metric_direction("mean_staleness") == "lower"
        assert metric_direction("rejection_rate") == "lower"

    def test_unclassified_never_gate(self):
        assert metric_direction("n_contents") is None
        assert metric_direction("requests") is None


class TestRegression:
    def test_throughput_drop_regresses(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_serve.json",
                                [100.0, 100.0, 90.0])
        series = bench_series(load_bench_trajectory(path), "BENCH_serve.json")
        assert find_regressions(series, threshold=0.05)
        assert not find_regressions(series, threshold=0.2)

    def test_flat_history_passes(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_serve.json",
                                [100.0, 100.0, 100.0])
        series = bench_series(load_bench_trajectory(path), "BENCH_serve.json")
        assert find_regressions(series, threshold=0.05) == []

    def test_lower_is_better_increase_regresses(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_b.json",
                                [1.0, 1.0, 1.2], metric="serial_s")
        series = bench_series(load_bench_trajectory(path), "b")
        assert find_regressions(series, threshold=0.05)

    def test_improvement_never_flags(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_b.json",
                                [100.0, 100.0, 150.0])
        series = bench_series(load_bench_trajectory(path), "b")
        assert find_regressions(series, threshold=0.05) == []

    def test_single_entry_cannot_gate(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_b.json", [100.0])
        series = bench_series(load_bench_trajectory(path), "b")
        assert series[0].delta() is None
        assert find_regressions(series, threshold=0.0) == []

    def test_ungated_metric_never_regresses(self):
        series = TrendSeries(source="s", metric="n_contents",
                             values=[10.0, 1.0], gate=False)
        assert not series.regressed(0.05)


class TestRegistrySeries:
    def manifest(self, seq, command="solve", cfg="aaaa1111bbbb",
                 status="ok", **metrics):
        return {"seq": seq, "command": command, "config_hash": cfg,
                "status": status, "metrics": metrics}

    def test_groups_by_command_and_config_hash(self):
        manifests = [
            self.manifest(1, exploitability=1e-3),
            self.manifest(2, exploitability=2e-3),
            self.manifest(3, cfg="cccc2222dddd", exploitability=5e-3),
        ]
        series = registry_series(manifests)
        by_source = {s.source: s for s in series}
        assert set(by_source) == {"solve[aaaa1111]", "solve[cccc2222]"}
        assert by_source["solve[aaaa1111]"].values == [1e-3, 2e-3]

    def test_registry_series_never_gate(self):
        manifests = [self.manifest(i, requests_per_s=v)
                     for i, v in enumerate([100.0, 100.0, 10.0], start=1)]
        series = registry_series(manifests)
        assert all(not s.gate for s in series)
        assert find_regressions(series, threshold=0.05) == []

    def test_failed_runs_are_excluded(self):
        manifests = [
            self.manifest(1, exploitability=1e-3),
            self.manifest(2, status="failed", exploitability=9.0),
        ]
        (series,) = registry_series(manifests)
        assert series.values == [1e-3]


class TestRendering:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▄▄▄"
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_marks_regression(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_serve.json",
                                [100.0, 100.0, 90.0])
        series = bench_series(load_bench_trajectory(path), "BENCH_serve.json")
        text = render_trend(series, threshold=0.05)
        assert "REGRESSED" in text
        assert "REGRESSIONS (1):" in text
        assert "gate ±5%" in text

    def test_render_clean_history(self, tmp_path):
        path = write_trajectory(tmp_path / "BENCH_serve.json",
                                [100.0, 101.0])
        series = bench_series(load_bench_trajectory(path), "BENCH_serve.json")
        text = render_trend(series, threshold=0.05)
        assert "no trend regressions beyond thresholds" in text
