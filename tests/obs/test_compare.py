"""Tests for the cross-run comparator (``repro compare``)."""

import pytest

from repro.obs.compare import (
    Delta,
    SPAN_NOISE_FLOOR_S,
    compare_bench,
    compare_runs,
)
from repro.obs.report import RunSummary


def summary(span_totals=None, metrics=None, diagnostics=None):
    return RunSummary(
        events=[],
        span_totals=dict(span_totals or {}),
        metrics=dict(metrics or {}),
        diagnostics=list(diagnostics or []),
    )


class TestSpanComparison:
    def test_injected_20pc_regression_is_flagged(self):
        baseline = summary(span_totals={"solve/iteration/hjb": (10, 1.00)})
        candidate = summary(span_totals={"solve/iteration/hjb": (10, 1.25)})
        result = compare_runs(baseline, candidate, span_threshold=0.2)
        assert result.has_regressions
        (finding,) = result.regressions
        assert "solve/iteration/hjb" in finding
        assert "+25.0%" in finding

    def test_growth_below_threshold_is_not_a_regression(self):
        baseline = summary(span_totals={"solve": (1, 1.00)})
        candidate = summary(span_totals={"solve": (1, 1.15)})
        result = compare_runs(baseline, candidate, span_threshold=0.2)
        assert not result.has_regressions

    def test_speedup_is_never_a_regression(self):
        baseline = summary(span_totals={"solve": (1, 2.0)})
        candidate = summary(span_totals={"solve": (1, 1.0)})
        assert not compare_runs(baseline, candidate).has_regressions

    def test_noise_floor_suppresses_tiny_spans(self):
        tiny = SPAN_NOISE_FLOOR_S / 2
        baseline = summary(span_totals={"solve/mean_field": (1, tiny)})
        candidate = summary(span_totals={"solve/mean_field": (1, tiny * 10)})
        assert not compare_runs(baseline, candidate).has_regressions

    def test_new_and_vanished_spans_reported_not_regressed(self):
        baseline = summary(span_totals={"old": (1, 1.0)})
        candidate = summary(span_totals={"new": (1, 1.0)})
        result = compare_runs(baseline, candidate)
        names = {d.name: d for d in result.span_deltas}
        assert names["old"].candidate is None
        assert names["new"].baseline is None
        assert not result.has_regressions


class TestDiagComparison:
    def test_new_errors_regress(self):
        baseline = summary()
        candidate = summary(diagnostics=[
            {"ev": "diag.fpk.mass_drift", "severity": "error"},
        ])
        result = compare_runs(baseline, candidate)
        assert result.has_regressions
        assert any("error findings went 0 -> 1" in r
                   for r in result.regressions)

    def test_new_warnings_regress_but_info_does_not(self):
        baseline = summary()
        candidate = summary(diagnostics=[
            {"ev": "diag.hjb.residual", "severity": "warning"},
            {"ev": "diag.density.health", "severity": "info"},
            {"ev": "diag.density.health", "severity": "info"},
        ])
        result = compare_runs(baseline, candidate)
        assert len(result.regressions) == 1
        assert "warning" in result.regressions[0]

    def test_fixing_errors_is_not_a_regression(self):
        baseline = summary(diagnostics=[
            {"ev": "diag.fpk.mass_drift", "severity": "error"},
        ])
        candidate = summary()
        assert not compare_runs(baseline, candidate).has_regressions


class TestMetricComparison:
    def test_metric_changes_reported_but_never_regress(self):
        baseline = summary(metrics={
            "solver.iterations": {"kind": "counter", "value": 10},
        })
        candidate = summary(metrics={
            "solver.iterations": {"kind": "counter", "value": 30},
        })
        result = compare_runs(baseline, candidate)
        assert not result.has_regressions
        (delta,) = result.metric_deltas
        assert delta.rel_change == pytest.approx(2.0)

    def test_histograms_compare_by_mean(self):
        baseline = summary(metrics={
            "solver.hjb_seconds": {"kind": "histogram", "count": 5,
                                   "mean": 0.010},
        })
        candidate = summary(metrics={
            "solver.hjb_seconds": {"kind": "histogram", "count": 5,
                                   "mean": 0.030},
        })
        result = compare_runs(baseline, candidate)
        (delta,) = result.metric_deltas
        assert delta.baseline == pytest.approx(0.010)
        assert delta.candidate == pytest.approx(0.030)


class TestBenchComparison:
    def test_timing_leaf_regression_flagged(self):
        baseline = {"table2": {"solve_seconds": 1.0, "rows": 5}}
        candidate = {"table2": {"solve_seconds": 1.5, "rows": 5}}
        result = compare_bench(baseline, candidate, threshold=0.2)
        assert result.has_regressions
        assert "table2.solve_seconds" in result.regressions[0]

    def test_non_timing_leaf_never_regresses(self):
        baseline = {"throughput": 100.0}
        candidate = {"throughput": 10.0}
        result = compare_bench(baseline, candidate)
        assert not result.has_regressions
        # ... but the large change is still reported.
        assert any(d.name == "throughput" for d in result.bench_deltas)

    def test_nested_lists_flatten_by_index(self):
        baseline = {"runs": [{"wall_s": 1.0}, {"wall_s": 2.0}]}
        candidate = {"runs": [{"wall_s": 1.0}, {"wall_s": 3.0}]}
        result = compare_bench(baseline, candidate, threshold=0.2)
        assert any("runs.1.wall_s" in r for r in result.regressions)

    def test_bools_are_not_compared_as_numbers(self):
        result = compare_bench({"converged": True}, {"converged": False})
        assert result.bench_deltas == []


class TestRendering:
    def test_render_mentions_regressions(self):
        baseline = summary(span_totals={"solve": (1, 1.0)})
        candidate = summary(span_totals={"solve": (1, 2.0)})
        text = compare_runs(baseline, candidate).render()
        assert "REGRESSIONS (1):" in text
        assert "span timings" in text

    def test_render_clean_comparison(self):
        text = compare_runs(summary(), summary()).render()
        assert "no regressions beyond thresholds" in text

    def test_delta_formatting(self):
        assert Delta("x", 1.0, 1.5).format_change() == "+50.0%"
        assert Delta("x", 0.0, 1.0).format_change() == "new"
        assert Delta("x", None, 1.0).format_change() == "-"
