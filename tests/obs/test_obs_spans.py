"""Tests for the nestable span timers."""

import pytest

from repro.obs import NULL_SPAN, SpanRecorder
from repro.obs.spans import NullSpan


class TestSpanRecorder:
    def test_nested_spans_build_a_tree(self):
        rec = SpanRecorder()
        with rec.span("solve"):
            for _ in range(3):
                with rec.span("iteration"):
                    with rec.span("hjb"):
                        pass
                    with rec.span("fpk"):
                        pass
        paths = {path: (count, total) for path, count, total in rec.rows()}
        assert set(paths) == {
            "solve",
            "solve/iteration",
            "solve/iteration/hjb",
            "solve/iteration/fpk",
        }
        assert paths["solve"][0] == 1
        assert paths["solve/iteration"][0] == 3
        assert paths["solve/iteration/hjb"][0] == 3

    def test_parent_time_covers_children(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        rows = {path: total for path, _, total in rec.rows()}
        assert rows["outer"] >= rows["outer/inner"]

    def test_same_name_different_parents_kept_separate(self):
        rec = SpanRecorder()
        with rec.span("a"):
            with rec.span("x"):
                pass
        with rec.span("b"):
            with rec.span("x"):
                pass
        paths = {path for path, _, _ in rec.rows()}
        assert "a/x" in paths and "b/x" in paths

    def test_duration_available_after_exit(self):
        rec = SpanRecorder()
        with rec.span("timed") as span:
            pass
        assert span.duration >= 0.0

    def test_current_path_tracks_stack(self):
        rec = SpanRecorder()
        assert rec.current_path == ""
        with rec.span("a"):
            with rec.span("b"):
                assert rec.current_path == "a/b"
            assert rec.current_path == "a"
        assert rec.current_path == ""

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="must not contain"):
            SpanRecorder().span("a/b")

    def test_render_mentions_counts(self):
        rec = SpanRecorder()
        with rec.span("stage"):
            pass
        text = rec.render()
        assert "stage" in text
        assert "x1" in text


class TestNullSpan:
    def test_is_reusable_and_free(self):
        assert isinstance(NULL_SPAN, NullSpan)
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert NULL_SPAN.duration == 0.0
        # Re-entrant: the singleton carries no state.
        with NULL_SPAN:
            with NULL_SPAN:
                pass
