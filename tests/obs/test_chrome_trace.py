"""Tests for the Chrome trace-event exporter."""

import io
import json

from repro.obs import SolverTelemetry
from repro.obs.trace import MAIN_LANE, build_chrome_trace, write_chrome_trace


def span(path, dur_s, lane=None, **extra):
    event = {"ev": "span", "path": path, "dur_s": dur_s, **extra}
    if lane is not None:
        event["lane"] = lane
    return event


def complete_events(doc):
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


def by_name(doc):
    return {e["args"]["path"]: e for e in complete_events(doc)}


class TestTimelineReconstruction:
    def test_child_nested_inside_parent(self):
        # Post-order close: child emits before parent.
        doc = build_chrome_trace([
            span("solve/hjb", 0.5),
            span("solve", 1.0),
        ])
        spans = by_name(doc)
        child, parent = spans["solve/hjb"], spans["solve"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_siblings_pack_sequentially(self):
        doc = build_chrome_trace([
            span("solve/hjb", 0.5),
            span("solve/fpk", 0.25),
            span("solve", 1.0),
        ])
        spans = by_name(doc)
        assert spans["solve/fpk"]["ts"] >= (
            spans["solve/hjb"]["ts"] + spans["solve/hjb"]["dur"]
        )

    def test_parent_covers_slow_children(self):
        # Children that together exceed the parent's own measured
        # duration stretch the parent's interval.
        doc = build_chrome_trace([
            span("solve/a", 2.0),
            span("solve/b", 3.0),
            span("solve", 1.0),
        ])
        spans = by_name(doc)
        parent_end = spans["solve"]["ts"] + spans["solve"]["dur"]
        for child in ("solve/a", "solve/b"):
            assert spans[child]["ts"] + spans[child]["dur"] <= parent_end + 1e-6

    def test_durations_are_microseconds(self):
        doc = build_chrome_trace([span("solve", 0.25)])
        (entry,) = complete_events(doc)
        assert entry["dur"] == 250_000

    def test_profiling_fields_forwarded_to_args(self):
        doc = build_chrome_trace([
            span("solve", 1.0, cpu_s=0.9, rss_kb=120.0, gc=3),
        ])
        (entry,) = complete_events(doc)
        assert entry["args"]["cpu_s"] == 0.9
        assert entry["args"]["rss_kb"] == 120.0
        assert entry["args"]["gc"] == 3


class TestLanes:
    def test_lanes_become_threads(self):
        doc = build_chrome_trace([
            span("content/solve", 1.0, lane="content:0"),
            span("content/solve", 1.0, lane="content:1"),
            span("epoch", 3.0),
        ])
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert names == {MAIN_LANE, "content:0", "content:1"}

    def test_main_lane_gets_tid_zero(self):
        doc = build_chrome_trace([
            span("work", 1.0, lane="content:0"),
            span("epoch", 1.0),
        ])
        meta = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert meta[MAIN_LANE] == 0

    def test_lanes_do_not_interleave(self):
        doc = build_chrome_trace([
            span("solve", 1.0, lane="content:0"),
            span("solve", 1.0, lane="content:1"),
        ])
        tids = {e["tid"] for e in complete_events(doc)}
        assert len(tids) == 2


class TestDiagMarkers:
    def test_diag_events_become_instants(self):
        doc = build_chrome_trace([
            span("solve/iteration", 1.0),
            {"ev": "diag.fpk.mass_drift", "severity": "warning",
             "value": 1e-6},
        ])
        (marker,) = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert marker["name"] == "diag.fpk.mass_drift [warning]"
        assert marker["args"]["value"] == 1e-6

    def test_non_span_non_diag_events_ignored(self):
        doc = build_chrome_trace([
            {"ev": "iteration", "iteration": 1},
            {"ev": "metrics", "metrics": {}},
        ])
        assert complete_events(doc) == []


class TestRealTelemetryExport:
    def test_recorded_stream_roundtrips_to_valid_json(self, tmp_path):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        with tele.span("solve"):
            with tele.span("iteration"):
                tele.diag("fpk.mass_drift", "info", value=1e-15)
        tele.close()
        buf.seek(0)
        events = [json.loads(line) for line in buf if line.strip()]

        out = tmp_path / "trace.json"
        stats = write_chrome_trace(events, out)
        assert stats == {"spans": 2, "diags": 1, "lanes": 1}

        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_schema_header_is_ignored(self):
        doc = build_chrome_trace([
            {"ev": "schema", "version": 2},
            span("solve", 1.0),
        ])
        assert len(complete_events(doc)) == 1
