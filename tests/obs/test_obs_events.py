"""Tests for the event sinks and JSONL round-trips."""

import io

import pytest

from repro.obs import (
    EVENT_SCHEMA_VERSION,
    JsonlSink,
    NULL_SINK,
    SolverTelemetry,
    read_events,
    read_events_tolerant,
)


def _without_header(events):
    """Drop the schema-header line JsonlSink writes first."""
    return [e for e in events if e.get("ev") != "schema"]


class TestJsonlSink:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "a", "x": 1})
            sink.emit({"ev": "b", "y": [1, 2]})
        events = read_events(path)
        assert events[0] == {"ev": "schema", "version": EVENT_SCHEMA_VERSION}
        assert events[1:] == [{"ev": "a", "x": 1}, {"ev": "b", "y": [1, 2]}]

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "keep"})
            sink.emit({"ev": "drop"})
            sink.emit({"ev": "keep"})
        assert len(read_events(path, kind="keep")) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "a"})
        assert _without_header(read_events(path)) == [{"ev": "a"}]

    def test_handle_target_left_open(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"ev": "a"})
        sink.close()
        assert not buf.closed
        buf.seek(0)
        assert _without_header(read_events(buf)) == [{"ev": "a"}]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"ev": "a"})

    def test_bad_json_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_events(path)


class TestNullSink:
    def test_noop(self):
        NULL_SINK.emit({"ev": "ignored"})
        NULL_SINK.flush()
        NULL_SINK.close()
        assert not NULL_SINK.enabled


class TestTelemetryEvents:
    def test_sequence_numbers_are_monotone(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        tele.event("a")
        tele.event("b")
        tele.close()
        buf.seek(0)
        events = _without_header(read_events(buf))
        assert [e["seq"] for e in events] == [1, 2]

    def test_header_first_and_tolerant_reader_counts_truncation(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        tele.event("a")
        tele.close()
        # Simulate a run killed mid-write: truncated final line.
        buf.write('{"ev": "b", "seq"')
        buf.seek(0)
        events, skipped = read_events_tolerant(buf)
        assert events[0] == {"ev": "schema", "version": EVENT_SCHEMA_VERSION}
        assert skipped == 1
        assert [e["ev"] for e in events] == ["schema", "a"]

    def test_no_wallclock_timestamps(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        with tele.span("stage"):
            pass
        tele.event("custom", value=3)
        tele.close()
        buf.seek(0)
        for event in read_events(buf):
            assert "time" not in event and "timestamp" not in event

    def test_disabled_telemetry_emits_nothing(self):
        tele = SolverTelemetry.null()
        tele.event("a")
        tele.inc("c")
        tele.gauge("g", 1.0)
        tele.observe("h", 1.0)
        with tele.span("s") as span:
            pass
        assert span.duration == 0.0
        assert len(tele.metrics) == 0
        tele.close()

    def test_metrics_snapshot_emitted_on_close(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        tele.inc("hits", 4)
        tele.close()
        buf.seek(0)
        snapshots = read_events(buf, kind="metrics")
        assert len(snapshots) == 1
        assert snapshots[0]["metrics"]["hits"]["value"] == 4.0

    def test_span_events_carry_full_path(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        tele.close()
        buf.seek(0)
        paths = [e["path"] for e in read_events(buf, kind="span")]
        # Children close (and emit) before their parents.
        assert paths == ["outer/inner", "outer"]
