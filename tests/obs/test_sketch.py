"""Tests for the constant-memory streaming aggregates.

:class:`QuantileSketch` must honour its documented relative-error
bound against nearest-rank order statistics, merge order-independently
(the property the deterministic telemetry merge relies on), and keep
its bucket count bounded by dynamic range, not observation count.
:class:`WindowedAggregator` must key windows by logical index and cap
retention.
"""

import math
import pickle

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    WindowedAggregator,
)


def exact_quantile(values, p):
    """The nearest-rank reference the sketch approximates."""
    return float(
        np.percentile(np.asarray(values, dtype=float), p, method="inverted_cdf")
    )


class TestQuantileSketchBasics:
    def test_counts_sum_min_max_mean(self):
        s = QuantileSketch()
        s.record_many([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.sum == pytest.approx(10.0)
        assert s.mean == pytest.approx(2.5)
        assert s.min == 1.0 and s.max == 4.0

    def test_endpoints_exact(self):
        s = QuantileSketch()
        s.record_many([3.7, 9.1, 0.02])
        assert s.quantile(0) == 0.02
        assert s.quantile(100) == 9.1

    def test_weighted_record(self):
        s = QuantileSketch()
        s.record(5.0, count=10)
        assert s.count == 10
        assert s.sum == pytest.approx(50.0)
        assert s.quantile(50) == pytest.approx(5.0, rel=DEFAULT_RELATIVE_ACCURACY)

    def test_relative_error_bound_log_spaced(self):
        values = [10.0 ** (k / 7.0) for k in range(-21, 22)]
        s = QuantileSketch()
        s.record_many(values)
        for p in (1, 10, 25, 50, 75, 90, 99):
            exact = exact_quantile(values, p)
            approx = s.quantile(p)
            assert abs(approx - exact) <= DEFAULT_RELATIVE_ACCURACY * abs(exact) + 1e-12

    def test_negatives_and_zeros_ordering(self):
        values = [-100.0, -1.0, 0.0, 0.0, 1.0, 100.0]
        s = QuantileSketch()
        s.record_many(values)
        # rank 0,1 -> negatives; ranks 2,3 -> the exact zeros; 4,5 -> positives
        assert s.quantile(10) == pytest.approx(-100.0, rel=0.01)
        assert s.quantile(50) == 0.0
        assert s.quantile(95) <= s.max

    def test_zero_only_stream(self):
        s = QuantileSketch()
        s.record(0.0, count=5)
        assert s.quantile(50) == 0.0
        assert s.n_bins == 1

    def test_rejects_bad_inputs(self):
        s = QuantileSketch()
        with pytest.raises(ValueError, match="finite"):
            s.record(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            s.record(float("inf"))
        with pytest.raises(ValueError, match="positive"):
            s.record(1.0, count=0)
        with pytest.raises(ValueError, match="no observations"):
            s.quantile(50)
        s.record(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            s.quantile(-1)
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            QuantileSketch(relative_accuracy=1.5)

    def test_memory_bounded_by_range_not_count(self):
        s = QuantileSketch()
        rng = np.random.default_rng(0)
        # 50k observations over ~4 decades: bins stay in the hundreds.
        for value in rng.lognormal(mean=0.0, sigma=2.0, size=50_000):
            s.record(float(value))
        assert s.count == 50_000
        assert s.n_bins < 2_000


class TestQuantileSketchMerge:
    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(3)
        values = [float(v) for v in rng.exponential(scale=2.0, size=999)]
        whole = QuantileSketch()
        whole.record_many(values)
        shards = [QuantileSketch() for _ in range(4)]
        for i, value in enumerate(values):
            shards[i % 4].record(value)
        merged = QuantileSketch()
        for shard in shards:
            merged.merge(shard)
        assert merged == whole
        assert merged.sum == pytest.approx(whole.sum)

    def test_merge_order_independent(self):
        rng = np.random.default_rng(4)
        shards = []
        for _ in range(5):
            s = QuantileSketch()
            s.record_many(float(v) for v in rng.normal(size=50))
            shards.append(s)
        forward, backward = QuantileSketch(), QuantileSketch()
        for s in shards:
            forward.merge(s)
        for s in reversed(shards):
            backward.merge(s)
        assert forward == backward

    def test_merge_accuracy_mismatch_raises(self):
        with pytest.raises(ValueError, match="accuracies"):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merge_empty_keeps_min_max(self):
        s = QuantileSketch()
        s.record_many([1.0, 2.0])
        s.merge(QuantileSketch())
        assert s.min == 1.0 and s.max == 2.0

    def test_copy_is_independent(self):
        s = QuantileSketch()
        s.record(1.0)
        clone = s.copy()
        clone.record(2.0)
        assert s.count == 1 and clone.count == 2

    def test_pickle_roundtrip(self):
        s = QuantileSketch()
        s.record_many([-3.0, 0.0, 0.5, 12.0])
        back = pickle.loads(pickle.dumps(s))
        assert back == s
        assert back.sum == pytest.approx(s.sum)
        assert back.quantile(50) == s.quantile(50)


class TestWindowedAggregator:
    def test_windows_key_by_index(self):
        agg = WindowedAggregator(window=10)
        agg.observe(0, requests=5)
        agg.observe(9, requests=5)
        agg.observe(10, requests=7)
        assert agg.keys() == [0, 1]
        assert agg.window_totals(0)["requests"] == 10.0
        assert agg.window_totals(1)["requests"] == 7.0

    def test_retention_evicts_oldest(self):
        agg = WindowedAggregator(window=1, retain=3)
        for i in range(6):
            agg.observe(i, n=1)
        assert agg.n_windows == 3
        assert agg.keys() == [3, 4, 5]

    def test_totals_and_ratio_over_recent(self):
        agg = WindowedAggregator(window=100)
        agg.observe(0, hits=10, requests=100)
        agg.observe(100, hits=90, requests=100)
        agg.observe(200, hits=50, requests=100)
        assert agg.totals()["requests"] == 300.0
        assert agg.ratio("hits", "requests", last=2) == pytest.approx(0.7)
        assert agg.ratio("hits", "requests") == pytest.approx(0.5)

    def test_ratio_without_denominator_is_nan(self):
        agg = WindowedAggregator(window=10)
        assert math.isnan(agg.ratio("hits", "requests"))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="window"):
            WindowedAggregator(window=0)
        with pytest.raises(ValueError, match="retain"):
            WindowedAggregator(window=1, retain=0)
        with pytest.raises(ValueError, match="non-negative"):
            WindowedAggregator(window=1).observe(-1, n=1)
