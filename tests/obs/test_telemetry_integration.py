"""Telemetry threaded through the solver pipeline.

The key regression: the JSONL event stream and the in-result
:class:`ConvergenceReport` are two views of the same fixed-point loop,
so iteration counts and residuals must agree exactly.
"""

import io

import numpy as np
import pytest

from repro.analysis import experiments
from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver
from repro.game.simulator import GameSimulator
from repro.obs import SolverTelemetry, load_run, read_events


@pytest.fixture()
def telemetry_buffer():
    return io.StringIO()


class TestSolveTelemetry:
    def test_iteration_events_agree_with_convergence_report(
        self, fast_config, telemetry_buffer
    ):
        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        result = BestResponseIterator(fast_config, telemetry=tele).solve()
        tele.close()
        telemetry_buffer.seek(0)
        summary = load_run(telemetry_buffer)

        report = result.report
        # Same number of iterations...
        assert len(summary.iterations) == report.n_iterations
        end = summary.final_solve()
        assert end["n_iterations"] == report.n_iterations
        assert end["converged"] == report.converged
        # ...and identical residuals, iteration by iteration.
        assert end["final_policy_change"] == pytest.approx(
            report.final_policy_change, rel=0, abs=0
        )
        for event, record in zip(summary.iterations, report.history):
            assert event["iteration"] == record.iteration
            assert event["policy_change"] == pytest.approx(record.policy_change)
            assert event["mean_field_change"] == pytest.approx(
                record.mean_field_change
            )
        # describe() and the event stream tell the same story.
        assert f"after {end['n_iterations']} iterations" in report.describe()

    def test_results_identical_with_and_without_telemetry(self, fast_config):
        plain = BestResponseIterator(fast_config).solve()
        tele = SolverTelemetry.to_jsonl(io.StringIO())
        observed = BestResponseIterator(fast_config, telemetry=tele).solve()
        tele.close()
        np.testing.assert_array_equal(plain.policy.table, observed.policy.table)
        np.testing.assert_array_equal(plain.density, observed.density)
        assert plain.report.n_iterations == observed.report.n_iterations
        assert plain.report.final_policy_change == observed.report.final_policy_change

    def test_stage_timings_recorded(self, fast_config, telemetry_buffer):
        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        BestResponseIterator(fast_config, telemetry=tele).solve()
        tele.close()
        telemetry_buffer.seek(0)
        summary = load_run(telemetry_buffer)
        assert "solve/iteration/hjb" in summary.span_totals
        assert "solve/iteration/fpk" in summary.span_totals
        assert "solve/iteration/mean_field" in summary.span_totals
        for event in summary.iterations:
            assert event["hjb_s"] > 0.0
            assert event["fpk_s"] > 0.0
        hist = summary.metrics["solver.hjb_seconds"]
        assert hist["count"] == len(summary.iterations)

    def test_solver_facade_threads_telemetry(self, fast_config, telemetry_buffer):
        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        MFGCPSolver(fast_config, telemetry=tele).solve()
        tele.close()
        telemetry_buffer.seek(0)
        assert read_events(telemetry_buffer, kind="solve_end")


class TestSimulatorTelemetry:
    def test_step_counters_and_scheme_counts(self, fast_config, telemetry_buffer):
        from repro.baselines.random_replacement import RandomReplacementScheme

        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        sim = GameSimulator(
            fast_config,
            [(RandomReplacementScheme(), 8)],
            rng=np.random.default_rng(0),
            telemetry=tele,
        )
        sim.run()
        tele.close()

        n_steps = fast_config.n_time_steps
        assert tele.counter_value("sim.steps") == n_steps + 1
        assert tele.counter_value("sim.edp_steps") == 8 * (n_steps + 1)
        # decide() is called once per step for the single group.
        assert tele.counter_value("scheme.RR.decide_calls") == n_steps + 1
        assert tele.counter_value("scheme.RR.edp_decisions") == 8 * (n_steps + 1)

        telemetry_buffer.seek(0)
        ends = read_events(telemetry_buffer, kind="sim_end")
        assert len(ends) == 1
        assert ends[0]["n_edps"] == 8

    def test_mfgcp_prepare_solve_lands_in_span_tree(
        self, fast_config, telemetry_buffer
    ):
        from repro.baselines.mfg_cp import MFGCPScheme

        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        sim = GameSimulator(
            fast_config,
            [(MFGCPScheme(), 5)],
            rng=np.random.default_rng(0),
            telemetry=tele,
        )
        sim.run()
        tele.close()
        telemetry_buffer.seek(0)
        summary = load_run(telemetry_buffer)
        assert "sim_prepare/prepare_equilibrium/solve" in summary.span_totals
        assert "sim_run" in summary.span_totals


class TestEpochTelemetry:
    def test_epoch_and_content_events(self, telemetry_buffer):
        from repro.content.catalog import ContentCatalog
        from repro.content.requests import RequestProcess

        cfg = MFGCPConfig.fast()
        catalog = ContentCatalog.uniform(3, size_mb=cfg.content_size)
        process = RequestProcess(
            n_contents=3, rate_per_edp=40.0, rng=np.random.default_rng(2)
        )
        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        results = MFGCPSolver(cfg, telemetry=tele).run_epochs(
            catalog, process, n_epochs=2, max_active_contents=1
        )
        tele.close()
        telemetry_buffer.seek(0)
        epochs = read_events(telemetry_buffer, kind="epoch")
        assert len(epochs) == 2
        telemetry_buffer.seek(0)
        solves = read_events(telemetry_buffer, kind="content_solve")
        assert len(solves) == sum(len(r.active_contents) for r in results)


class TestTable2Spans:
    def test_timings_positive_and_streamed(self, telemetry_buffer):
        tele = SolverTelemetry.to_jsonl(telemetry_buffer)
        rows = experiments.table2_computation_time(
            population_sizes=(5,),
            schemes=("RR",),
            config=MFGCPConfig.fast(),
            catalog_size=2,
            repeats=2,
            telemetry=tele,
        )
        tele.close()
        assert len(rows) == 1
        scheme, m, seconds = rows[0]
        assert scheme == "RR" and m == 5
        assert seconds > 0.0
        telemetry_buffer.seek(0)
        timing_events = read_events(telemetry_buffer, kind="table2_timing")
        assert timing_events[0]["seconds"] == pytest.approx(seconds)

    def test_default_path_needs_no_telemetry(self):
        rows = experiments.table2_computation_time(
            population_sizes=(4,),
            schemes=("RR",),
            config=MFGCPConfig.fast(),
            catalog_size=1,
            repeats=1,
        )
        assert rows[0][2] > 0.0
