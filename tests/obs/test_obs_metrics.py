"""Tests for the metric primitives and registry."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Counter("n").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0
        assert g.n_writes == 2

    def test_unwritten_is_nan(self):
        assert np.isnan(Gauge("g").value)


class TestHistogram:
    def test_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.record(float(v))
        assert h.count == 100
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_requires_observations(self):
        with pytest.raises(ValueError, match="no observations"):
            Histogram("h").percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram("h")
        h.record(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_snapshot_summary(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")

    def test_merge_combines_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").record(1.0)
        b.histogram("h").record(3.0)

        a.merge(b)
        assert a.counter("n").value == 5
        assert a.counter("only_b").value == 1
        assert a.gauge("g").value == 9.0  # other's write is newer
        assert a.histogram("h").count == 2

    def test_merge_unwritten_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(4.0)
        b.gauge("g")  # created, never written
        a.merge(b)
        assert a.gauge("g").value == 4.0

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError):
            a.merge(b)

    def test_snapshot_is_sorted_and_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2.0)
        reg.histogram("c").record(1.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["b"]["kind"] == "counter"
        json.dumps(snap)  # must not raise
