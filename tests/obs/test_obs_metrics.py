"""Tests for the metric primitives and registry."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    Counter,
    DEFAULT_EXACT_CAP,
    Gauge,
    Histogram,
    MetricsRegistry,
    SolverTelemetry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Counter("n").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0
        assert g.n_writes == 2

    def test_unwritten_is_nan(self):
        assert np.isnan(Gauge("g").value)


class TestHistogram:
    def test_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.record(float(v))
        assert h.count == 100
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_requires_observations(self):
        with pytest.raises(ValueError, match="no observations"):
            Histogram("h").percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram("h")
        h.record(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_snapshot_summary(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0


class TestHistogramPromotion:
    """Raw-sample retention is capped; overflow folds into a sketch."""

    def test_exact_until_cap(self):
        h = Histogram("h", exact_cap=10)
        for v in range(10):
            h.record(float(v))
        assert not h.is_approx
        assert "approx" not in h.snapshot()

    def test_promotes_past_cap_and_drops_raw_samples(self):
        h = Histogram("h", exact_cap=10)
        for v in range(1, 12):
            h.record(float(v))
        assert h.is_approx
        assert h.values == []  # raw list released on promotion
        assert h.count == 11
        snap = h.snapshot()
        assert snap["approx"] is True
        assert snap["n_bins"] > 0
        assert snap["p50"] == pytest.approx(6.0, rel=0.02)

    def test_default_cap_is_module_constant(self):
        assert Histogram("h").exact_cap == DEFAULT_EXACT_CAP

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Histogram("h", exact_cap=-1)

    def test_percentiles_stay_within_sketch_bound(self):
        h = Histogram("h", exact_cap=100)
        values = [10.0 ** (k / 50.0) for k in range(500)]
        for v in values:
            h.record(v)
        assert h.is_approx
        for p in (10, 50, 90, 99):
            exact = float(np.percentile(values, p, method="inverted_cdf"))
            assert abs(h.percentile(p) - exact) <= 0.01 * exact + 1e-12

    def test_merge_exact_into_sketch_and_back(self):
        # All three exact/sketch combinations must agree with the
        # sketch built from the union of observations.
        def hist(values, cap):
            h = Histogram("h", exact_cap=cap)
            for v in values:
                h.record(float(v))
            return h

        a_vals, b_vals = [1.0, 2.0, 3.0], [4.0, 5.0, 6.0, 7.0]
        cases = [
            (hist(a_vals, cap=2), hist(b_vals, cap=100)),  # sketch <- exact
            (hist(a_vals, cap=100), hist(b_vals, cap=2)),  # exact <- sketch
            (hist(a_vals, cap=3), hist(b_vals, cap=3)),    # exact overflow
        ]
        for a, b in cases:
            a.merge(b)
            assert a.is_approx
            assert a.count == 7
            assert a.total == pytest.approx(28.0)
            reference = hist(a_vals + b_vals, cap=0)
            assert a.sketch == reference.sketch

    def test_merge_exact_below_cap_stays_exact(self):
        a, b = Histogram("h", exact_cap=10), Histogram("h", exact_cap=10)
        a.record(1.0)
        b.record(2.0)
        a.merge(b)
        assert not a.is_approx
        assert a.values == [1.0, 2.0]

    def test_million_observations_flat_memory(self):
        # The acceptance bar: a 10^6-request replay must not grow the
        # histogram linearly.  Structure, not RSS: the raw list is
        # empty and the bucket count is bounded by dynamic range.
        h = Histogram("h")
        for i in range(1_000_000):
            h.record(0.001 * (i % 997 + 1))
        assert h.is_approx
        assert h.count == 1_000_000
        assert h.values == []
        assert h.sketch.n_bins < 1_000
        snap = h.snapshot()
        assert snap["approx"] is True
        assert snap["p50"] == pytest.approx(0.499, rel=0.02)


class TestPromotionDiagnostic:
    """Telemetry emits ``diag.metrics.sketch_promoted`` exactly once."""

    def _events(self, buffer):
        buffer.seek(0)
        return [json.loads(line) for line in buffer if line.strip()]

    def test_one_time_info_event(self, monkeypatch):
        import repro.obs.metrics as metrics_mod

        monkeypatch.setattr(metrics_mod, "DEFAULT_EXACT_CAP", 5)
        buffer = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buffer)
        for i in range(20):
            tele.observe("stage_ms", float(i + 1))
        tele.close()
        promoted = [
            e for e in self._events(buffer)
            if e.get("ev") == "diag.metrics.sketch_promoted"
        ]
        assert len(promoted) == 1
        assert promoted[0]["severity"] == "info"
        assert promoted[0]["metric"] == "stage_ms"
        assert promoted[0]["exact_cap"] == 5

    def test_no_event_below_cap(self):
        buffer = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buffer)
        for i in range(10):
            tele.observe("stage_ms", float(i + 1))
        tele.close()
        assert not [
            e for e in self._events(buffer)
            if e.get("ev") == "diag.metrics.sketch_promoted"
        ]


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")

    def test_merge_combines_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").record(1.0)
        b.histogram("h").record(3.0)

        a.merge(b)
        assert a.counter("n").value == 5
        assert a.counter("only_b").value == 1
        assert a.gauge("g").value == 9.0  # other's write is newer
        assert a.histogram("h").count == 2

    def test_merge_unwritten_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(4.0)
        b.gauge("g")  # created, never written
        a.merge(b)
        assert a.gauge("g").value == 4.0

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError):
            a.merge(b)

    def test_snapshot_is_sorted_and_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2.0)
        reg.histogram("c").record(1.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["b"]["kind"] == "counter"
        json.dumps(snap)  # must not raise
