"""Tests for the offline run summariser (``repro report`` internals)."""

import io

from repro.obs import SolverTelemetry, load_run
from repro.obs.report import (
    render_iteration_table,
    render_metrics,
    render_report,
    render_span_tree,
)


def _sample_run(tmp_path):
    """Write a small synthetic run and load it back."""
    path = tmp_path / "run.jsonl"
    tele = SolverTelemetry.to_jsonl(path)
    with tele.span("solve"):
        for i in range(1, 4):
            with tele.span("iteration"):
                with tele.span("hjb"):
                    pass
            tele.event(
                "iteration",
                iteration=i,
                policy_change=0.5 / i,
                mean_field_change=1.0 / i,
                hjb_s=0.01,
                fpk_s=0.02,
                mean_field_s=0.001,
            )
    tele.event(
        "solve_end", converged=True, n_iterations=3, final_policy_change=0.5 / 3
    )
    tele.inc("solver.iterations", 3)
    tele.close()
    return path


class TestLoadRun:
    def test_jsonl_roundtrip_aggregates(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        assert summary.n_events > 0
        assert len(summary.iterations) == 3
        assert summary.final_solve()["n_iterations"] == 3
        # Span events aggregate by path.
        count, total = summary.span_totals["solve/iteration"]
        assert count == 3
        assert total >= 0.0
        assert "solve/iteration/hjb" in summary.span_totals
        assert summary.metrics["solver.iterations"]["value"] == 3.0

    def test_load_from_handle(self, tmp_path):
        path = _sample_run(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            summary = load_run(handle)
        assert len(summary.iterations) == 3


class TestRendering:
    def test_span_tree_lists_paths(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_span_tree(summary)
        assert "solve" in text
        assert "iteration" in text
        assert "hjb" in text

    def test_iteration_table_has_rows_and_status(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_iteration_table(summary)
        assert "policy delta" in text
        assert "converged after 3 iterations" in text

    def test_iteration_table_always_shows_final_row(self, tmp_path):
        path = tmp_path / "long.jsonl"
        tele = SolverTelemetry.to_jsonl(path)
        for i in range(1, 101):
            tele.event("iteration", iteration=i, policy_change=1.0 / i,
                       mean_field_change=0.0)
        tele.close()
        text = render_iteration_table(load_run(path), max_rows=10)
        assert "100" in text.splitlines()[-1].split("|")[0]

    def test_metrics_table(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_metrics(summary)
        assert "solver.iterations" in text

    def test_full_report_handles_empty_run(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = render_report(load_run(path))
        assert "(no spans recorded)" in text
        assert "(no iteration events recorded)" in text
        assert "(no metrics recorded)" in text

    def test_full_report_combines_sections(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_report(summary)
        assert "span tree" in text
        assert "iteration convergence" in text
        assert "metrics" in text


class TestInMemoryTelemetry:
    def test_spans_recorded_without_sink(self):
        tele = SolverTelemetry.in_memory()
        with tele.span("work") as span:
            pass
        assert span.duration >= 0.0
        assert tele.spans.rows()[0][0] == "work"

    def test_report_from_stringio(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        tele.event("iteration", iteration=1, policy_change=0.1,
                   mean_field_change=0.2)
        tele.close()
        buf.seek(0)
        summary = load_run(buf)
        assert len(summary.iterations) == 1


class TestSketchBackedRendering:
    def test_span_tree_has_sketch_percentiles(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_span_tree(summary)
        assert "p50 ~" in text
        assert "p99 ~" in text
        # Repeated spans build a per-path duration sketch.
        assert summary.span_sketches["solve/iteration"].count == 3

    def test_single_call_span_has_no_percentiles(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_span_tree(summary)
        solve_line = [
            l for l in text.splitlines() if l.strip().startswith("solve ")
        ][0]
        assert "p50" not in solve_line  # one sample: percentiles add nothing

    def test_metrics_table_marks_promoted_histograms(self, tmp_path):
        import repro.obs.metrics as metrics_mod

        path = tmp_path / "approx.jsonl"
        tele = SolverTelemetry.to_jsonl(path)
        hist = tele.metrics.histogram("stage_ms")
        hist.exact_cap = 4
        for i in range(10):
            tele.observe("stage_ms", float(i + 1))
        tele.observe("exact_ms", 1.0)
        tele.close()
        text = render_metrics(load_run(path))
        approx_line = [l for l in text.splitlines() if "stage_ms" in l][0]
        exact_line = [l for l in text.splitlines() if "exact_ms" in l][0]
        assert "p50=~" in approx_line
        assert "p50=~" not in exact_line

    def test_serving_section_latency_line(self, tmp_path):
        from repro.obs.report import render_serving

        path = tmp_path / "serve.jsonl"
        tele = SolverTelemetry.to_jsonl(path)
        tele.event("serving_report", policy="lru", requests=100,
                   hit_ratio=0.75, staleness_violation_rate=0.0,
                   backhaul_mb=1.5)
        for latency in (0.004, 0.005, 0.006, 0.007):
            tele.observe("serve.edp_mean_latency_s", latency)
        tele.close()
        text = render_serving(load_run(path))
        assert "per-EDP mean latency" in text
        assert "p50 " in text and "p99 " in text
        assert "~" not in text.split("per-EDP")[1]  # exact run: unmarked
