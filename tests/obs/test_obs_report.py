"""Tests for the offline run summariser (``repro report`` internals)."""

import io

from repro.obs import SolverTelemetry, load_run
from repro.obs.report import (
    render_iteration_table,
    render_metrics,
    render_report,
    render_span_tree,
)


def _sample_run(tmp_path):
    """Write a small synthetic run and load it back."""
    path = tmp_path / "run.jsonl"
    tele = SolverTelemetry.to_jsonl(path)
    with tele.span("solve"):
        for i in range(1, 4):
            with tele.span("iteration"):
                with tele.span("hjb"):
                    pass
            tele.event(
                "iteration",
                iteration=i,
                policy_change=0.5 / i,
                mean_field_change=1.0 / i,
                hjb_s=0.01,
                fpk_s=0.02,
                mean_field_s=0.001,
            )
    tele.event(
        "solve_end", converged=True, n_iterations=3, final_policy_change=0.5 / 3
    )
    tele.inc("solver.iterations", 3)
    tele.close()
    return path


class TestLoadRun:
    def test_jsonl_roundtrip_aggregates(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        assert summary.n_events > 0
        assert len(summary.iterations) == 3
        assert summary.final_solve()["n_iterations"] == 3
        # Span events aggregate by path.
        count, total = summary.span_totals["solve/iteration"]
        assert count == 3
        assert total >= 0.0
        assert "solve/iteration/hjb" in summary.span_totals
        assert summary.metrics["solver.iterations"]["value"] == 3.0

    def test_load_from_handle(self, tmp_path):
        path = _sample_run(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            summary = load_run(handle)
        assert len(summary.iterations) == 3


class TestRendering:
    def test_span_tree_lists_paths(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_span_tree(summary)
        assert "solve" in text
        assert "iteration" in text
        assert "hjb" in text

    def test_iteration_table_has_rows_and_status(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_iteration_table(summary)
        assert "policy delta" in text
        assert "converged after 3 iterations" in text

    def test_iteration_table_always_shows_final_row(self, tmp_path):
        path = tmp_path / "long.jsonl"
        tele = SolverTelemetry.to_jsonl(path)
        for i in range(1, 101):
            tele.event("iteration", iteration=i, policy_change=1.0 / i,
                       mean_field_change=0.0)
        tele.close()
        text = render_iteration_table(load_run(path), max_rows=10)
        assert "100" in text.splitlines()[-1].split("|")[0]

    def test_metrics_table(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_metrics(summary)
        assert "solver.iterations" in text

    def test_full_report_handles_empty_run(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = render_report(load_run(path))
        assert "(no spans recorded)" in text
        assert "(no iteration events recorded)" in text
        assert "(no metrics recorded)" in text

    def test_full_report_combines_sections(self, tmp_path):
        summary = load_run(_sample_run(tmp_path))
        text = render_report(summary)
        assert "span tree" in text
        assert "iteration convergence" in text
        assert "metrics" in text


class TestInMemoryTelemetry:
    def test_spans_recorded_without_sink(self):
        tele = SolverTelemetry.in_memory()
        with tele.span("work") as span:
            pass
        assert span.duration >= 0.0
        assert tele.spans.rows()[0][0] == "work"

    def test_report_from_stringio(self):
        buf = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buf)
        tele.event("iteration", iteration=1, policy_change=0.1,
                   mean_field_change=0.2)
        tele.close()
        buf.seek(0)
        summary = load_run(buf)
        assert len(summary.iterations) == 1
