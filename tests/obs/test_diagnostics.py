"""Tests for the numerical-health probes and strict-numerics fail-fast."""

import io
import json

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator
from repro.core.fpk import FPKSolver
from repro.core.best_response import build_grid
from repro.core.parameters import MFGCPConfig
from repro.obs import (
    SolveDiagnostics,
    SolverTelemetry,
    StrictNumericsError,
    default_probes,
)
from repro.obs.diagnostics import (
    DampingStabilityProbe,
    DensityHealthProbe,
    ExploitabilityTrendProbe,
    MassConservationProbe,
)


def tiny_config():
    return MFGCPConfig(
        n_time_steps=10, n_h=7, n_q=11, max_iterations=8, tolerance=1e-3
    )


def solve_with_telemetry(**tele_kwargs):
    buf = io.StringIO()
    telemetry = SolverTelemetry.to_jsonl(buf, **tele_kwargs)
    result = BestResponseIterator(tiny_config(), telemetry=telemetry).solve()
    telemetry.close()
    buf.seek(0)
    events = [json.loads(line) for line in buf if line.strip()]
    return result, events


def diag_events(events, check=None):
    out = [e for e in events if str(e.get("ev", "")).startswith("diag.")]
    if check is not None:
        out = [e for e in out if e["ev"] == f"diag.{check}"]
    return out


class TestProbesDuringSolve:
    def test_healthy_solve_emits_all_standard_checks(self):
        result, events = solve_with_telemetry()
        checks = {e["ev"] for e in diag_events(events)}
        assert checks >= {
            "diag.cfl.margin",
            "diag.fpk.mass_drift",
            "diag.density.health",
            "diag.hjb.residual",
            "diag.exploitability",
            "diag.exploitability.trend",
        }

    def test_healthy_solve_has_no_errors_or_warnings(self):
        _, events = solve_with_telemetry()
        severities = {e["severity"] for e in diag_events(events)}
        assert severities == {"info"}

    def test_mass_drift_is_rounding_level(self):
        _, events = solve_with_telemetry()
        drifts = [e["value"] for e in diag_events(events, "fpk.mass_drift")]
        assert drifts and max(drifts) < 1e-10

    def test_cfl_margin_at_least_one_for_both_schemes(self):
        _, events = solve_with_telemetry()
        margins = diag_events(events, "cfl.margin")
        assert {e["scheme"] for e in margins} == {"fpk", "hjb"}
        assert all(e["value"] >= 1.0 for e in margins)

    def test_exploitability_trend_reports_contraction(self):
        result, events = solve_with_telemetry()
        (trend,) = diag_events(events, "exploitability.trend")
        assert trend["converged"] == result.report.converged
        assert trend["value"] < 1.0  # Theorem 2: the iteration contracts

    def test_diag_counters_track_findings(self):
        _, events = solve_with_telemetry()
        metrics = [e for e in events if e.get("ev") == "metrics"][-1]["metrics"]
        n_diag = len(diag_events(events))
        assert metrics["diag.findings"]["value"] == n_diag
        assert metrics["diag.info"]["value"] == n_diag

    def test_disabled_telemetry_emits_no_diag_events(self):
        telemetry = SolverTelemetry.null()
        BestResponseIterator(tiny_config(), telemetry=telemetry).solve()
        assert len(telemetry.metrics) == 0


class TestStrictNumerics:
    def test_error_finding_raises_after_emitting(self):
        tele = SolverTelemetry.buffered(strict_numerics=True)
        with pytest.raises(StrictNumericsError) as excinfo:
            tele.diag("fpk.mass_drift", "error", value=0.5,
                      message="mass drift exceeds tolerance")
        assert excinfo.value.check == "fpk.mass_drift"
        assert "fpk.mass_drift" in str(excinfo.value)
        # The event was emitted before the raise.
        assert [e["ev"] for e in tele.sink.events] == ["diag.fpk.mass_drift"]

    def test_non_error_findings_never_raise(self):
        tele = SolverTelemetry.buffered(strict_numerics=True)
        tele.diag("fpk.mass_drift", "info", value=1e-16)
        tele.diag("hjb.residual", "warning", value=20.0)
        assert len(tele.sink.events) == 2

    def test_strict_error_pickles_across_process_boundary(self):
        import pickle

        err = StrictNumericsError("density.health", "went negative", -0.5)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.check == "density.health"
        assert clone.value == -0.5

    def test_probe_error_propagates_in_strict_mode(self):
        tele = SolverTelemetry.buffered(strict_numerics=True)
        diagnostics = SolveDiagnostics(tele, probes=[DensityHealthProbe()])

        class Ctx:
            telemetry = tele
            iteration = 3
            density_path = np.full((4, 3, 3), np.nan)

        with pytest.raises(StrictNumericsError):
            diagnostics.iteration(Ctx())

    def test_broken_probe_demoted_to_warning(self):
        tele = SolverTelemetry.buffered()

        class ExplodingProbe:
            name = "exploding"

            def on_solve_start(self, ctx):
                raise RuntimeError("boom")

            def on_iteration(self, ctx):
                pass

            def on_solve_end(self, ctx):
                pass

        diagnostics = SolveDiagnostics(tele, probes=[ExplodingProbe()])
        diagnostics.solve_start(object())
        (event,) = tele.sink.events
        assert event["ev"] == "diag.probe_failure"
        assert event["severity"] == "warning"
        assert "boom" in event["message"]


class TestIndividualProbes:
    def test_invalid_severity_rejected(self):
        tele = SolverTelemetry.buffered()
        with pytest.raises(ValueError, match="severity"):
            tele.diag("x", "fatal")

    def test_mass_probe_severity_ladder(self):
        probe = MassConservationProbe(warn_at=1e-8, error_at=1e-3)
        grid = build_grid(tiny_config())
        for scale, expected in ((1.0, "info"), (1.0 + 1e-5, "warning"),
                                (1.5, "error")):
            tele = SolverTelemetry.buffered()
            density = grid.normalize(np.ones((grid.n_h, grid.n_q))) * scale

            class Ctx:
                telemetry = tele
                iteration = 1
                density_path = density[None, :, :]

            Ctx.grid = grid
            probe.on_iteration(Ctx())
            assert tele.sink.events[-1]["severity"] == expected, scale

    def test_density_probe_flags_negativity(self):
        tele = SolverTelemetry.buffered()
        path = np.full((2, 3, 3), 0.1)
        path[1, 0, 0] = -1e-6

        class Ctx:
            telemetry = tele
            iteration = 2
            density_path = path

        DensityHealthProbe().on_iteration(Ctx())
        (event,) = tele.sink.events
        assert event["severity"] == "error"
        assert "negative" in event["message"]

    def test_damping_probe_warns_once_on_sustained_growth(self):
        tele = SolverTelemetry.buffered()
        probe = DampingStabilityProbe(growth_at=1.05, consecutive=3)
        config = tiny_config()

        class Ctx:
            telemetry = tele

        Ctx.config = config
        for i, gap in enumerate([1.0, 2.0, 4.0, 8.0, 16.0, 32.0]):
            ctx = Ctx()
            ctx.iteration = i
            ctx.policy_change = gap
            probe.on_iteration(ctx)
        warnings = [e for e in tele.sink.events
                    if e["ev"] == "diag.damping.stability"]
        assert len(warnings) == 1
        assert str(config.damping) in warnings[0]["message"]

    def test_exploitability_probe_skips_trend_on_short_history(self):
        tele = SolverTelemetry.buffered()
        probe = ExploitabilityTrendProbe()

        class EndCtx:
            telemetry = tele

            class report:
                converged = True

        probe.on_solve_end(EndCtx())
        assert tele.sink.events == []

    def test_default_probe_set_is_fresh_per_call(self):
        a, b = default_probes(), default_probes()
        assert {p.name for p in a} == {p.name for p in b}
        assert not any(pa is pb for pa, pb in zip(a, b))


class TestZeroMassDiagnostic:
    def test_normalize_zero_mass_emits_diag_then_raises(self):
        grid = build_grid(tiny_config())
        tele = SolverTelemetry.buffered()
        zero = np.zeros((grid.n_h, grid.n_q))
        # The established error message is part of the API: callers
        # (and their tests) match on it.
        with pytest.raises(ValueError,
                           match="density has zero mass; cannot normalise"):
            grid.normalize(zero, telemetry=tele)
        (event,) = tele.sink.events
        assert event["ev"] == "diag.density.zero_mass"
        assert event["severity"] == "error"
        assert event["value"] == 0.0

    def test_normalize_zero_mass_without_telemetry_still_raises(self):
        grid = build_grid(tiny_config())
        with pytest.raises(ValueError, match="zero mass"):
            grid.normalize(np.zeros((grid.n_h, grid.n_q)))

    def test_fpk_solver_threads_telemetry_into_normalize(self):
        config = tiny_config()
        grid = build_grid(config)
        tele = SolverTelemetry.buffered()
        solver = FPKSolver(config, grid, telemetry=tele)
        with pytest.raises(ValueError, match="zero mass"):
            solver.solve(
                np.zeros(grid.path_shape),
                density0=np.zeros((grid.n_h, grid.n_q)),
            )
        assert any(e["ev"] == "diag.density.zero_mass"
                   for e in tele.sink.events)
