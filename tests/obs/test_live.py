"""Tests for the live-status side channel (`--live-status` / `repro watch`).

Covers :class:`~repro.obs.live.LiveStatusWriter` (throttled atomic
snapshots, heartbeats, straggler detection with an injected clock,
finish semantics), its wiring through telemetry and the resumable
executor, the dashboard renderer, and the one-time histogram
promotion diagnostic.
"""

import io
import json
import os

import pytest

from repro.obs import LiveStatusWriter, read_status, render_status
from repro.obs.live import STATUS_SCHEMA_VERSION
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import (
    CheckpointStore,
    ExecutionPlan,
    FaultPolicy,
    ResumableExecutor,
    SerialExecutor,
)
from repro.testing import clear_faults, install_faults


@pytest.fixture(autouse=True)
def no_leaked_faults():
    clear_faults()
    yield
    clear_faults()


class FakeClock:
    """An injectable wall clock the tests advance by hand."""

    def __init__(self, start=1000.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


def make_writer(tmp_path, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    writer = LiveStatusWriter(tmp_path / "status.json", clock=clock, **kwargs)
    return writer, clock


class TestStatusFile:
    def test_write_is_atomic_json(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        assert writer.write(force=True)
        status = read_status(writer.path)
        assert status["version"] == STATUS_SCHEMA_VERSION
        assert status["state"] == "running"
        # No tmp file left behind after os.replace.
        assert not os.path.exists(str(writer.path) + ".tmp")

    def test_read_status_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_status(tmp_path / "absent.json")

    def test_throttled_by_every(self, tmp_path):
        writer, _ = make_writer(tmp_path, every=3)
        writer.note_item("a")
        writer.note_item("a")
        assert not writer.path.exists()
        writer.note_item("a")
        assert read_status(writer.path)["items"]["done"] == 3

    def test_phase_change_forces_write_and_accumulates_totals(self, tmp_path):
        writer, _ = make_writer(tmp_path, every=1000)
        writer.set_phase("epoch:0", total_items=4)
        writer.set_phase("epoch:1", total_items=6)
        status = read_status(writer.path)
        assert status["phase"] == "epoch:1"
        assert status["items"]["total"] == 10
        assert status["phase_items"]["total"] == 6

    def test_retry_and_failure_force_writes(self, tmp_path):
        writer, _ = make_writer(tmp_path, every=1000)
        writer.note_retry("w:1")
        writer.note_failed("w:2")
        status = read_status(writer.path)
        assert status["items"]["retried"] == 1
        assert status["items"]["failed"] == 1

    def test_rejects_non_positive_every(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            LiveStatusWriter(tmp_path / "s.json", every=0)


class TestServingViews:
    def test_hit_ratio_and_latency_sketch(self, tmp_path):
        writer, _ = make_writer(tmp_path, request_window=100)
        writer.note_requests(100, hits=80, latency_s=0.5)
        writer.note_requests(100, hits=40, latency_s=2.0)
        status = writer.snapshot()
        req = status["requests"]
        assert req["total"] == 200
        assert req["hit_ratio"] == pytest.approx(0.6)
        assert req["window_hit_ratio"] == pytest.approx(0.6)
        lat = status["latency_s"]
        assert lat["approx"] is True
        # Batch means 5ms and 20ms; p50 is the lower mode.
        assert lat["p50"] == pytest.approx(0.005, rel=0.02)
        assert lat["p99"] == pytest.approx(0.020, rel=0.02)

    def test_window_ratio_tracks_recent_batches(self, tmp_path):
        writer, _ = make_writer(tmp_path, request_window=100)
        writer.note_requests(100, hits=100)  # old window
        for _ in range(4):
            writer.note_requests(100, hits=0)
        status = writer.snapshot()
        assert status["requests"]["hit_ratio"] == pytest.approx(0.2)
        assert status["requests"]["window_hit_ratio"] == pytest.approx(0.0)

    def test_empty_batches_ignored(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        writer.note_requests(0, hits=0)
        assert "requests" not in writer.snapshot()


class TestHeartbeats:
    def test_straggler_flagged_with_injected_clock(self, tmp_path):
        writer, clock = make_writer(tmp_path, straggler_after_s=60.0)
        writer.register_lanes(["w:0", "w:1", "w:2"])
        writer.note_item("w:0")
        writer.note_item("w:1")
        clock.advance(120.0)
        writer.note_item("w:0")
        writer.note_item("w:1")
        status = writer.snapshot()
        assert status["stragglers"] == ["w:2"]
        assert status["workers"]["w:2"]["items"] == 0

    def test_all_slow_is_a_stall_not_stragglers(self, tmp_path):
        writer, clock = make_writer(tmp_path, straggler_after_s=60.0)
        writer.register_lanes(["w:0", "w:1"])
        clock.advance(300.0)
        assert writer.snapshot()["stragglers"] == []

    def test_single_lane_never_straggles(self, tmp_path):
        writer, clock = make_writer(tmp_path, straggler_after_s=60.0)
        writer.note_item("only")
        clock.advance(300.0)
        assert writer.snapshot()["stragglers"] == []

    def test_lane_cap_evicts_least_recent(self, tmp_path):
        writer, clock = make_writer(tmp_path, max_lanes=2)
        for label in ("a", "b", "c"):
            clock.advance(1.0)
            writer.note_item(label)
        workers = writer.snapshot()["workers"]
        assert set(workers) == {"b", "c"}

    def test_oversized_registration_skipped(self, tmp_path):
        writer, _ = make_writer(tmp_path, max_lanes=2)
        writer.register_lanes([f"w:{i}" for i in range(5)])
        assert writer.snapshot()["workers"] == {}


class TestFinishSemantics:
    def test_finish_marks_done(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        writer.finish("done")
        assert read_status(writer.path)["state"] == "done"

    def test_first_finish_wins(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        writer.finish("failed")
        writer.finish("done")  # telemetry teardown's routine finish
        assert read_status(writer.path)["state"] == "failed"

    def test_invalid_state_rejected(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        with pytest.raises(ValueError, match="done"):
            writer.finish("crashed")


class TestTelemetryWiring:
    def test_set_live_on_null_telemetry_raises(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        with pytest.raises(ValueError, match="NULL_TELEMETRY"):
            NULL_TELEMETRY.set_live(writer)

    def test_close_finishes_status(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        tele = SolverTelemetry.to_jsonl(io.StringIO())
        tele.set_live(writer)
        tele.close()
        assert read_status(writer.path)["state"] == "done"

    def test_status_writes_emit_live_events(self, tmp_path):
        buffer = io.StringIO()
        tele = SolverTelemetry.to_jsonl(buffer)
        writer, _ = make_writer(tmp_path)
        tele.set_live(writer)
        writer.set_phase("solve", total_items=2)
        tele.close()
        buffer.seek(0)
        kinds = [json.loads(line)["ev"] for line in buffer if line.strip()]
        assert "live.phase" in kinds
        assert "live.status" in kinds

    def test_diag_counts_surface_in_snapshot(self, tmp_path):
        tele = SolverTelemetry.to_jsonl(io.StringIO())
        writer, _ = make_writer(tmp_path)
        tele.set_live(writer)
        tele.diag("hjb.residual", "warning", value=1.0, message="big")
        status = writer.snapshot()
        assert status["diags"]["warning"] == 1
        tele.close()


def _tracked(x, rng=None):
    return x * 10.0


def _make_plan(n=4):
    return ExecutionPlan.map(
        _tracked, [(i,) for i in range(n)], labels=[f"w:{i}" for i in range(n)]
    )


class TestResumableIntegration:
    def test_cached_retried_failed_reach_status(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        buffer = io.StringIO()

        # First pass populates the checkpoint store.
        tele1 = SolverTelemetry.to_jsonl(buffer)
        ResumableExecutor(SerialExecutor(), store=store, telemetry=tele1).run(
            _make_plan(), tele1
        )
        tele1.close()

        # Second pass: all four items restored from checkpoints, with
        # live status attached.
        tele2 = SolverTelemetry.to_jsonl(io.StringIO())
        writer, _ = make_writer(tmp_path, every=1)
        tele2.set_live(writer)
        ResumableExecutor(SerialExecutor(), store=store, telemetry=tele2).run(
            _make_plan(), tele2
        )
        tele2.close()
        status = read_status(writer.path)
        assert status["items"]["cached"] == 4
        assert status["items"]["done"] == 4  # cached items still complete
        assert status["state"] == "done"

    def test_retries_and_failures_reach_status(self, tmp_path):
        install_faults("raise:item=1,times=1")
        tele = SolverTelemetry.to_jsonl(io.StringIO())
        writer, _ = make_writer(tmp_path, every=1)
        tele.set_live(writer)
        policy = FaultPolicy(max_retries=2)
        ResumableExecutor(SerialExecutor(), policy=policy, telemetry=tele).run(
            _make_plan(), tele
        )
        tele.close()
        status = read_status(writer.path)
        assert status["items"]["retried"] == 1
        assert status["items"]["done"] == 4


class TestRenderStatus:
    def _status(self):
        return {
            "state": "running",
            "phase": "epoch:1",
            "elapsed_s": 95.0,
            "items": {"done": 5, "total": 10, "cached": 1,
                      "retried": 2, "failed": 0},
            "phase_items": {"done": 1, "total": 4},
            "throughput": {"items_per_s": 0.5, "requests_per_s": 1200.0},
            "requests": {"total": 120000, "hits": 90000,
                         "hit_ratio": 0.75, "window_hit_ratio": 0.8},
            "latency_s": {"p50": 0.005, "p90": 0.01, "p99": 0.02,
                          "mean": 0.007, "approx": True},
            "diags": {"warning": 3, "error": 1},
            "workers": {
                "content:0": {"items": 3, "last_index": 2, "age_s": 1.0},
                "content:1": {"items": 0, "last_index": -1, "age_s": 400.0},
            },
            "stragglers": ["content:1"],
        }

    def test_frame_contains_headline_numbers(self):
        frame = render_status(self._status())
        assert "RUNNING" in frame
        assert "epoch:1" in frame
        assert "5/10" in frame
        assert "hit ratio 0.7500" in frame
        assert "p50 ~5.00 ms" in frame
        assert "1 error(s), 3 warning(s)" in frame
        assert "STRAGGLER" in frame
        assert "1m35s" in frame

    def test_stragglers_sort_first(self):
        frame = render_status(self._status())
        lines = frame.splitlines()
        lane_lines = [l for l in lines if "content:" in l]
        assert "content:1" in lane_lines[0]

    def test_unknown_total_renders_unbounded_bar(self):
        frame = render_status(
            {"state": "running", "phase": "p", "elapsed_s": 1.0,
             "items": {"done": 3, "total": None}}
        )
        assert "3 items" in frame

    def test_done_badge(self):
        frame = render_status(
            {"state": "done", "phase": "p", "elapsed_s": 1.0,
             "items": {"done": 3, "total": 3}}
        )
        assert frame.startswith("repro run status — DONE")
