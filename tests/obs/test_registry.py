"""Unit tests for the run-provenance registry (repro.obs.registry)."""

import json
import os

import pytest

from repro.obs.registry import (
    MANIFEST_SCHEMA_VERSION,
    RunRegistry,
    build_manifest,
    compute_run_id,
    config_hash,
    diff_manifests,
    environment_fingerprint,
    headline_metrics,
    manifest_identity,
    render_diff,
    render_manifest,
    render_runs_table,
)


def make_manifest(status="ok", eta1=0.002, **overrides):
    manifest = build_manifest(
        command="solve",
        argv=["solve", "--fast"],
        config={"model": {"eta1": eta1, "n_q": 13}},
        status=status,
        exit_code=0 if status == "ok" else 1,
        started_at="2026-08-07T12:00:00+00:00",
        wall_s=1.5,
        seeds={"n_plans": 1, "total_items": 4, "total_seeded": 4,
               "plans": [], "truncated": False},
        artifacts={"telemetry": "run.jsonl"},
        metrics={"exploitability": 1e-3, "requests_per_s": 123.0},
    )
    manifest.update(overrides)
    return manifest


class TestEnvironmentFingerprint:
    def test_has_all_fields_and_never_raises(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "numpy", "scipy", "git_sha", "git_dirty"):
            assert key in env
        assert isinstance(env["python"], str)
        assert env["numpy"]  # numpy is a hard dependency

    def test_json_serialisable(self):
        json.dumps(environment_fingerprint())


class TestRunId:
    def test_deterministic(self):
        a = compute_run_id("solve", ["solve", "--fast"], {"eta1": 0.002})
        b = compute_run_id("solve", ["solve", "--fast"], {"eta1": 0.002})
        assert a == b
        assert len(a) == 12

    def test_sensitive_to_every_component(self):
        base = compute_run_id("solve", ["solve"], {"eta1": 0.002})
        assert compute_run_id("serve", ["solve"], {"eta1": 0.002}) != base
        assert compute_run_id("solve", ["solve", "-x"], {"eta1": 0.002}) != base
        assert compute_run_id("solve", ["solve"], {"eta1": 0.004}) != base

    def test_config_hash_ignores_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})


class TestHeadlineMetrics:
    def test_serving_counters(self):
        snap = {
            "serve.requests": {"kind": "counter", "value": 1000.0},
            "serve.hits": {"kind": "counter", "value": 900.0},
            "diag.findings": {"kind": "counter", "value": 5.0},
            "diag.info": {"kind": "counter", "value": 5.0},
        }
        out = headline_metrics(snap, wall_s=2.0)
        assert out["requests"] == 1000.0
        assert out["hit_ratio"] == pytest.approx(0.9)
        assert out["requests_per_s"] == pytest.approx(500.0)
        assert out["diag_findings"] == 5.0

    def test_network_counters_and_solver_gauges(self):
        snap = {
            "net.requests": {"kind": "counter", "value": 50.0},
            "net.cache_hits": {"kind": "counter", "value": 20.0},
            "solver.final_policy_change": {"kind": "gauge", "value": 1e-4},
            "solver.n_iterations": {"kind": "gauge", "value": 13.0},
        }
        out = headline_metrics(snap, wall_s=None)
        assert out["hit_ratio"] == pytest.approx(0.4)
        assert "requests_per_s" not in out
        assert out["exploitability"] == pytest.approx(1e-4)
        assert out["n_iterations"] == 13.0

    def test_malformed_entries_are_ignored(self):
        snap = {"serve.requests": {"kind": "counter"},
                "net.requests": "garbage"}
        assert headline_metrics(snap, wall_s=1.0) == {}


class TestRegistryStore:
    def test_append_load_roundtrip_orders_by_seq(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        for eta1 in (0.002, 0.004, 0.006):
            registry.append(make_manifest(eta1=eta1))
        manifests, warnings = registry.load_all()
        assert warnings == []
        assert [m["seq"] for m in manifests] == [1, 2, 3]
        assert manifests[0]["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifests[2]["config"]["model"]["eta1"] == 0.006

    def test_append_is_atomic_no_tmp_leftovers(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_find_by_seq_and_prefix(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest(eta1=0.002))
        registry.append(make_manifest(eta1=0.004))
        by_seq = registry.find("2")
        assert by_seq["config"]["model"]["eta1"] == 0.004
        by_prefix = registry.find(by_seq["run_id"][:6])
        assert by_prefix["seq"] == 2
        assert registry.find("99") is None
        assert registry.find("zzzz") is None

    def test_find_prefix_prefers_newest(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        registry.append(make_manifest())  # identical run id, seq 2
        found = registry.find(make_manifest()["run_id"][:8])
        assert found["seq"] == 2

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "via-env"))
        assert RunRegistry().root == str(tmp_path / "via-env")
        assert RunRegistry(str(tmp_path / "flag")).root == str(tmp_path / "flag")

    def test_missing_root_is_empty_not_an_error(self, tmp_path):
        manifests, warnings = RunRegistry(str(tmp_path / "nope")).load_all()
        assert manifests == [] and warnings == []


class TestCorruptionMatrix:
    """A broken manifest file warns and is skipped — never a crash."""

    @pytest.mark.parametrize("payload", [
        b"",                             # empty file
        b'{"schema": 1, "run_id"',       # truncated JSON
        b"\x00\xffgarbage bytes",        # binary garbage
        b"[1, 2, 3]",                    # valid JSON, wrong shape
        b'{"no_run_id": true}',          # object missing identity
        b'{"schema": 99, "run_id": "x"}',  # future schema
    ])
    def test_bad_file_warns_and_skips(self, tmp_path, payload):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        (tmp_path / "000002-broken.json").write_bytes(payload)
        manifests, warnings = registry.load_all()
        assert len(manifests) == 1
        assert len(warnings) == 1
        assert "skipping" in warnings[0]

    def test_non_json_files_are_ignored_silently(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        (tmp_path / "README.txt").write_text("not a manifest")
        manifests, warnings = registry.load_all()
        assert manifests == [] and warnings == []

    def test_append_continues_after_corruption(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        (tmp_path / "000005-broken.json").write_bytes(b"garbage")
        path = registry.append(make_manifest())
        # Seq counting survives the garbage file (its name parses).
        assert os.path.basename(path).startswith("000006-")


class TestGC:
    def test_keeps_newest_n(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        for _ in range(5):
            registry.append(make_manifest())
        removed = registry.gc(keep=2)
        assert len(removed) == 3
        manifests, _ = registry.load_all()
        assert [m["seq"] for m in manifests] == [4, 5]

    def test_never_deletes_newest_failing_run(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest(status="ok"))
        registry.append(make_manifest(status="failed"))
        for _ in range(3):
            registry.append(make_manifest(status="ok"))
        registry.gc(keep=1)
        manifests, _ = registry.load_all()
        assert [m["seq"] for m in manifests] == [2, 5]
        assert manifests[0]["status"] == "failed"

    def test_keep_zero_retains_only_newest_failure(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest(status="failed"))
        registry.append(make_manifest(status="ok"))
        registry.gc(keep=0)
        manifests, _ = registry.load_all()
        assert [m["seq"] for m in manifests] == [1]

    def test_negative_keep_raises(self, tmp_path):
        with pytest.raises(ValueError):
            RunRegistry(str(tmp_path)).gc(keep=-1)


class TestIdentityAndDiff:
    def test_identity_strips_only_measured_fields(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        registry.append(make_manifest())
        manifests, _ = registry.load_all()
        a, b = manifests
        assert a != b  # seq and path differ
        assert manifest_identity(a) == manifest_identity(b)
        assert "requests_per_s" not in manifest_identity(a)["metrics"]

    def test_diff_flags_exactly_the_changed_key(self):
        a = make_manifest(eta1=0.002)
        b = make_manifest(eta1=0.004)
        config_changes, comparison = diff_manifests(a, b)
        assert [key for key, _, _ in config_changes] == ["model.eta1"]
        assert config_changes[0][1:] == (0.002, 0.004)
        text = render_diff(a, b, config_changes, comparison)
        assert "config changes (1):" in text
        assert "model.eta1" in text

    def test_diff_identical_configs_is_empty(self):
        a, b = make_manifest(), make_manifest()
        config_changes, _ = diff_manifests(a, b)
        assert config_changes == []

    def test_diff_metrics_use_compare_bench(self):
        a = make_manifest()
        b = make_manifest()
        b["metrics"] = {"exploitability": 1e-3, "requests_per_s": 60.0}
        _, comparison = diff_manifests(a, b, threshold=0.2)
        names = [d.name for d in comparison.bench_deltas]
        assert "requests_per_s" in names


class TestRendering:
    def test_runs_table_lists_newest_first(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_manifest())
        registry.append(make_manifest())
        manifests, _ = registry.load_all()
        text = render_runs_table(manifests)
        assert "run registry (2 manifest(s))" in text
        lines = [l for l in text.splitlines() if l.startswith(("1", "2"))]
        assert lines[0].startswith("2")

    def test_manifest_report_shows_provenance(self):
        manifest = make_manifest()
        manifest["seq"] = 7
        text = render_manifest(manifest)
        assert "repro solve --fast" in text
        assert manifest["run_id"] in text
        assert manifest["config_hash"] in text
        assert "headline metrics" in text
        assert "exploitability" in text
