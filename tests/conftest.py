"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig


@pytest.fixture
def rng():
    """A deterministic generator for test reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_config():
    """The coarse-grid configuration used by most solver tests."""
    return MFGCPConfig.fast()


@pytest.fixture(scope="session")
def solved_equilibrium():
    """One shared equilibrium solve on the fast configuration.

    Session-scoped because the solve costs a few hundred ms and many
    tests only need to *inspect* a valid equilibrium.
    """
    return BestResponseIterator(MFGCPConfig.fast()).solve()
