"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig


@pytest.fixture(autouse=True)
def _isolated_run_registry(tmp_path_factory, monkeypatch):
    """Point the run-manifest registry at a per-test directory.

    CLI tests call ``main()`` in the repo working directory; without
    this, every such call would append a manifest under the repo's
    own ``.repro/runs``.  The directory lives outside the test's own
    ``tmp_path`` (some tests assert it stays empty), and the env
    override sits below the ``--registry-dir`` flag, so tests that
    pass the flag still win.
    """
    registry_root = tmp_path_factory.mktemp("run-registry")
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(registry_root))


@pytest.fixture
def rng():
    """A deterministic generator for test reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_config():
    """The coarse-grid configuration used by most solver tests."""
    return MFGCPConfig.fast()


@pytest.fixture(scope="session")
def solved_equilibrium():
    """One shared equilibrium solve on the fast configuration.

    Session-scoped because the solve costs a few hundred ms and many
    tests only need to *inspect* a valid equilibrium.
    """
    return BestResponseIterator(MFGCPConfig.fast()).solve()
