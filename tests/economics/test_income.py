"""Tests for the trading income term (Eq. (6))."""

import numpy as np
import pytest

from repro.economics.income import trading_income


class TestTradingIncome:
    def test_pure_case1_sells_cached_portion(self):
        income = trading_income(
            n_requests=5.0, price=0.5, p1=1.0, p2=0.0, p3=0.0,
            q=30.0, q_other=50.0, content_size=100.0,
        )
        assert float(income) == pytest.approx(5.0 * 0.5 * 70.0)

    def test_pure_case2_sells_peer_portion(self):
        income = trading_income(5.0, 0.5, 0.0, 1.0, 0.0, 30.0, 10.0, 100.0)
        assert float(income) == pytest.approx(5.0 * 0.5 * 90.0)

    def test_pure_case3_sells_whole_content(self):
        income = trading_income(5.0, 0.5, 0.0, 0.0, 1.0, 30.0, 50.0, 100.0)
        assert float(income) == pytest.approx(5.0 * 0.5 * 100.0)

    def test_mixed_cases_are_convex_combination(self):
        full = trading_income(1.0, 1.0, 0.5, 0.3, 0.2, 40.0, 20.0, 100.0)
        expected = 0.5 * 60.0 + 0.3 * 80.0 + 0.2 * 100.0
        assert float(full) == pytest.approx(expected)

    def test_zero_requests_zero_income(self):
        assert float(trading_income(0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 100.0)) == 0.0

    def test_income_scales_linearly_in_price(self):
        base = trading_income(3.0, 0.4, 0.6, 0.2, 0.2, 50.0, 50.0, 100.0)
        double = trading_income(3.0, 0.8, 0.6, 0.2, 0.2, 50.0, 50.0, 100.0)
        assert float(double) == pytest.approx(2 * float(base))

    def test_grid_broadcasting(self):
        q = np.linspace(0, 100, 5)[None, :]
        p1 = np.ones((3, 5))
        income = trading_income(2.0, 0.5, p1, 0.0, 0.0, q, 50.0, 100.0)
        assert income.shape == (3, 5)
        # In pure case 1 income falls as remaining space grows.
        assert np.all(np.diff(income, axis=1) < 0)

    def test_rejects_nonpositive_content_size(self):
        with pytest.raises(ValueError, match="content_size"):
            trading_income(1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0)
