"""Tests for the composed utility function (Eq. (10))."""

import numpy as np
import pytest

from repro.economics.cases import CaseProbabilities
from repro.economics.pricing import PricingModel
from repro.economics.utility import (
    EconomicParameters,
    MarketContext,
    UtilityModel,
)


def make_params(include_sharing=True, include_trading=True):
    return EconomicParameters(
        w4=2.0,
        w5=90.0,
        eta2=10.0,
        backhaul_rate=20.0,
        cases=CaseProbabilities(alpha=0.2, smoothing=0.1),
        pricing=PricingModel(p_hat=0.8, eta1=2e-3, sharing_price=0.3),
        include_sharing=include_sharing,
        include_trading=include_trading,
    )


def make_model(**kw):
    return UtilityModel(params=make_params(**kw), content_size=100.0)


def make_ctx(n_requests=5.0, price=0.6, q_other=50.0, sharing_benefit=2.0):
    return MarketContext(
        n_requests=n_requests,
        price=price,
        q_other=q_other,
        sharing_benefit=sharing_benefit,
    )


class TestUtilityModel:
    def test_total_is_breakdown_identity(self):
        model = make_model()
        breakdown = model.evaluate(0.5, 40.0, 50.0, make_ctx())
        manual = (
            breakdown.trading_income
            + breakdown.sharing_benefit
            - breakdown.placement_cost
            - breakdown.staleness_cost
            - breakdown.sharing_cost
        )
        assert np.allclose(breakdown.total, manual)

    def test_total_shortcut(self):
        model = make_model()
        ctx = make_ctx()
        assert np.allclose(
            model.total(0.5, 40.0, 50.0, ctx),
            model.evaluate(0.5, 40.0, 50.0, ctx).total,
        )

    def test_sharing_disabled_zeroes_terms(self):
        model = make_model(include_sharing=False)
        breakdown = model.evaluate(0.5, 40.0, 50.0, make_ctx(sharing_benefit=5.0))
        assert np.all(breakdown.sharing_benefit == 0.0)
        assert np.all(breakdown.sharing_cost == 0.0)

    def test_trading_disabled_zeroes_income(self):
        model = make_model(include_trading=False)
        breakdown = model.evaluate(0.5, 40.0, 50.0, make_ctx())
        assert np.all(breakdown.trading_income == 0.0)
        # Costs survive: this is the UDCS objective.
        assert np.all(breakdown.placement_cost > 0.0)

    def test_sharing_benefit_weighted_by_case1(self):
        model = make_model()
        ctx = make_ctx(sharing_benefit=10.0)
        cached = model.evaluate(0.0, 0.0, 50.0, ctx)     # qualified sharer
        uncached = model.evaluate(0.0, 100.0, 50.0, ctx)  # cannot share
        assert float(cached.sharing_benefit) > float(uncached.sharing_benefit)

    def test_grid_evaluation_shapes(self):
        model = make_model()
        q = np.linspace(0, 100, 7)[None, :]
        rate = np.linspace(30, 60, 4)[:, None]
        x = np.full((4, 7), 0.5)
        breakdown = model.evaluate(x, q, rate, make_ctx())
        assert breakdown.total.shape == (4, 7)
        for name in (
            "trading_income",
            "sharing_benefit",
            "placement_cost",
            "staleness_cost",
            "sharing_cost",
        ):
            assert getattr(breakdown, name).shape == (4, 7)

    def test_control_free_part(self):
        model = make_model()
        ctx = make_ctx()
        assert np.allclose(
            model.control_free_part(40.0, 50.0, ctx),
            model.total(0.0, 40.0, 50.0, ctx),
        )

    def test_control_gradient_constants_match_finite_difference(self):
        model = make_model()
        linear, quad = model.control_gradient_constants()
        ctx = make_ctx()
        # U(x) = U(0) - linear x - quad x^2.
        for x in (0.2, 0.7):
            predicted = float(model.total(0.0, 40.0, 50.0, ctx)) - linear * x - quad * x**2
            actual = float(model.total(x, 40.0, 50.0, ctx))
            assert actual == pytest.approx(predicted, rel=1e-9)

    def test_scaled_breakdown(self):
        model = make_model()
        breakdown = model.evaluate(0.5, 40.0, 50.0, make_ctx())
        scaled = breakdown.scaled(0.5)
        assert np.allclose(scaled.total, 0.5 * breakdown.total)

    def test_validation(self):
        with pytest.raises(ValueError, match="content_size"):
            UtilityModel(params=make_params(), content_size=0.0)
        with pytest.raises(ValueError, match="w4"):
            EconomicParameters(w4=-1.0, w5=1.0, eta2=1.0, backhaul_rate=1.0)
        with pytest.raises(ValueError, match="n_requests"):
            MarketContext(n_requests=-1.0, price=0.5, q_other=50.0)

    def test_without_sharing_copy(self):
        params = make_params()
        stripped = params.without_sharing()
        assert stripped.include_sharing is False
        assert params.include_sharing is True
