"""Tests for the peer-sharing benefit and cost terms."""

import numpy as np
import pytest

from repro.economics.sharing import (
    mean_field_sharing_benefit,
    sharing_benefit,
    sharing_cost,
)


class TestSharingBenefit:
    def test_eq7_sums_deficits(self):
        benefit = sharing_benefit(0.3, np.array([50.0, 70.0]), own_space=20.0)
        assert float(benefit) == pytest.approx(0.3 * (30.0 + 50.0))

    def test_transfers_clamped_at_zero(self):
        # A peer with less remaining space than the sharer buys nothing.
        benefit = sharing_benefit(0.3, np.array([10.0]), own_space=20.0)
        assert float(benefit) == 0.0

    def test_no_requesters_no_benefit(self):
        assert float(sharing_benefit(0.3, np.array([]), 20.0)) == 0.0

    def test_rejects_negative_price(self):
        with pytest.raises(ValueError, match="sharing_price"):
            sharing_benefit(-0.1, np.array([50.0]), 20.0)


class TestSharingCost:
    def test_case2_cost_formula(self):
        cost = sharing_cost(p2=0.5, sharing_price=0.3, own_space=60.0, peer_space=10.0)
        assert float(cost) == pytest.approx(0.5 * 0.3 * 50.0)

    def test_clamped_transfer(self):
        cost = sharing_cost(1.0, 0.3, own_space=10.0, peer_space=60.0)
        assert float(cost) == 0.0

    def test_vectorised(self):
        p2 = np.array([0.0, 1.0])
        cost = sharing_cost(p2, 0.3, np.array([50.0, 50.0]), 10.0)
        assert cost[0] == 0.0
        assert cost[1] == pytest.approx(0.3 * 40.0)

    def test_rejects_negative_price(self):
        with pytest.raises(ValueError, match="sharing_price"):
            sharing_cost(1.0, -0.3, 50.0, 10.0)


class TestMeanFieldSharingBenefit:
    def test_formula(self):
        # p_bar * transfer * ((M - M') / M_k - 1).
        benefit = mean_field_sharing_benefit(
            0.3, mean_transfer=40.0, n_edps=100, n_case3=20.0, n_qualified=20.0
        )
        assert float(benefit) == pytest.approx(0.3 * 40.0 * (80.0 / 20.0 - 1.0))

    def test_zero_qualified_means_no_market(self):
        benefit = mean_field_sharing_benefit(0.3, 40.0, 100, 20.0, 0.0)
        assert float(benefit) == 0.0

    def test_never_negative(self):
        # More sharers than non-case-3 EDPs => ratio below 1 => clamp 0.
        benefit = mean_field_sharing_benefit(0.3, 40.0, 100, 50.0, 90.0)
        assert float(benefit) == 0.0

    def test_vectorised_over_time(self):
        benefit = mean_field_sharing_benefit(
            0.3,
            np.array([40.0, 10.0]),
            100,
            np.array([20.0, 10.0]),
            np.array([20.0, 30.0]),
        )
        assert benefit.shape == (2,)
        assert np.all(benefit >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="sharing_price"):
            mean_field_sharing_benefit(-0.1, 40.0, 100, 10.0, 10.0)
        with pytest.raises(ValueError, match="n_edps"):
            mean_field_sharing_benefit(0.1, 40.0, 0, 10.0, 10.0)
