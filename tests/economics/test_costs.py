"""Tests for the placement and staleness cost terms (Eqs. (8)-(9))."""

import numpy as np
import pytest

from repro.economics.costs import (
    placement_cost,
    staleness_cost,
    staleness_cost_control_gradient,
)


class TestPlacementCost:
    def test_quadratic_formula(self):
        assert float(placement_cost(0.5, 2.0, 90.0)) == pytest.approx(
            2.0 * 0.5 + 90.0 * 0.25
        )

    def test_zero_control_is_free(self):
        assert float(placement_cost(0.0, 2.0, 90.0)) == 0.0

    def test_convex_in_control(self):
        x = np.linspace(0, 1, 11)
        costs = placement_cost(x, 2.0, 90.0)
        assert np.all(np.diff(costs, 2) > 0)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError, match="w4"):
            placement_cost(0.5, -1.0, 90.0)


class TestStalenessCost:
    def base_kwargs(self):
        return dict(
            x=0.5, q=50.0, q_other=10.0, p1=0.0, p2=0.0, p3=0.0,
            n_requests=5.0, wireless_rate=50.0, backhaul_rate=20.0,
            content_size=100.0, eta2=10.0,
        )

    def test_own_download_term(self):
        # With all case probabilities zero only the EDP's own download
        # delay remains: eta2 * Q x / H_c.
        cost = staleness_cost(**self.base_kwargs())
        assert float(cost) == pytest.approx(10.0 * 100.0 * 0.5 / 20.0)

    def test_case1_delivery_term(self):
        kwargs = self.base_kwargs()
        kwargs.update(x=0.0, p1=1.0)
        cost = staleness_cost(**kwargs)
        assert float(cost) == pytest.approx(10.0 * 5.0 * (100.0 - 50.0) / 50.0)

    def test_case3_has_backhaul_and_delivery(self):
        kwargs = self.base_kwargs()
        kwargs.update(x=0.0, p3=1.0)
        cost = staleness_cost(**kwargs)
        expected = 10.0 * 5.0 * (50.0 / 20.0 + 100.0 / 50.0)
        assert float(cost) == pytest.approx(expected)

    def test_case3_costlier_than_case1(self):
        kwargs1 = self.base_kwargs()
        kwargs1.update(x=0.0, p1=1.0)
        kwargs3 = self.base_kwargs()
        kwargs3.update(x=0.0, p3=1.0)
        assert float(staleness_cost(**kwargs3)) > float(staleness_cost(**kwargs1))

    def test_grid_broadcasting(self):
        kwargs = self.base_kwargs()
        kwargs.update(
            q=np.linspace(0, 100, 5)[None, :],
            wireless_rate=np.array([[40.0], [60.0]]),
            p1=1.0,
            x=0.0,
        )
        cost = staleness_cost(**kwargs)
        assert cost.shape == (2, 5)
        # Faster links deliver with less delay.
        assert np.all(cost[1] <= cost[0])

    def test_validation(self):
        kwargs = self.base_kwargs()
        kwargs["backhaul_rate"] = 0.0
        with pytest.raises(ValueError, match="backhaul_rate"):
            staleness_cost(**kwargs)
        kwargs = self.base_kwargs()
        kwargs["wireless_rate"] = 0.0
        with pytest.raises(ValueError, match="wireless_rate"):
            staleness_cost(**kwargs)
        kwargs = self.base_kwargs()
        kwargs["eta2"] = -1.0
        with pytest.raises(ValueError, match="eta2"):
            staleness_cost(**kwargs)


class TestControlGradient:
    def test_matches_finite_difference(self):
        # d C^2 / dx is constant: eta2 * Q / H_c.
        grad = staleness_cost_control_gradient(20.0, 100.0, 10.0)
        assert grad == pytest.approx(50.0)
        kwargs = dict(
            q=50.0, q_other=10.0, p1=0.3, p2=0.3, p3=0.4, n_requests=5.0,
            wireless_rate=50.0, backhaul_rate=20.0, content_size=100.0, eta2=10.0,
        )
        eps = 1e-6
        up = staleness_cost(x=0.5 + eps, **kwargs)
        down = staleness_cost(x=0.5 - eps, **kwargs)
        assert float((up - down) / (2 * eps)) == pytest.approx(grad, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="backhaul_rate"):
            staleness_cost_control_gradient(0.0, 100.0, 1.0)
