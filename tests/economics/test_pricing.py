"""Tests for the supply-demand pricing law (Eqs. (5), (17))."""

import numpy as np
import pytest

from repro.economics.pricing import (
    PricingModel,
    finite_population_price,
    mean_field_price,
)


class TestFinitePopulationPrice:
    def test_monopoly_charges_p_hat(self):
        price = finite_population_price(0.8, 0.01, 100.0, np.array([0.5]), 0)
        assert price == pytest.approx(0.8)

    def test_eq5_formula(self):
        strategies = np.array([0.2, 0.4, 0.6])
        price = finite_population_price(0.8, 1e-3, 100.0, strategies, 0)
        expected = 0.8 - 1e-3 * 100.0 * (0.4 + 0.6) / 2
        assert price == pytest.approx(expected)

    def test_own_strategy_excluded(self):
        base = np.array([0.0, 0.5, 0.5])
        changed = np.array([1.0, 0.5, 0.5])
        p0 = finite_population_price(0.8, 1e-3, 100.0, base, 0)
        p1 = finite_population_price(0.8, 1e-3, 100.0, changed, 0)
        assert p0 == pytest.approx(p1)

    def test_more_supply_lowers_price(self):
        low = finite_population_price(0.8, 1e-3, 100.0, np.array([0.0, 0.1, 0.1]), 0)
        high = finite_population_price(0.8, 1e-3, 100.0, np.array([0.0, 0.9, 0.9]), 0)
        assert high < low

    def test_floor_applies(self):
        price = finite_population_price(
            0.1, 1.0, 100.0, np.array([0.0, 1.0]), 0, floor=0.0
        )
        assert price == 0.0

    def test_rejects_bad_index(self):
        with pytest.raises(IndexError):
            finite_population_price(0.8, 1e-3, 100.0, np.array([0.5, 0.5]), 2)

    def test_rejects_matrix_strategies(self):
        with pytest.raises(ValueError, match="vector"):
            finite_population_price(0.8, 1e-3, 100.0, np.zeros((2, 2)), 0)


class TestMeanFieldPrice:
    def test_eq17_formula(self):
        price = mean_field_price(0.8, 2e-3, 100.0, 0.5)
        assert float(price) == pytest.approx(0.8 - 2e-3 * 100.0 * 0.5)

    def test_vectorised_over_time(self):
        controls = np.array([0.0, 0.5, 1.0])
        prices = mean_field_price(0.8, 2e-3, 100.0, controls)
        assert prices.shape == (3,)
        assert np.all(np.diff(prices) < 0)

    def test_never_exceeds_p_hat(self):
        prices = mean_field_price(0.8, 2e-3, 100.0, np.linspace(0, 1, 11))
        assert np.all(prices <= 0.8)

    def test_floor(self):
        price = mean_field_price(0.1, 1.0, 100.0, 1.0, floor=0.05)
        assert float(price) == 0.05

    def test_matches_finite_population_limit(self):
        # Eq. (17) is the M -> infinity limit of Eq. (5) with everyone
        # at the same control level.
        level = 0.6
        mf = float(mean_field_price(0.8, 2e-3, 100.0, level))
        m = 5000
        finite = finite_population_price(
            0.8, 2e-3, 100.0, np.full(m, level), 0
        )
        assert finite == pytest.approx(mf, abs=1e-6)


class TestPricingModel:
    def make(self):
        return PricingModel(p_hat=0.8, eta1=2e-3, sharing_price=0.3)

    def test_wrappers_delegate(self):
        model = self.make()
        strategies = np.array([0.1, 0.9])
        assert model.finite(100.0, strategies, 0) == pytest.approx(
            finite_population_price(0.8, 2e-3, 100.0, strategies, 0)
        )
        assert float(model.mean_field(100.0, 0.4)) == pytest.approx(
            float(mean_field_price(0.8, 2e-3, 100.0, 0.4))
        )

    def test_monopoly(self):
        assert self.make().monopoly() == 0.8

    def test_sensitivity(self):
        assert self.make().price_sensitivity(100.0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="p_hat"):
            PricingModel(p_hat=0.0, eta1=1e-3)
        with pytest.raises(ValueError, match="eta1"):
            PricingModel(p_hat=0.8, eta1=-1e-3)
        with pytest.raises(ValueError, match="sharing_price"):
            PricingModel(p_hat=0.8, eta1=1e-3, sharing_price=-1.0)
