"""Tests for the smoothed case probabilities (Section III-A)."""

import numpy as np
import pytest

from repro.economics.cases import CaseProbabilities, smooth_step, smooth_step_derivative


class TestSmoothStep:
    def test_midpoint(self):
        assert float(smooth_step(0.0, 1.0)) == pytest.approx(0.5)

    def test_limits(self):
        assert float(smooth_step(100.0, 1.0)) == pytest.approx(1.0)
        assert float(smooth_step(-100.0, 1.0)) == pytest.approx(0.0)

    def test_symmetry(self):
        # f(x) + f(-x) = 1.
        x = np.linspace(-10, 10, 31)
        assert np.allclose(smooth_step(x, 0.5) + smooth_step(-x, 0.5), 1.0)

    def test_steepness(self):
        gentle = smooth_step(1.0, 0.1)
        steep = smooth_step(1.0, 5.0)
        assert steep > gentle

    def test_overflow_safe(self):
        assert np.isfinite(smooth_step(1e6, 10.0))
        assert np.isfinite(smooth_step(-1e6, 10.0))

    def test_derivative_formula(self):
        # Finite-difference check of f'.
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numeric = (smooth_step(x + eps, 0.7) - smooth_step(x - eps, 0.7)) / (2 * eps)
        assert np.allclose(smooth_step_derivative(x, 0.7), numeric, atol=1e-5)

    def test_derivative_peak_at_zero(self):
        assert smooth_step_derivative(0.0, 1.0) == pytest.approx(0.5)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError, match="smoothing"):
            smooth_step(0.0, 0.0)


class TestCaseProbabilities:
    def make(self, alpha=0.2, smoothing=0.5):
        return CaseProbabilities(alpha=alpha, smoothing=smoothing)

    def test_threshold(self):
        assert self.make().threshold(100.0) == pytest.approx(20.0)

    def test_p1_high_when_cached(self):
        cases = self.make(smoothing=1.0)
        assert float(cases.p1(0.0, 100.0)) > 0.99
        assert float(cases.p1(100.0, 100.0)) < 0.01

    def test_partition_of_unity(self):
        # P1 + P2 + P3 = 1 exactly, for any states.
        cases = self.make()
        q = np.linspace(0, 100, 21)
        q_other = np.linspace(100, 0, 21)
        p1, p2, p3 = cases.all(q, q_other, 100.0)
        assert np.allclose(p1 + p2 + p3, 1.0)

    def test_all_matches_individual(self):
        cases = self.make()
        q, q_other = 35.0, 10.0
        p1, p2, p3 = cases.all(q, q_other, 100.0)
        assert float(p1) == pytest.approx(float(cases.p1(q, 100.0)))
        assert float(p2) == pytest.approx(float(cases.p2(q, q_other, 100.0)))
        assert float(p3) == pytest.approx(float(cases.p3(q, q_other, 100.0)))

    def test_case2_needs_peer_with_content(self):
        cases = self.make(smoothing=1.0)
        # Self lacks, peer has.
        assert float(cases.p2(80.0, 5.0, 100.0)) > 0.95
        # Self lacks, peer also lacks.
        assert float(cases.p2(80.0, 80.0, 100.0)) < 0.05

    def test_case3_both_lack(self):
        cases = self.make(smoothing=1.0)
        assert float(cases.p3(80.0, 80.0, 100.0)) > 0.95

    def test_probabilities_in_unit_interval(self):
        cases = self.make(smoothing=0.05)
        rng = np.random.default_rng(0)
        q = rng.uniform(0, 100, 50)
        q_other = rng.uniform(0, 100, 50)
        for p in cases.all(q, q_other, 100.0):
            assert np.all(p >= 0.0)
            assert np.all(p <= 1.0)

    def test_dq_derivatives_match_finite_difference(self):
        cases = self.make(smoothing=0.3)
        q, q_other, size = 25.0, 60.0, 100.0
        eps = 1e-6
        d1 = (cases.p1(q + eps, size) - cases.p1(q - eps, size)) / (2 * eps)
        d2 = (cases.p2(q + eps, q_other, size) - cases.p2(q - eps, q_other, size)) / (2 * eps)
        d3 = (cases.p3(q + eps, q_other, size) - cases.p3(q - eps, q_other, size)) / (2 * eps)
        assert float(cases.dq_p1(q, size)) == pytest.approx(float(d1), abs=1e-5)
        assert float(cases.dq_p2(q, q_other, size)) == pytest.approx(float(d2), abs=1e-5)
        assert float(cases.dq_p3(q, q_other, size)) == pytest.approx(float(d3), abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            CaseProbabilities(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            CaseProbabilities(alpha=1.0)
        with pytest.raises(ValueError, match="smoothing"):
            CaseProbabilities(smoothing=0.0)
        with pytest.raises(ValueError, match="content_size"):
            self.make().threshold(0.0)
