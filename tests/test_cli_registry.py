"""End-to-end tests for the run registry CLI surface.

Covers the provenance loop the registry exists for: run a command,
find its manifest, show it, diff it against a tweaked re-run, trend
it, and prune it — plus the side-channel contract (recording a
manifest must not perturb the normalized telemetry stream).
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.registry import RunRegistry, manifest_identity
from repro.testing import normalized_events


@pytest.fixture
def registry_dir(tmp_path, monkeypatch):
    """Point the registry at a per-test directory (the autouse conftest
    fixture already isolates it; this returns the actual path)."""
    root = tmp_path / "runs"
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(root))
    return root


def run_solve(*extra):
    assert main(["solve", "--fast", *extra]) == 0


class TestManifestRecording:
    def test_solve_records_manifest(self, registry_dir, capsys):
        run_solve()
        err = capsys.readouterr().err
        assert "run manifest" in err and "recorded ->" in err
        manifests, warnings = RunRegistry(str(registry_dir)).load_all()
        assert warnings == []
        (manifest,) = manifests
        assert manifest["command"] == "solve"
        assert manifest["argv"] == ["solve", "--fast"]
        assert manifest["status"] == "ok"
        assert manifest["exit_code"] == 0
        assert manifest["config"]["model"]["n_q"]
        assert "exploitability" in manifest["metrics"]
        assert manifest["environment"]["python"]

    def test_identical_runs_differ_only_in_measured_fields(self, registry_dir):
        run_solve()
        run_solve()
        manifests, _ = RunRegistry(str(registry_dir)).load_all()
        a, b = manifests
        assert a["run_id"] == b["run_id"]
        assert (a["seq"], b["seq"]) == (1, 2)
        assert manifest_identity(a) == manifest_identity(b)

    def test_no_registry_flag_skips_recording(self, registry_dir):
        run_solve("--no-registry")
        assert not registry_dir.exists()

    def test_env_var_disables_recording(self, registry_dir, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", "0")
        run_solve()
        assert not registry_dir.exists()

    def test_non_run_commands_record_nothing(self, registry_dir, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["report", missing]) != 0  # report is not registry-wrapped
        assert not registry_dir.exists()


class TestRunsCLI:
    def test_list_show_roundtrip(self, registry_dir, capsys):
        run_solve()
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "run registry (1 manifest(s))" in out
        assert "solve" in out and "ok" in out

        assert main(["runs", "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "command      : repro solve --fast" in out
        assert "config hash" in out
        assert "exploitability" in out

    def test_show_json_parses(self, registry_dir, capsys):
        run_solve()
        capsys.readouterr()
        assert main(["runs", "show", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "solve"

    def test_show_by_run_id_prefix(self, registry_dir, capsys):
        run_solve()
        manifests, _ = RunRegistry(str(registry_dir)).load_all()
        prefix = manifests[0]["run_id"][:6]
        capsys.readouterr()
        assert main(["runs", "show", prefix]) == 0
        assert prefix in capsys.readouterr().out

    def test_show_unknown_ref_exits_2(self, registry_dir, capsys):
        assert main(["runs", "show", "42"]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_list_empty_registry(self, registry_dir, capsys):
        assert main(["runs", "list"]) == 0
        assert "no run manifests recorded" in capsys.readouterr().out

    def test_diff_flags_exactly_the_injected_change(self, registry_dir, capsys):
        run_solve()
        run_solve("--eta1", "0.004")
        capsys.readouterr()
        assert main(["runs", "diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "config changes (1):" in out
        assert "model.eta1" in out

    def test_diff_identical_runs_has_no_config_changes(self, registry_dir, capsys):
        run_solve()
        run_solve()
        capsys.readouterr()
        assert main(["runs", "diff", "1", "2", "--fail-on-regression"]) == 0
        assert "config changes (0):" in capsys.readouterr().out

    def test_corrupt_manifest_warns_but_list_succeeds(self, registry_dir, capsys):
        run_solve()
        (registry_dir / "000002-broken.json").write_bytes(b"\x00garbage")
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        captured = capsys.readouterr()
        assert "warning: skipping" in captured.err
        assert "run registry (1 manifest(s))" in captured.out

    def test_gc_keeps_newest_and_latest_failure(self, registry_dir, capsys):
        run_solve()
        manifests, _ = RunRegistry(str(registry_dir)).load_all()
        failed = dict(manifests[0], status="failed")
        failed.pop("seq"), failed.pop("path")
        RunRegistry(str(registry_dir)).append(failed)
        run_solve()
        run_solve()
        capsys.readouterr()
        assert main(["runs", "gc", "--keep", "1"]) == 0
        assert "removed 2 manifest(s), kept 2" in capsys.readouterr().out
        kept, _ = RunRegistry(str(registry_dir)).load_all()
        assert [(m["seq"], m["status"]) for m in kept] == [
            (2, "failed"), (4, "ok"),
        ]

    def test_gc_negative_keep_exits_2(self, registry_dir, capsys):
        assert main(["runs", "gc", "--keep", "-1"]) == 2
        assert "error" in capsys.readouterr().err


class TestEnvCommand:
    def test_prints_fingerprint_json(self, capsys):
        assert main(["env"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {"python", "numpy", "git_sha", "git_dirty"} <= set(doc)


def write_trajectory(path, values, metric="serial_requests_per_s"):
    doc = {
        "schema": 1,
        "bench": "serve",
        "entries": [
            {"git_sha": None, "dirty": None, "recorded_at": None,
             "metrics": {metric: v}}
            for v in values
        ],
    }
    path.write_text(json.dumps(doc))
    return str(path)


class TestTrendCLI:
    def test_flat_history_passes_gate(self, tmp_path, capsys):
        bench = write_trajectory(tmp_path / "BENCH_serve.json",
                                 [100.0, 100.0, 100.0])
        rc = main(["trend", "--bench", bench, "--no-registry",
                   "--fail-on-regression"])
        assert rc == 0
        assert "no trend regressions" in capsys.readouterr().out

    def test_throughput_drop_fails_gate(self, tmp_path, capsys):
        bench = write_trajectory(tmp_path / "BENCH_serve.json",
                                 [100.0, 100.0, 90.0])
        rc = main(["trend", "--bench", bench, "--no-registry",
                   "--fail-on-regression"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS (1):" in out
        assert "serial_requests_per_s" in out

    def test_drop_reported_but_not_fatal_without_gate_flag(self, tmp_path, capsys):
        bench = write_trajectory(tmp_path / "BENCH_serve.json",
                                 [100.0, 90.0])
        assert main(["trend", "--bench", bench, "--no-registry"]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_malformed_bench_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[]")
        rc = main(["trend", "--bench", str(bad), "--no-registry"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_registry_runs_feed_trend(self, registry_dir, tmp_path,
                                      monkeypatch, capsys):
        run_solve()
        run_solve()
        monkeypatch.chdir(tmp_path)  # keep the glob away from committed BENCHes
        capsys.readouterr()
        assert main(["trend"]) == 0
        out = capsys.readouterr().out
        assert "solve[" in out
        assert "exploitability" in out
        assert "(report-only)" in out

    def test_metric_filter(self, tmp_path, capsys):
        bench = write_trajectory(tmp_path / "BENCH_serve.json", [1.0, 2.0])
        assert main(["trend", "--bench", bench, "--no-registry",
                     "--metric", "no_such_metric"]) == 0
        assert "no trend series found" in capsys.readouterr().out


class TestCompareBenchShapes:
    def test_mixed_legacy_and_trajectory(self, tmp_path, capsys):
        legacy = tmp_path / "BENCH_a.json"
        legacy.write_text(json.dumps({"serial_s": 1.0, "hit_ratio": 0.9}))
        trajectory = write_trajectory(tmp_path / "BENCH_b.json", [100.0])
        rc = main(["compare", str(legacy), str(trajectory), "--bench"])
        assert rc in (0, 1)  # comparison ran; regression verdict irrelevant
        assert "bench" in capsys.readouterr().out.lower()

    def test_trajectory_uses_newest_entry(self, tmp_path, capsys):
        a = write_trajectory(tmp_path / "BENCH_a.json", [1.0], metric="serial_s")
        b = write_trajectory(tmp_path / "BENCH_b.json", [1.0, 2.0],
                             metric="serial_s")
        rc = main(["compare", a, b, "--bench", "--fail-on-regression"])
        assert rc == 1  # the newest entry (2.0) is the candidate
        assert "REGRESSED" in capsys.readouterr().out

    def test_malformed_bench_exits_2(self, tmp_path, capsys):
        good = write_trajectory(tmp_path / "BENCH_a.json", [1.0])
        bad = tmp_path / "BENCH_b.json"
        bad.write_text("{not json")
        assert main(["compare", good, str(bad), "--bench"]) == 2
        assert "error" in capsys.readouterr().err


class TestSideChannelContract:
    def test_normalized_stream_identical_serial_vs_process(
        self, registry_dir, tmp_path
    ):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "process.jsonl"
        assert main(["solve", "--fast", "--telemetry", str(serial)]) == 0
        assert main(["solve", "--fast", "--telemetry", str(parallel),
                     "--backend", "process", "--workers", "2"]) == 0
        assert normalized_events(str(serial)) == normalized_events(str(parallel))
        # ... and both runs recorded manifests while staying identical.
        manifests, _ = RunRegistry(str(registry_dir)).load_all()
        assert len(manifests) == 2
