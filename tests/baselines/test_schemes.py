"""Tests for the caching schemes (MFG-CP and the four baselines)."""

import numpy as np
import pytest

from repro.baselines.base import SchemeDecision
from repro.baselines.mfg_cp import MFGCPScheme
from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.baselines.udcs import UDCSScheme


class TestSchemeDecision:
    def test_clips_tiny_overshoot(self):
        decision = SchemeDecision(caching_rates=np.array([1.0 + 1e-12]))
        assert decision.caching_rates[0] == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            SchemeDecision(caching_rates=np.array([1.5]))


class TestRandomReplacement:
    def test_requires_prepare(self):
        scheme = RandomReplacementScheme()
        with pytest.raises(RuntimeError, match="prepare"):
            scheme.decide(0.0, np.zeros(3), np.zeros(3))

    def test_decisions_uniform(self, fast_config):
        scheme = RandomReplacementScheme()
        scheme.prepare(fast_config, np.random.default_rng(0))
        rates = scheme.decide(0.0, np.zeros(2000), np.zeros(2000)).caching_rates
        assert np.all(rates >= 0.0)
        assert np.all(rates <= 1.0)
        assert rates.mean() == pytest.approx(0.5, abs=0.05)

    def test_own_rng_kept(self, fast_config):
        gen = np.random.default_rng(5)
        scheme = RandomReplacementScheme(rng=gen)
        scheme.prepare(fast_config, np.random.default_rng(99))
        assert scheme._rng is gen

    def test_sharing_participant(self):
        assert RandomReplacementScheme.participates_in_sharing is True


class TestMostPopular:
    def test_caches_popular_until_threshold(self, fast_config):
        scheme = MostPopularScheme(popularity_threshold=0.1)
        scheme.prepare(fast_config, np.random.default_rng(0))  # popularity 0.3
        remaining = np.array([50.0, 15.0])  # threshold alpha*Q = 20
        rates = scheme.decide(0.0, np.zeros(2), remaining).caching_rates
        assert rates[0] == 1.0   # still lacking -> full rate
        assert rates[1] == 0.0   # already cached enough -> stop

    def test_ignores_unpopular_content(self, fast_config):
        scheme = MostPopularScheme(popularity_threshold=0.9)
        scheme.prepare(fast_config, np.random.default_rng(0))
        rates = scheme.decide(0.0, np.zeros(3), np.full(3, 80.0)).caching_rates
        assert np.all(rates == 0.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="popularity_threshold"):
            MostPopularScheme(popularity_threshold=1.5)


class TestMFGCPScheme:
    def test_prepare_solves_once(self, fast_config):
        scheme = MFGCPScheme()
        with pytest.raises(RuntimeError, match="prepare"):
            _ = scheme.equilibrium
        scheme.prepare(fast_config, np.random.default_rng(0))
        first = scheme.equilibrium
        scheme.prepare(fast_config, np.random.default_rng(1))
        assert scheme.equilibrium is first  # idempotent

    def test_injected_equilibrium_reused(self, fast_config, solved_equilibrium):
        scheme = MFGCPScheme(equilibrium=solved_equilibrium)
        scheme.prepare(fast_config, np.random.default_rng(0))
        assert scheme.equilibrium is solved_equilibrium

    def test_decide_matches_policy_lookup(self, fast_config, solved_equilibrium):
        scheme = MFGCPScheme(equilibrium=solved_equilibrium)
        scheme.prepare(fast_config, np.random.default_rng(0))
        h = np.array([5.0, 5.2])
        q = np.array([40.0, 80.0])
        rates = scheme.decide(0.3, h, q).caching_rates
        for i in range(2):
            assert rates[i] == pytest.approx(
                solved_equilibrium.policy(0.3, h[i], q[i])
            )

    def test_sharing_participant(self):
        assert MFGCPScheme.participates_in_sharing is True


class TestMFGNoSharing:
    def test_solver_config_strips_sharing(self, fast_config):
        scheme = MFGNoSharingScheme()
        cfg = scheme._solver_config(fast_config)
        assert cfg.include_sharing is False
        assert scheme.participates_in_sharing is False

    def test_name(self):
        assert MFGNoSharingScheme.name == "MFG"


class TestUDCS:
    def test_solver_config_cost_only(self, fast_config):
        scheme = UDCSScheme()
        cfg = scheme._solver_config(fast_config)
        assert cfg.include_trading is False
        assert cfg.include_sharing is False
        assert scheme.participates_in_sharing is False

    def test_udcs_still_caches(self, fast_config):
        # Cost-only objective: caching is driven by the delay penalty.
        scheme = UDCSScheme()
        scheme.prepare(fast_config, np.random.default_rng(0))
        rates = scheme.decide(
            0.0, np.full(3, 5.0), np.array([40.0, 70.0, 95.0])
        ).caching_rates
        assert rates.max() > 0.1

    def test_describe(self):
        text = UDCSScheme().describe()
        assert "UDCS" in text
        assert "no sharing" in text
