"""Shared fixtures for the benchmark suite.

Each bench regenerates one figure or table of the paper's evaluation
section (see DESIGN.md §4) and prints the same rows/series the paper
reports.  Benches that only need the default single-content
equilibrium share one session-scoped solve.

Telemetry
---------
Run the suite with ``--telemetry-dir DIR`` to let benches that request
the ``bench_telemetry`` fixture stream per-stage timings to
``DIR/<bench-name>.jsonl`` — machine-readable span trees and iteration
events next to the printed output (summarise with
``python -m repro.cli report DIR/<bench-name>.jsonl``).  Without the
flag the fixture is the shared null observer and costs nothing.

BENCH trajectory format
-----------------------
The committed ``BENCH_*.json`` files are **append-only trajectories**,
not overwrite-in-place snapshots.  Each file is a JSON object::

    {
      "schema": 1,
      "bench": "serve",                  # short bench name
      "entries": [                       # oldest first
        {
          "git_sha": "3cc5e61...",        # HEAD when recorded (null if
          "dirty": false,                #   recorded outside a work tree)
          "recorded_at": "2026-08-07T12:00:00+00:00",
          "metrics": {"serial_requests_per_s": 4048437.5, "...": 0}
        }
      ]
    }

Bench ``__main__`` blocks append one entry per invocation through
:func:`append_bench_record` (a thin wrapper over
``repro.obs.trend.append_bench_entry``), which also migrates the
legacy flat-dict shape on first touch.  ``repro trend`` folds the
entries into per-metric time series and ``repro compare --bench``
diffs the newest entries of two files; both reject malformed files
with exit 2.  See ``docs/observability.md`` ("Run registry & trends").
"""

import os

import pytest

from repro.analysis import experiments
from repro.obs import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import make_executor


def pytest_addoption(parser):
    parser.addoption(
        "--telemetry-dir",
        default=None,
        help="write per-bench telemetry JSONL files into this directory",
    )
    parser.addoption(
        "--runtime-backend",
        default="serial",
        help="execution backend for benches that fan work out "
             "('serial' or 'process[:N]'; results are bit-identical)",
    )
    parser.addoption(
        "--batch-sizes",
        default="64,256",
        help="comma list of batched-solver shard widths for the "
             "batch-size axis of bench_runtime_scaling "
             "(the full-catalog single-shard width is always included)",
    )


@pytest.fixture(scope="session")
def equilibrium():
    """The default-config equilibrium shared by Figs. 4, 5 and 9."""
    return experiments.solve_equilibrium()


@pytest.fixture
def bench_executor(request):
    """The executor implied by ``--runtime-backend`` (serial by default)."""
    return make_executor(request.config.getoption("--runtime-backend"))


@pytest.fixture
def batch_sizes(request):
    """The batched-solver shard widths from ``--batch-sizes``."""
    spec = request.config.getoption("--batch-sizes")
    sizes = sorted({int(part) for part in spec.split(",") if part.strip()})
    if not sizes or any(size <= 0 for size in sizes):
        raise pytest.UsageError(
            f"--batch-sizes needs positive integers, got {spec!r}"
        )
    return sizes


@pytest.fixture
def bench_telemetry(request):
    """A per-bench telemetry observer (null unless --telemetry-dir given)."""
    directory = request.config.getoption("--telemetry-dir")
    if directory is None:
        yield NULL_TELEMETRY
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{request.node.name}.jsonl")
    telemetry = SolverTelemetry.to_jsonl(path)
    yield telemetry
    telemetry.close()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def append_bench_record(path, metrics, bench=None):
    """Append one measurement to an append-only BENCH trajectory.

    See the module docstring for the file format.  Returns the full
    trajectory document after the append (atomic tmp+fsync+replace).
    """
    from repro.obs.trend import append_bench_entry

    return append_bench_entry(path, metrics, bench=bench)
