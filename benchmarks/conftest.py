"""Shared fixtures for the benchmark suite.

Each bench regenerates one figure or table of the paper's evaluation
section (see DESIGN.md §4) and prints the same rows/series the paper
reports.  Benches that only need the default single-content
equilibrium share one session-scoped solve.
"""

import pytest

from repro.analysis import experiments


@pytest.fixture(scope="session")
def equilibrium():
    """The default-config equilibrium shared by Figs. 4, 5 and 9."""
    return experiments.solve_equilibrium()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
