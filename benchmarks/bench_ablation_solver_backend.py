"""Ablation — solver backend cross-validation (Godunov FD vs semi-Lagrangian).

Design-choice study: the production equilibrium solver uses explicit
upwind finite differences (monotone Godunov Hamiltonian + conservative
donor-cell FPK); the alternative semi-Lagrangian backend integrates
along characteristics with no CFL restriction.  Both discretise the
same coupled PDE system, so they must land on the same equilibrium —
this bench measures the agreement and the runtimes.
"""

import time

import numpy as np

from repro.analysis.reporting import print_table
from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig
from repro.core.semilagrangian import SLBestResponseIterator
from conftest import run_once


def run_both():
    cfg = MFGCPConfig.fast()
    out = {}
    start = time.perf_counter()
    out["FD"] = (BestResponseIterator(cfg).solve(), time.perf_counter() - start)
    start = time.perf_counter()
    out["SL"] = (SLBestResponseIterator(cfg).solve(), time.perf_counter() - start)
    return out


def test_ablation_solver_backend(benchmark):
    results = run_once(benchmark, run_both)
    fd, fd_time = results["FD"]
    sl, sl_time = results["SL"]

    rows = []
    for name, (res, seconds) in results.items():
        acc = res.accumulated_utility()
        rows.append(
            (
                name,
                seconds,
                res.report.n_iterations,
                float(res.mean_field.mean_q[-1]),
                acc["total"],
            )
        )
    print("\nAblation — solver backend comparison")
    print_table(
        ["backend", "seconds", "iterations", "final mean q", "total utility"],
        rows,
    )

    # Both backends converge and agree on the equilibrium statistics.
    assert fd.report.converged and sl.report.converged
    q_gap = float(np.max(np.abs(fd.mean_field.mean_q - sl.mean_field.mean_q)))
    p_gap = float(np.max(np.abs(fd.mean_field.price - sl.mean_field.price)))
    print(f"  max mean-q gap {q_gap:.2f} MB, max price gap {p_gap:.4f}")
    assert q_gap < 5.0
    assert p_gap < 0.03
    fd_total = fd.accumulated_utility()["total"]
    sl_total = sl.accumulated_utility()["total"]
    assert abs(fd_total - sl_total) < 0.15 * abs(fd_total) + 5.0
