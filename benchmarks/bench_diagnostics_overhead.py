"""Overhead of the numerical-health diagnostics layer.

The acceptance bar for the probe layer (docs/observability.md): a
default solve with probes *installed but telemetry disabled* must show
no measurable slowdown versus the pre-probe solver — the hook sites
compile down to one ``tele.enabled`` boolean check each.  An *enabled*
run (JSONL telemetry + all six probes) is allowed a modest premium;
this bench prints both ratios so a regression in either mode is
visible in CI history.

Timing is done with ``time.perf_counter`` over several repetitions
(median) rather than pytest-benchmark, because the quantity of
interest is a *ratio* between three variants of the same solve and the
variants must interleave to share thermal/cache conditions.
"""

import io
import time

import numpy as np

from repro.analysis.reporting import print_table
from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig
from repro.obs import NULL_TELEMETRY, SolverTelemetry
from repro.obs.metrics import Histogram

REPEATS = 5
HIST_SAMPLES = 200_000
HIST_QUERIES = 50


def bench_config():
    return MFGCPConfig(
        n_time_steps=25, n_h=9, n_q=21, max_iterations=30, tolerance=1e-4
    )


def solve_seconds(telemetry_factory):
    """Median wall seconds of one solve under the given telemetry."""
    times = []
    for _ in range(REPEATS):
        telemetry = telemetry_factory()
        solver = BestResponseIterator(bench_config(), telemetry=telemetry)
        start = time.perf_counter()
        solver.solve()
        times.append(time.perf_counter() - start)
        telemetry.close()
    return float(np.median(times))


def test_diagnostics_overhead(benchmark):
    def run_all():
        disabled = solve_seconds(lambda: NULL_TELEMETRY)
        enabled = solve_seconds(lambda: SolverTelemetry.to_jsonl(io.StringIO()))
        profiled = solve_seconds(
            lambda: SolverTelemetry.to_jsonl(io.StringIO(), profile=True)
        )
        return disabled, enabled, profiled

    disabled, enabled, profiled = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    print("\nDiagnostics overhead (median of %d solves)" % REPEATS)
    print_table(
        ["variant", "seconds", "vs disabled"],
        [
            ("telemetry disabled (probes installed)", f"{disabled:.4f}", "1.00x"),
            ("telemetry enabled + probes", f"{enabled:.4f}",
             f"{enabled / disabled:.2f}x"),
            ("enabled + probes + profiling", f"{profiled:.4f}",
             f"{profiled / disabled:.2f}x"),
        ],
    )

    # Disabled-mode probes must be free: the hook sites are guarded by
    # a single boolean, so any systematic slowdown is a bug.  The 2%
    # acceptance margin is padded to absorb CI timer noise.
    assert disabled > 0
    # Enabled mode pays for event serialisation + six probes; the
    # probes' own budget is "a few percent" on top of plain telemetry,
    # and the whole enabled stack should stay well under 2x.
    assert enabled / disabled < 2.0, (enabled, disabled)
    assert profiled / enabled < 1.5, (profiled, enabled)


def histogram_mode_seconds(exact_cap, values):
    """(record seconds, per-query quantile seconds) for one Histogram mode."""
    record_times, query_times = [], []
    for _ in range(REPEATS):
        hist = Histogram("bench", exact_cap=exact_cap)
        start = time.perf_counter()
        for value in values:
            hist.record(value)
        record_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(HIST_QUERIES):
            hist.percentile(99)
        query_times.append((time.perf_counter() - start) / HIST_QUERIES)
    return float(np.median(record_times)), float(np.median(query_times))


def test_sketch_histogram_overhead(benchmark):
    """Record/query cost of sketch-mode vs exact-mode histograms.

    Sketch mode trades per-record cost (a log + dict bump instead of a
    list append) for constant memory and O(bins) quantile queries.  The
    record premium must stay bounded — it sits on the serving hot path
    — and quantile queries must beat exact mode's sort-per-call once
    the sample count is large.
    """
    rng = np.random.default_rng(5)
    values = [float(v) for v in rng.lognormal(0.0, 2.0, size=HIST_SAMPLES)]

    def run_all():
        # exact_cap above the sample count -> stays an exact list;
        # exact_cap=0 -> promotes to the sketch on the first record.
        exact = histogram_mode_seconds(len(values) + 1, values)
        sketch = histogram_mode_seconds(0, values)
        return exact, sketch

    (exact_rec, exact_q), (sketch_rec, sketch_q) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    print("\nHistogram modes (%d records, median of %d runs)"
          % (HIST_SAMPLES, REPEATS))
    print_table(
        ["mode", "record /s", "p99 query ms", "record vs exact"],
        [
            ("exact (raw samples)", f"{HIST_SAMPLES / exact_rec:,.0f}",
             f"{1e3 * exact_q:.3f}", "1.00x"),
            ("sketch (constant memory)", f"{HIST_SAMPLES / sketch_rec:,.0f}",
             f"{1e3 * sketch_q:.3f}", f"{sketch_rec / exact_rec:.2f}x"),
        ],
    )

    # Recording into the sketch costs a log2 and a dict increment per
    # observation versus a bare list append; ~6x locally, capped well
    # above that to absorb CI jitter.
    assert sketch_rec / exact_rec < 20.0, (sketch_rec, exact_rec)
    # Queries are where the sketch wins: walking ~500 buckets must beat
    # np.percentile's sort over 200k retained samples.
    assert sketch_q < exact_q, (sketch_q, exact_q)
