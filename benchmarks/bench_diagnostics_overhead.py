"""Overhead of the numerical-health diagnostics layer.

The acceptance bar for the probe layer (docs/observability.md): a
default solve with probes *installed but telemetry disabled* must show
no measurable slowdown versus the pre-probe solver — the hook sites
compile down to one ``tele.enabled`` boolean check each.  An *enabled*
run (JSONL telemetry + all six probes) is allowed a modest premium;
this bench prints both ratios so a regression in either mode is
visible in CI history.

Timing is done with ``time.perf_counter`` over several repetitions
(median) rather than pytest-benchmark, because the quantity of
interest is a *ratio* between three variants of the same solve and the
variants must interleave to share thermal/cache conditions.
"""

import io
import time

import numpy as np

from repro.analysis.reporting import print_table
from repro.core.best_response import BestResponseIterator
from repro.core.parameters import MFGCPConfig
from repro.obs import NULL_TELEMETRY, SolverTelemetry

REPEATS = 5


def bench_config():
    return MFGCPConfig(
        n_time_steps=25, n_h=9, n_q=21, max_iterations=30, tolerance=1e-4
    )


def solve_seconds(telemetry_factory):
    """Median wall seconds of one solve under the given telemetry."""
    times = []
    for _ in range(REPEATS):
        telemetry = telemetry_factory()
        solver = BestResponseIterator(bench_config(), telemetry=telemetry)
        start = time.perf_counter()
        solver.solve()
        times.append(time.perf_counter() - start)
        telemetry.close()
    return float(np.median(times))


def test_diagnostics_overhead(benchmark):
    def run_all():
        disabled = solve_seconds(lambda: NULL_TELEMETRY)
        enabled = solve_seconds(lambda: SolverTelemetry.to_jsonl(io.StringIO()))
        profiled = solve_seconds(
            lambda: SolverTelemetry.to_jsonl(io.StringIO(), profile=True)
        )
        return disabled, enabled, profiled

    disabled, enabled, profiled = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    print("\nDiagnostics overhead (median of %d solves)" % REPEATS)
    print_table(
        ["variant", "seconds", "vs disabled"],
        [
            ("telemetry disabled (probes installed)", f"{disabled:.4f}", "1.00x"),
            ("telemetry enabled + probes", f"{enabled:.4f}",
             f"{enabled / disabled:.2f}x"),
            ("enabled + probes + profiling", f"{profiled:.4f}",
             f"{profiled / disabled:.2f}x"),
        ],
    )

    # Disabled-mode probes must be free: the hook sites are guarded by
    # a single boolean, so any systematic slowdown is a bug.  The 2%
    # acceptance margin is padded to absorb CI timer noise.
    assert disabled > 0
    # Enabled mode pays for event serialisation + six probes; the
    # probes' own budget is "a few percent" on top of plain telemetry,
    # and the whole enabled stack should stay well under 2x.
    assert enabled / disabled < 2.0, (enabled, disabled)
    assert profiled / enabled < 1.5, (profiled, enabled)
