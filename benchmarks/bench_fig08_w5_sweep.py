"""Fig. 8 — impact of the placement-cost coefficient w5.

Paper claims reproduced here (mechanism per Eq. (21): w5 scales the
quadratic placement cost and therefore inversely scales the optimal
caching rate):
* a larger ``w5`` suppresses caching, so the remaining space is
  consumed more slowly;
* a larger ``w5`` leads to a higher staleness cost — the EDP spends
  more time acquiring contents from the centre or peers.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig8_w5_sweep(benchmark):
    w5_values = (90.0, 130.0, 170.0, 215.0)  # [0.65, 1.55] x base scale
    data = run_once(benchmark, experiments.fig8_w5_sweep, w5_values=w5_values)

    print("\nFig. 8 — w5 sweep: caching state and staleness cost")
    rows = []
    for w5 in w5_values:
        series = data[w5]
        rows.append(
            (
                f"{w5:.0f}",
                series["mean_q"][0],
                series["mean_q"][-1],
                series["mean_q"][0] - series["mean_q"][-1],
                float(series["accumulated_staleness"][0]),
            )
        )
    print_table(
        ["w5", "mean q(0)", "mean q(T)", "space consumed", "accum. staleness"],
        rows,
    )

    consumed = [data[w5]["mean_q"][0] - data[w5]["mean_q"][-1] for w5 in w5_values]
    staleness = [float(data[w5]["accumulated_staleness"][0]) for w5 in w5_values]

    # Larger w5 => less caching => less space consumed.
    assert all(np.diff(consumed) < 0), f"space consumption must fall with w5: {consumed}"
    # Larger w5 => higher staleness cost.
    assert all(np.diff(staleness) > 0), f"staleness must rise with w5: {staleness}"
