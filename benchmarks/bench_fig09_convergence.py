"""Fig. 9 — convergence of caching state and utility of an EDP.

Paper claims reproduced here:
* trajectories launched from different initial caching states
  ``q_k(0) in [30, 90]`` all stabilise (the equilibrium state);
* the largest initial remaining space has the lowest utility at first
  (it must spend longest caching before earning);
* both the caching state and the utility of an EDP tend to stability.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig9_convergence(benchmark, equilibrium):
    initial_states = (30.0, 50.0, 70.0, 90.0)
    data = run_once(
        benchmark,
        experiments.fig9_convergence,
        initial_states=initial_states,
        result=equilibrium,
    )

    times = data[30.0]["time"]
    stride = max(1, len(times) // 6)
    print("\nFig. 9 — convergence from different initial caching states")
    print_table(
        ["t"] + [f"q(t) from {q0:g}" for q0 in initial_states],
        [
            (f"{times[i]:.2f}", *(data[q0]["caching_state"][i] for q0 in initial_states))
            for i in range(0, len(times), stride)
        ],
    )
    print_table(
        ["t"] + [f"U(t) from {q0:g}" for q0 in initial_states],
        [
            (f"{times[i]:.2f}", *(data[q0]["utility"][i] for q0 in initial_states))
            for i in range(0, len(times), stride)
        ],
    )

    # Lowest initial utility belongs to the largest initial space.
    initial_utils = {q0: data[q0]["utility"][0] for q0 in initial_states}
    assert min(initial_utils, key=initial_utils.get) == 90.0, initial_utils

    # Trajectories stabilise: the late-horizon swing is far smaller than
    # the early-horizon movement for every start.
    half = len(times) // 2
    for q0 in initial_states:
        path = data[q0]["caching_state"]
        early_move = float(np.ptp(path[:half])) + 1e-9
        late_swing = float(np.ptp(path[half:]))
        assert late_swing < 0.5 * early_move, (
            f"q0={q0}: late swing {late_swing:.1f} vs early move {early_move:.1f}"
        )

    # Utility improves from its initial level for the high-q starts.
    assert data[90.0]["utility"][-1] > data[90.0]["utility"][0]
