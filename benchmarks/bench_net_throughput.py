"""Cache-network replay throughput (requests/second).

Replays Zipf(1) demand over a 15-router binary tree under the
equilibrium-driven ``mfg`` placement strategy and reports sustained
network-replay throughput.  Equilibrium solves happen outside the
timed region — the bench measures the hop-by-hop request loop (probe,
serve, placement walk, admission queues), not the solver.  The serial
and a 2-worker process backend are both timed and must produce
bit-identical aggregate reports (the ``repro.runtime`` determinism
contract on the network plane).

Run as a module to record the numbers as JSON for CI trending::

    PYTHONPATH=src python benchmarks/bench_net_throughput.py BENCH_net.json
"""

import sys
import time

from repro.content.workloads import zipf_workload
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.serve.net import NetworkReplayEngine

try:
    from conftest import run_once
except ImportError:  # running as a plain script, outside pytest
    run_once = None

TOPOLOGY = "tree:2x4"
N_CONTENTS = 12
N_REPLICAS = 4
RATE_PER_RECEIVER = 400.0


def timed_replay(engine, strategy="mfg"):
    """One full replay under pre-solved equilibria; returns (report, secs)."""
    t0 = time.perf_counter()
    report = engine.replay(strategy)
    return report, time.perf_counter() - t0


def build(executor=None):
    workload = zipf_workload(
        n_contents=N_CONTENTS, alpha=1.0,
        rate_per_edp=RATE_PER_RECEIVER, seed=0,
    )
    engine = NetworkReplayEngine(
        workload,
        TOPOLOGY,
        n_replicas=N_REPLICAS,
        capacity_fraction=0.1,
        rate_per_receiver=RATE_PER_RECEIVER,
        seed=0,
        executor=executor,
    )
    engine.solve_equilibria()  # outside the timed region
    return engine


def measure():
    """Throughput on both backends plus the determinism check."""
    serial_engine = build(SerialExecutor())
    serial_report, serial_s = timed_replay(serial_engine)

    process_engine = build(ParallelExecutor(workers=2))
    process_report, process_s = timed_replay(process_engine)

    assert serial_report.summary() == process_report.summary(), (
        "serial and process:2 network replays must be bit-identical"
    )
    requests = serial_report.requests
    return {
        "requests": requests,
        "topology": TOPOLOGY,
        "n_contents": N_CONTENTS,
        "n_replicas": N_REPLICAS,
        "strategy": "mfg",
        "hit_ratio": serial_report.hit_ratio,
        "mean_hops": serial_report.mean_hops,
        "rejection_rate": serial_report.rejection_rate,
        "serial_s": serial_s,
        "serial_requests_per_s": requests / serial_s,
        "process2_s": process_s,
        "process2_requests_per_s": requests / process_s,
    }


def test_net_throughput(benchmark):
    engine = build(SerialExecutor())
    report, _ = run_once(benchmark, timed_replay, engine)
    rps = report.requests / benchmark.stats.stats.mean
    print(
        f"\nNetwork replay throughput — {report.requests} requests, "
        f"{TOPOLOGY}, mfg strategy: {rps:,.0f} req/s (serial)"
    )
    assert report.requests > 10_000
    assert rps > 5_000, f"network replay unexpectedly slow: {rps:,.0f} req/s"


if __name__ == "__main__":
    from repro.obs.trend import append_bench_entry

    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_net.json"
    record = measure()
    doc = append_bench_entry(out_path, record, bench="net")
    print(
        f"{record['requests']} requests: "
        f"serial {record['serial_requests_per_s']:,.0f} req/s, "
        f"process:2 {record['process2_requests_per_s']:,.0f} req/s"
    )
    print(f"appended entry {len(doc['entries'])} to {out_path}")
