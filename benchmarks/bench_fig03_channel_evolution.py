"""Fig. 3 — channel gain evolution under the OU fading law.

Paper claims reproduced here:
* each fading path reverts toward its long-term mean ``upsilon_h``;
* a larger ``rho_h`` produces a noisier, less stable trajectory.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import format_series
from conftest import run_once


def test_fig3_channel_evolution(benchmark):
    series = run_once(benchmark, experiments.fig3_channel_evolution)
    times = series.pop("time")

    print("\nFig. 3 — OU channel fading sample paths")
    deviations = {}
    for label, path in sorted(series.items()):
        mean = float(label.split("mean=")[1].split(",")[0])
        tail = path[len(path) // 2 :]
        deviations[label] = float(np.std(tail))
        print(
            f"  {label}: start={path[0]:.2f}, "
            f"tail mean={tail.mean():.3f} (target {mean}), "
            f"tail std={np.std(tail):.3f}"
        )
        # Mean reversion: the tail hugs the long-term mean.
        assert abs(tail.mean() - mean) < 1.0

    # Larger rho_h => larger fluctuation around the mean.
    for mean in (2.0, 5.0, 8.0):
        stds = [deviations[f"mean={mean}, vol={v}"] for v in (0.1, 0.5, 1.0)]
        assert stds[0] < stds[1] < stds[2], f"volatility ordering broken: {stds}"

    print(format_series("  sample path (mean=5.0, vol=0.5)",
                        times, series["mean=5.0, vol=0.5"], every=100))
