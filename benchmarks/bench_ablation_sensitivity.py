"""Ablation — equilibrium sensitivity to the economic parameters.

Design-choice study: which knobs move the equilibrium, and in which
direction.  Central-difference elasticities of the headline outputs
with respect to the pricing and cost parameters; the signs encode the
paper's comparative statics (Figs. 8, 11, 12).
"""

from repro.analysis.reporting import print_table
from repro.analysis.sensitivity import sensitivity_analysis
from conftest import run_once


def test_ablation_sensitivity(benchmark):
    rows = run_once(
        benchmark,
        sensitivity_analysis,
        parameters=("p_hat", "eta1", "eta2", "w5"),
        rel_step=0.1,
    )

    print("\nAblation — equilibrium elasticities")
    outputs = list(rows[0].elasticities)
    print_table(
        ["parameter", "base"] + outputs,
        [
            (r.parameter, r.base_value, *(r.elasticities[k] for k in outputs))
            for r in rows
        ],
    )

    by_name = {r.parameter: r.elasticities for r in rows}
    # The paper's comparative statics, as elasticity signs:
    # higher price cap => more income (Fig. 12's economics);
    assert by_name["p_hat"]["trading_income"] > 0
    # stronger competition conversion => lower price floor (Fig. 11);
    assert by_name["eta1"]["min_price"] < 0
    # costlier placement => less caching => more remaining space (Fig. 8);
    assert by_name["w5"]["final_mean_q"] > 0
    # a heavier delay penalty hurts the net utility.
    assert by_name["eta2"]["total_utility"] < 0
