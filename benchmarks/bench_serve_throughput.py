"""Serving-engine replay throughput (requests/second).

Replays a contended trace (~100k requests over 8 EDPs) under the
equilibrium-driven ``mfg`` policy and reports sustained replay
throughput.  Equilibrium solves happen outside the timed region — the
bench measures the request loop, not the solver.  The serial and a
2-worker process backend are both timed and must produce bit-identical
aggregate reports (the ``repro.runtime`` determinism contract on the
serving plane).

Run as a module to record the numbers as JSON for CI trending::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py BENCH_serve.json
"""

import sys
import time

from repro.content.workloads import video_marketplace
from repro.core.parameters import MFGCPConfig
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.serve import ServingEngine

try:
    from conftest import run_once
except ImportError:  # running as a plain script, outside pytest
    run_once = None

N_EDPS = 8
N_CONTENTS = 8
N_SLOTS = 20
TOTAL_REQUESTS = 100_000


def timed_replay(engine, policy="mfg"):
    """One full replay under pre-solved equilibria; returns (report, secs)."""
    t0 = time.perf_counter()
    report = engine.replay(policy)
    return report, time.perf_counter() - t0


def build(executor=None):
    workload = video_marketplace(n_contents=N_CONTENTS, seed=11)
    config = MFGCPConfig.fast()
    engine = ServingEngine(
        workload,
        N_EDPS,
        config=config,
        n_slots=N_SLOTS,
        rate_per_edp=TOTAL_REQUESTS / (config.horizon * N_EDPS),
        seed=0,
        executor=executor,
    )
    engine.solve_equilibria()  # outside the timed region
    return engine


def measure():
    """Throughput on both backends plus the determinism check."""
    serial_engine = build(SerialExecutor())
    serial_report, serial_s = timed_replay(serial_engine)

    process_engine = build(ParallelExecutor(workers=2))
    process_report, process_s = timed_replay(process_engine)

    assert serial_report.summary() == process_report.summary(), (
        "serial and process:2 replays must be bit-identical"
    )
    requests = serial_report.requests
    return {
        "requests": requests,
        "n_edps": N_EDPS,
        "n_contents": N_CONTENTS,
        "n_slots": N_SLOTS,
        "policy": "mfg",
        "hit_ratio": serial_report.hit_ratio,
        "serial_s": serial_s,
        "serial_requests_per_s": requests / serial_s,
        "process2_s": process_s,
        "process2_requests_per_s": requests / process_s,
    }


def test_serve_throughput(benchmark):
    engine = build(SerialExecutor())
    report, _ = run_once(benchmark, timed_replay, engine)
    rps = report.requests / benchmark.stats.stats.mean
    print(
        f"\nServing throughput — {report.requests} requests, "
        f"{N_EDPS} EDPs, mfg policy: {rps:,.0f} req/s (serial)"
    )
    assert report.requests > 10_000
    assert rps > 10_000, f"replay unexpectedly slow: {rps:,.0f} req/s"


if __name__ == "__main__":
    from repro.obs.trend import append_bench_entry

    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json"
    record = measure()
    doc = append_bench_entry(out_path, record, bench="serve")
    print(
        f"{record['requests']} requests: "
        f"serial {record['serial_requests_per_s']:,.0f} req/s, "
        f"process:2 {record['process2_requests_per_s']:,.0f} req/s"
    )
    print(f"appended entry {len(doc['entries'])} to {out_path}")
