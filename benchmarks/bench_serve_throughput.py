"""Serving-engine replay throughput (requests/second).

Two measurements, one trend record:

* **Materialised replay** — a contended trace (~100k requests over 8
  EDPs) under the equilibrium-driven ``mfg`` policy.  Equilibrium
  solves happen outside the timed region — the bench measures the
  request loop, not the solver.
* **Streaming replay (headline)** — the chunked bounded-memory
  pipeline from ``repro.serve.stream`` at acceptance scale: 10^7+
  requests across 10^3+ EDPs, replayed serially and on a 2-worker
  process backend, with process-lifetime peak RSS recorded alongside
  the throughput (``peak_rss_mb``).  The request volume is ~100x the
  materialised bench; peak memory must not follow it.

Both measurements time the serial and 2-worker process backends and
assert bit-identical aggregate reports (the ``repro.runtime``
determinism contract on the serving plane).

Run as a module to record the numbers as JSON for CI trending::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py BENCH_serve.json
"""

import resource
import sys
import time

from repro.content.workloads import video_marketplace
from repro.core.parameters import MFGCPConfig
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.serve import ServingEngine, ZipfStream, stream_workload

try:
    from conftest import run_once
except ImportError:  # running as a plain script, outside pytest
    run_once = None

N_EDPS = 8
N_CONTENTS = 8
N_SLOTS = 20
TOTAL_REQUESTS = 100_000

# Streaming headline: >= 10^7 requests over >= 10^3 EDPs (the
# bounded-memory acceptance scale).  1024 EDPs x 20 slots x 500 req/slot
# ~= 10.24M expected requests, replayed 8 slots per chunk.
STREAM_N_EDPS = 1024
STREAM_N_CONTENTS = 16
STREAM_N_SLOTS = 20
STREAM_RATE_PER_EDP = 500.0
STREAM_CHUNK_SLOTS = 8


def timed_replay(engine, policy="mfg"):
    """One full replay under pre-solved equilibria; returns (report, secs)."""
    t0 = time.perf_counter()
    report = engine.replay(policy)
    return report, time.perf_counter() - t0


def build(executor=None):
    workload = video_marketplace(n_contents=N_CONTENTS, seed=11)
    config = MFGCPConfig.fast()
    engine = ServingEngine(
        workload,
        N_EDPS,
        config=config,
        n_slots=N_SLOTS,
        rate_per_edp=TOTAL_REQUESTS / (config.horizon * N_EDPS),
        seed=0,
        executor=executor,
    )
    engine.solve_equilibria()  # outside the timed region
    return engine


def build_stream(executor=None, n_edps=STREAM_N_EDPS, n_slots=STREAM_N_SLOTS,
                 rate_per_edp=STREAM_RATE_PER_EDP):
    stream = ZipfStream(
        n_catalog=STREAM_N_CONTENTS,
        n_edps=n_edps,
        n_slots=n_slots,
        dt=1.0,
        rate_per_edp=rate_per_edp,
        seed=0,
    )
    return ServingEngine(
        stream_workload(stream),
        n_edps,
        capacity_fraction=0.3,
        stream=stream,
        stream_chunk=STREAM_CHUNK_SLOTS,
        executor=executor,
    )


def peak_rss_mb():
    """Process-lifetime resident high-water mark, in MB.

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak /= 1024
    return peak / 1024


def measure():
    """Throughput on both backends plus the determinism check."""
    serial_engine = build(SerialExecutor())
    serial_report, serial_s = timed_replay(serial_engine)

    process_engine = build(ParallelExecutor(workers=2))
    process_report, process_s = timed_replay(process_engine)

    assert serial_report.summary() == process_report.summary(), (
        "serial and process:2 replays must be bit-identical"
    )
    requests = serial_report.requests
    return {
        "requests": requests,
        "n_edps": N_EDPS,
        "n_contents": N_CONTENTS,
        "n_slots": N_SLOTS,
        "policy": "mfg",
        "hit_ratio": serial_report.hit_ratio,
        "serial_s": serial_s,
        "serial_requests_per_s": requests / serial_s,
        "process2_s": process_s,
        "process2_requests_per_s": requests / process_s,
    }


def measure_stream():
    """Headline streaming replay: 10^7+ requests, 10^3+ EDPs, flat RSS."""
    serial_report, serial_s = timed_replay(build_stream(SerialExecutor()), "lru")
    process_report, process_s = timed_replay(
        build_stream(ParallelExecutor(workers=2)), "lru"
    )
    assert serial_report.summary() == process_report.summary(), (
        "serial and process:2 streaming replays must be bit-identical"
    )
    requests = serial_report.requests
    assert requests >= 10_000_000, f"headline below 10^7 requests: {requests}"
    assert STREAM_N_EDPS >= 1_000
    return {
        "stream_requests": requests,
        "stream_n_edps": STREAM_N_EDPS,
        "stream_chunk_slots": STREAM_CHUNK_SLOTS,
        "stream_hit_ratio": serial_report.hit_ratio,
        "stream_serial_s": serial_s,
        "stream_serial_requests_per_s": requests / serial_s,
        "stream_process2_s": process_s,
        "stream_process2_requests_per_s": requests / process_s,
        "peak_rss_mb": peak_rss_mb(),
    }


def test_serve_throughput(benchmark):
    engine = build(SerialExecutor())
    report, _ = run_once(benchmark, timed_replay, engine)
    rps = report.requests / benchmark.stats.stats.mean
    print(
        f"\nServing throughput — {report.requests} requests, "
        f"{N_EDPS} EDPs, mfg policy: {rps:,.0f} req/s (serial)"
    )
    assert report.requests > 10_000
    assert rps > 10_000, f"replay unexpectedly slow: {rps:,.0f} req/s"


def test_stream_throughput(benchmark):
    # A scaled-down streamed replay for the pytest-benchmark path; the
    # full 10^7-request headline runs in the __main__ trend recording.
    engine = build_stream(SerialExecutor(), n_edps=64, rate_per_edp=100.0)
    report, _ = run_once(benchmark, timed_replay, engine, "lru")
    rps = report.requests / benchmark.stats.stats.mean
    print(
        f"\nStreaming throughput — {report.requests} requests, "
        f"64 EDPs, lru policy: {rps:,.0f} req/s (serial, chunked)"
    )
    assert report.requests > 100_000
    assert rps > 50_000, f"streamed replay unexpectedly slow: {rps:,.0f} req/s"


if __name__ == "__main__":
    from repro.obs.trend import append_bench_entry

    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json"
    record = measure()
    record.update(measure_stream())
    doc = append_bench_entry(out_path, record, bench="serve")
    print(
        f"{record['requests']} requests: "
        f"serial {record['serial_requests_per_s']:,.0f} req/s, "
        f"process:2 {record['process2_requests_per_s']:,.0f} req/s"
    )
    print(
        f"{record['stream_requests']} streamed requests over "
        f"{record['stream_n_edps']} EDPs: "
        f"serial {record['stream_serial_requests_per_s']:,.0f} req/s, "
        f"process:2 {record['stream_process2_requests_per_s']:,.0f} req/s, "
        f"peak RSS {record['peak_rss_mb']:.0f} MB"
    )
    print(f"appended entry {len(doc['entries'])} to {out_path}")
