"""Ablation — mean-field accuracy vs population size.

Design-choice study (DESIGN.md §4, extras): the mean-field game
replaces the M-player interaction with a population density; the
approximation error should shrink as M grows (the propagation-of-chaos
property behind Eq. (14)).  This bench measures the gap between the
FPK prediction and finite populations of increasing size.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_ablation_meanfield_gap(benchmark, bench_executor):
    sizes = (25, 50, 100, 200)
    rows = run_once(
        benchmark,
        experiments.ablation_meanfield_gap,
        population_sizes=sizes,
        executor=bench_executor,
    )

    print("\nAblation — mean-field gap vs population size M")
    print_table(["M", "mean-q RMSE (MB)", "price RMSE"], rows)

    q_gaps = [r[1] for r in rows]
    p_gaps = [r[2] for r in rows]
    # The largest population tracks the mean field best; the smallest
    # worst (allowing for Monte-Carlo noise in between).
    assert q_gaps[-1] < q_gaps[0], q_gaps
    assert p_gaps[-1] < p_gaps[0], p_gaps
    # Absolute quality at M=200: within a few MB and a cent.
    assert q_gaps[-1] < 4.0
    assert p_gaps[-1] < 0.01
