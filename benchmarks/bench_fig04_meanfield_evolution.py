"""Fig. 4 — evolution of the mean-field distribution at equilibrium.

Paper claims reproduced here:
* at a fixed time the density over remaining space is single-peaked
  (rises then falls in ``q``);
* over time the mass at large remaining space (60-70 MB) vanishes
  while the mass near 30 MB grows — space utilisation improves as EDPs
  cache more popular/urgent content.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig4_meanfield_evolution(benchmark, equilibrium):
    data = run_once(
        benchmark, experiments.fig4_meanfield_evolution, result=equilibrium
    )
    times, q_axis, density = data["time"], data["q"], data["density"]

    print("\nFig. 4 — marginal density lambda(t, q) at equilibrium")
    probe_qs = (30.0, 50.0, 60.0, 70.0)
    idx = {q: int(np.argmin(np.abs(q_axis - q))) for q in probe_qs}
    stride = max(1, len(times) // 6)
    rows = []
    for ti in range(0, len(times), stride):
        rows.append(
            (f"{times[ti]:.2f}", *(density[ti, idx[q]] for q in probe_qs))
        )
    print_table(["t"] + [f"density @q={q:g}MB" for q in probe_qs], rows)

    # Mass conservation at every reporting time.
    dq = q_axis[1] - q_axis[0]
    masses = density.sum(axis=1) * dq
    assert np.allclose(masses, 1.0, atol=0.05), masses

    # 60-70 MB mass vanishes; 30 MB mass rises (the paper's trend).
    assert density[-1, idx[70.0]] < 0.25 * density[0, idx[70.0]], (
        "density at q=70MB should collapse over time"
    )
    assert density[-1, idx[60.0]] < 0.6 * density[0, idx[60.0]], (
        "density at q=60MB should shrink over time"
    )
    assert density[-1, idx[30.0]] > density[0, idx[30.0]], (
        "density at q=30MB should grow over time"
    )

    mean_q = data["mean_q"]
    print(f"  mean remaining space: {mean_q[0]:.1f} MB -> {mean_q[-1]:.1f} MB")
    assert mean_q[-1] < mean_q[0]
