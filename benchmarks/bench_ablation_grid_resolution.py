"""Ablation — finite-difference grid refinement.

Design-choice study: the reproduction's headline statistics (final
population cache state, accumulated utility) must be stable under grid
refinement, i.e. the coupled HJB-FPK discretisation is converged at the
default resolution.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_ablation_grid_resolution(benchmark):
    resolutions = ((30, 7, 19), (40, 9, 25), (60, 12, 35), (100, 15, 45))
    rows = run_once(
        benchmark, experiments.ablation_grid_resolution, resolutions=resolutions
    )

    print("\nAblation — grid resolution (n_t x n_h x n_q)")
    print_table(["grid", "final mean q (MB)", "total utility", "iterations"], rows)

    final_qs = np.array([r[1] for r in rows])
    utilities = np.array([r[2] for r in rows])

    # The two finest grids agree closely on both statistics...
    assert abs(final_qs[-1] - final_qs[-2]) < 3.0, final_qs
    assert abs(utilities[-1] - utilities[-2]) < 0.15 * abs(utilities[-1]) + 5.0, utilities
    # ...and even the coarsest grid stays in the same regime.
    assert abs(final_qs[0] - final_qs[-1]) < 10.0, final_qs
