"""Ablation — best-response damping factor.

Design-choice study: Alg. 2's damped update
``x <- (1 - beta) x + beta x_new`` realises the Theorem 2 contraction;
this bench records the convergence behaviour across relaxation factors
(all should reach the same unique fixed point).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_ablation_damping(benchmark):
    betas = (0.25, 0.5, 0.75, 1.0)
    rows = run_once(benchmark, experiments.ablation_damping, damping_values=betas)

    print("\nAblation — Alg. 2 damping factor")
    print_table(
        ["damping", "converged", "iterations", "final policy change"],
        [(f"{b:g}", str(c), n, f) for b, c, n, f in rows],
    )

    # Every relaxation level converges on this problem (the mapping is
    # a genuine contraction, Thm. 2).
    for beta, converged, n_iter, final in rows:
        assert converged, f"damping={beta} failed to converge"

    # Heavier damping needs more iterations than the undamped update.
    iters = {b: n for b, _, n, _ in rows}
    assert iters[0.25] >= iters[1.0], iters
