"""Fig. 14 — utility and trading income per scheme.

Paper claims reproduced here:
* the utility of MFG-CP surpasses every compared algorithm (the paper
  reports 2.76x MPC and 1.57x UDCS on its testbed; the shape — who
  wins, by a clear margin — is the reproduction target);
* the trading income gap between MFG-CP and MFG is small, but MFG-CP's
  staleness cost is lower, so its utility is higher.
"""

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig14_scheme_comparison(benchmark, bench_executor):
    rows = run_once(
        benchmark,
        experiments.fig14_scheme_comparison,
        n_edps=100,
        executor=bench_executor,
    )

    print("\nFig. 14 — scheme comparison (M = 100 EDPs)")
    print_table(["scheme", "utility", "trading income", "staleness cost"], rows)

    per = {name: (u, inc, stale) for name, u, inc, stale in rows}

    # MFG-CP wins on utility against every baseline.
    for baseline in ("MFG", "UDCS", "MPC", "RR"):
        assert per["MFG-CP"][0] > per[baseline][0], (
            f"MFG-CP should beat {baseline}: "
            f"{per['MFG-CP'][0]:.1f} vs {per[baseline][0]:.1f}"
        )

    # The paper's ratio story, directionally: clear margins over the
    # market-blind baselines.
    ratio_mpc = per["MFG-CP"][0] / per["MPC"][0]
    ratio_udcs = per["MFG-CP"][0] / per["UDCS"][0]
    print(f"  utility ratios: MFG-CP/MPC = {ratio_mpc:.2f} (paper 2.76), "
          f"MFG-CP/UDCS = {ratio_udcs:.2f} (paper 1.57)")
    assert ratio_mpc > 1.1
    assert ratio_udcs > 1.05

    # Small income gap vs MFG, lower staleness for MFG-CP.
    assert per["MFG-CP"][1] <= per["MFG"][1] * 1.05
    assert per["MFG-CP"][2] < per["MFG"][2]
