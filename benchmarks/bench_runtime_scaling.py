"""Runtime scaling — serial vs process-pool vs batched epoch solves.

The Alg. 1 epoch loop solves one independent HJB-FPK equilibrium per
active content, so an epoch over a K-content catalog is the
reproduction's natural parallelism unit.  This bench times the same
multi-content epoch under the serial backend and a 4-worker process
pool, checks the two backends produce *bit-identical* equilibria (the
``repro.runtime`` determinism contract), and reports the speedup.

The speedup assertion only fires on hosts with enough cores — a
process pool cannot beat serial execution on a 1-CPU box, where the
bench still verifies the determinism contract.

``test_batched_solver_scaling`` adds the batch-size axis: a
256-content catalog solved per content (scalar serial baseline) and
through the batched tensor pipeline at each ``--batch-sizes`` width.
The single-shard run (batch size = catalog size) must be at least 5x
faster than the per-content serial path while staying bit-identical.
"""

import os
import time

import numpy as np

from repro.content.catalog import ContentCatalog
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver
from repro.runtime import ParallelExecutor, SerialExecutor
from conftest import run_once

N_CONTENTS = 8
WORKERS = 4

BATCH_CONTENTS = 256
BATCH_SPEEDUP_FLOOR = 5.0


def _run_epoch(executor):
    """One multi-content epoch under the given backend.

    The request process is rebuilt per run so both backends consume an
    identical request trace.
    """
    catalog = ContentCatalog.uniform(N_CONTENTS, size_mb=100.0)
    requests = RequestProcess(
        n_contents=N_CONTENTS,
        rate_per_edp=40.0,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=np.random.default_rng(0),
    )
    solver = MFGCPSolver(MFGCPConfig.fast(), executor=executor)
    return solver.run_epochs(catalog, requests, n_epochs=1)


def _epoch_fingerprint(results):
    """Every array an epoch result exposes, for bit-level comparison."""
    out = {}
    for res in results:
        out[f"epoch{res.epoch}/popularity"] = res.popularity
        out[f"epoch{res.epoch}/timeliness"] = res.timeliness
        for k, eq in res.equilibria.items():
            out[f"epoch{res.epoch}/content{k}/policy"] = eq.policy.table
            out[f"epoch{res.epoch}/content{k}/density"] = eq.density
            out[f"epoch{res.epoch}/content{k}/price"] = eq.mean_field.price
    return out


def test_runtime_scaling(benchmark):
    import time

    t0 = time.perf_counter()
    serial_results = _run_epoch(SerialExecutor())
    serial_s = time.perf_counter() - t0

    parallel = ParallelExecutor(workers=WORKERS)
    t0 = time.perf_counter()
    parallel_results = run_once(benchmark, _run_epoch, parallel)
    parallel_s = time.perf_counter() - t0

    # Determinism contract: bit-identical equilibria on both backends.
    serial_fp = _epoch_fingerprint(serial_results)
    parallel_fp = _epoch_fingerprint(parallel_results)
    assert serial_fp.keys() == parallel_fp.keys()
    for key in serial_fp:
        assert np.array_equal(serial_fp[key], parallel_fp[key]), (
            f"{key} differs between serial and process backends"
        )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print(
        f"\nRuntime scaling — {N_CONTENTS}-content epoch: "
        f"serial {serial_s:.2f}s, process:{WORKERS} {parallel_s:.2f}s "
        f"(x{speedup:.2f} on {cores} cores)"
    )

    # A pool cannot outrun serial execution without spare cores; only
    # hold the speedup floor where the hardware can deliver it.
    if cores >= WORKERS:
        assert speedup > 1.5, (
            f"expected >1.5x speedup with {WORKERS} workers on "
            f"{cores} cores, got x{speedup:.2f}"
        )


def _run_batched_epoch(solver_batching=False, batch_size=BATCH_CONTENTS):
    """One epoch over a 256-content catalog (coarse per-content grids).

    The request rate is set so even the Zipf tail expects double-digit
    request counts — the whole catalog lands in the active set and the
    scalar-vs-batched comparison covers all 256 contents.
    """
    rng = np.random.default_rng(0)
    catalog = ContentCatalog.from_sizes(rng.uniform(50.0, 150.0, BATCH_CONTENTS))
    config = MFGCPConfig(
        n_time_steps=20, n_h=5, n_q=13, max_iterations=10, tolerance=1e-3
    )
    requests = RequestProcess(
        n_contents=BATCH_CONTENTS,
        rate_per_edp=20_000.0 / config.horizon,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=np.random.default_rng(1),
    )
    solver = MFGCPSolver(config, executor=SerialExecutor())
    return solver.run_epochs(
        catalog,
        requests,
        n_epochs=1,
        solver_batching=solver_batching,
        batch_size=batch_size,
    )


def test_batched_solver_scaling(benchmark, batch_sizes):
    t0 = time.perf_counter()
    scalar_results = _run_batched_epoch()
    scalar_s = time.perf_counter() - t0
    scalar_fp = _epoch_fingerprint(scalar_results)
    n_active = len(scalar_results[0].active_contents)
    assert n_active == BATCH_CONTENTS, (
        f"expected the whole catalog active, got {n_active}"
    )

    print(
        f"\nBatched solver scaling — {BATCH_CONTENTS}-content epoch: "
        f"per-content serial {scalar_s:.2f}s"
    )
    # The --batch-sizes axis, largest last so the benchmark fixture
    # times the single-shard run the acceptance floor applies to.
    axis = sorted(set(batch_sizes) | {BATCH_CONTENTS})
    speedups = {}
    for width in axis:
        runner = (
            (lambda: run_once(
                benchmark, _run_batched_epoch,
                solver_batching=True, batch_size=width,
            ))
            if width == axis[-1]
            else (lambda: _run_batched_epoch(
                solver_batching=True, batch_size=width,
            ))
        )
        t0 = time.perf_counter()
        batched_results = runner()
        batched_s = time.perf_counter() - t0
        batched_fp = _epoch_fingerprint(batched_results)
        assert scalar_fp.keys() == batched_fp.keys()
        for key in scalar_fp:
            assert np.array_equal(scalar_fp[key], batched_fp[key]), (
                f"{key} differs between scalar and batch_size={width}"
            )
        speedups[width] = scalar_s / batched_s if batched_s > 0 else float("inf")
        shards = -(-BATCH_CONTENTS // width)
        print(
            f"  batch_size {width:>4} ({shards:>3} shard(s)): "
            f"{batched_s:.2f}s (x{speedups[width]:.1f})"
        )

    single_shard = speedups[BATCH_CONTENTS]
    assert single_shard >= BATCH_SPEEDUP_FLOOR, (
        f"single-shard batched solve must be >= {BATCH_SPEEDUP_FLOOR}x the "
        f"per-content serial path, got x{single_shard:.1f}"
    )
