"""Fig. 6 — mean-field heat map under different content sizes Q_k.

Paper claims reproduced here:
* the caching space "gradually reaches saturation" as ``Q_k`` grows —
  a larger content leaves a larger absolute remaining space while the
  policy keeps the relative occupancy comparable;
* the density stays concentrated around its (moving) mode.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import format_heatmap, print_table
from conftest import run_once


def test_fig6_heatmap_qk(benchmark):
    data = run_once(
        benchmark,
        experiments.fig67_heatmap,
        content_sizes=(60.0, 80.0, 100.0, 120.0),
        initial_std_fraction=0.1,
    )

    print("\nFig. 6 — mean-field heat map, lambda(0) ~ N(0.7 Q, (0.1 Q)^2)")
    rows = []
    final_fractions = {}
    for q_size, series in sorted(data.items()):
        mean_q = series["mean_q"]
        final_fractions[q_size] = mean_q[-1] / q_size
        rows.append(
            (f"{q_size:.0f}", mean_q[0], mean_q[len(mean_q) // 2], mean_q[-1],
             mean_q[-1] / q_size)
        )
    print_table(
        ["Q_k (MB)", "mean q(0)", "mean q(T/2)", "mean q(T)", "final q/Q_k"],
        rows,
    )

    # Larger Q_k leaves a larger absolute remaining space (saturation).
    finals = [data[q]["mean_q"][-1] for q in sorted(data)]
    assert all(np.diff(finals) > 0), f"absolute remaining space must grow: {finals}"

    # ... while relative occupancy stays within a comparable band.
    fracs = list(final_fractions.values())
    assert max(fracs) - min(fracs) < 0.25, fracs

    # Every run reduced the remaining space from its initial level.
    for q_size, series in data.items():
        assert series["mean_q"][-1] < series["mean_q"][0]

    # Render the Q_k = 100 MB heat map itself (time on rows, q on
    # columns — the paper's Fig. 6 panel).
    series = data[100.0]
    stride = max(1, len(series["time"]) // 10)
    print(
        format_heatmap(
            series["density"][::stride],
            series["time"][::stride],
            series["q"],
            title="\n  lambda(t, q) heat map, Q_k = 100 MB (rows: t, cols: q)",
        )
    )
