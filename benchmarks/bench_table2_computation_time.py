"""Table II — computation time (seconds) vs number of EDPs.

Paper claims reproduced here:
* MFG-CP's per-epoch computation time is essentially flat in ``M`` —
  the mean-field solve replaces all per-EDP interactions;
* RR's and MPC's decision loops grow linearly with ``M``, so their
  advantage at small populations erodes as the system scales (the
  paper's crossover: RR overtakes MFG-CP's cost around M ~ 100 on its
  testbed; the flat-vs-linear shape is the reproduction target).

``test_batched_epoch_computation_time`` extends the table with the
solver-side axis the paper's O(K psi) remark leaves implicit: the
K-content equilibrium solve itself, per content (scalar) vs one
batched tensor sweep over the whole catalog.  Run as a module to
record that comparison as JSON for CI trending::

    PYTHONPATH=src python benchmarks/bench_table2_computation_time.py BENCH_batch.json
"""

import sys
import time

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from repro.content.catalog import ContentCatalog
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver
from repro.runtime import SerialExecutor

try:
    from conftest import run_once
except ImportError:  # running as a plain script, outside pytest
    run_once = None

BATCH_CATALOG = 64
"""Catalog size for the scalar-vs-batched wall-clock comparison —
small enough to keep the committed baseline cheap to regenerate,
large enough that the batched sweep's advantage is unambiguous."""


def test_table2_computation_time(benchmark, bench_telemetry, bench_executor):
    sizes = (50, 100, 200, 300)
    rows = run_once(
        benchmark,
        experiments.table2_computation_time,
        population_sizes=sizes,
        telemetry=bench_telemetry if bench_telemetry.enabled else None,
        executor=bench_executor,
    )

    print("\nTable II — computation time (seconds)")
    by_scheme = {}
    for scheme, m, seconds in rows:
        by_scheme.setdefault(scheme, {})[m] = seconds
    print_table(
        ["Methods \\ Number"] + [str(m) for m in sizes],
        [
            (scheme, *(by_scheme[scheme][m] for m in sizes))
            for scheme in ("MFG-CP", "RR", "MPC")
        ],
    )

    # MFG-CP: flat in M (within noise).
    mfg = np.array([by_scheme["MFG-CP"][m] for m in sizes])
    assert mfg.max() < 2.5 * mfg.min(), f"MFG-CP should be ~flat in M: {mfg}"

    # RR and MPC: cost grows with the population.
    for scheme in ("RR", "MPC"):
        series = np.array([by_scheme[scheme][m] for m in sizes])
        assert series[-1] > 2.0 * series[0], f"{scheme} should scale with M: {series}"

    # Scaling comparison: RR's M=300/M=50 growth factor dwarfs MFG-CP's.
    rr_growth = by_scheme["RR"][300] / by_scheme["RR"][50]
    mfg_growth = by_scheme["MFG-CP"][300] / by_scheme["MFG-CP"][50]
    print(f"  growth factors M=50 -> 300: RR x{rr_growth:.1f}, MFG-CP x{mfg_growth:.1f}")
    assert rr_growth > 2.0 * mfg_growth


def _equilibria_fingerprint(results):
    """Every array an epoch result exposes, for bit-level comparison."""
    out = {}
    for res in results:
        for k, eq in res.equilibria.items():
            out[f"epoch{res.epoch}/content{k}/value"] = eq.value
            out[f"epoch{res.epoch}/content{k}/policy"] = eq.policy.table
            out[f"epoch{res.epoch}/content{k}/density"] = eq.density
            out[f"epoch{res.epoch}/content{k}/price"] = eq.mean_field.price
    return out


def _mfgcp_epoch(solver_batching=False):
    """One MFG-CP epoch over a ``BATCH_CATALOG``-content catalog.

    Inputs are rebuilt per call so the scalar and batched runs consume
    identical catalogs and request traces; returns ``(results, secs)``.
    The request rate keeps the whole catalog in the active set so the
    comparison covers every content.
    """
    rng = np.random.default_rng(0)
    catalog = ContentCatalog.from_sizes(rng.uniform(50.0, 150.0, BATCH_CATALOG))
    config = MFGCPConfig(
        n_time_steps=20, n_h=5, n_q=13, max_iterations=10, tolerance=1e-3
    )
    requests = RequestProcess(
        n_contents=BATCH_CATALOG,
        rate_per_edp=5_000.0 / config.horizon,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=np.random.default_rng(1),
    )
    solver = MFGCPSolver(config, executor=SerialExecutor())
    t0 = time.perf_counter()
    results = solver.run_epochs(
        catalog,
        requests,
        n_epochs=1,
        solver_batching=solver_batching,
        batch_size=BATCH_CATALOG,
    )
    return results, time.perf_counter() - t0


def measure_batched():
    """Scalar vs batched epoch wall-clock, with the bit-identity check."""
    scalar_results, scalar_s = _mfgcp_epoch()
    batched_results, batched_s = _mfgcp_epoch(solver_batching=True)

    scalar_fp = _equilibria_fingerprint(scalar_results)
    batched_fp = _equilibria_fingerprint(batched_results)
    assert scalar_fp.keys() == batched_fp.keys()
    for key in scalar_fp:
        assert np.array_equal(scalar_fp[key], batched_fp[key]), (
            f"{key} differs between the scalar and batched solvers"
        )

    n_active = len(scalar_results[0].active_contents)
    assert n_active == BATCH_CATALOG, (
        f"expected the whole catalog active, got {n_active}"
    )
    return {
        "n_contents": BATCH_CATALOG,
        "n_active": n_active,
        "batch_size": BATCH_CATALOG,
        "n_shards": 1,
        "scalar_s": scalar_s,
        "scalar_s_per_content": scalar_s / n_active,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
    }


def test_batched_epoch_computation_time(benchmark):
    record = run_once(benchmark, measure_batched)

    print(
        f"\nMFG-CP epoch solver — {record['n_contents']} contents, "
        "scalar vs batched (wall-clock seconds)"
    )
    print_table(
        ["Solver", "seconds", "s / content"],
        [
            (
                "per-content scalar",
                record["scalar_s"],
                record["scalar_s_per_content"],
            ),
            (
                "batched (1 shard)",
                record["batched_s"],
                record["batched_s"] / record["n_contents"],
            ),
        ],
    )
    print(f"  batched speedup: x{record['speedup']:.1f}")

    # The 5x acceptance floor lives in bench_runtime_scaling (256
    # contents); this smaller catalog just has to show a clear win.
    assert record["speedup"] > 2.0, (
        f"batched epoch should clearly beat scalar, got x{record['speedup']:.1f}"
    )


if __name__ == "__main__":
    from repro.obs.trend import append_bench_entry

    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_batch.json"
    record = measure_batched()
    doc = append_bench_entry(out_path, record, bench="batch")
    print(
        f"{record['n_contents']} contents: scalar {record['scalar_s']:.2f}s, "
        f"batched {record['batched_s']:.2f}s (x{record['speedup']:.1f})"
    )
    print(f"appended entry {len(doc['entries'])} to {out_path}")
