"""Table II — computation time (seconds) vs number of EDPs.

Paper claims reproduced here:
* MFG-CP's per-epoch computation time is essentially flat in ``M`` —
  the mean-field solve replaces all per-EDP interactions;
* RR's and MPC's decision loops grow linearly with ``M``, so their
  advantage at small populations erodes as the system scales (the
  paper's crossover: RR overtakes MFG-CP's cost around M ~ 100 on its
  testbed; the flat-vs-linear shape is the reproduction target).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_table2_computation_time(benchmark, bench_telemetry, bench_executor):
    sizes = (50, 100, 200, 300)
    rows = run_once(
        benchmark,
        experiments.table2_computation_time,
        population_sizes=sizes,
        telemetry=bench_telemetry if bench_telemetry.enabled else None,
        executor=bench_executor,
    )

    print("\nTable II — computation time (seconds)")
    by_scheme = {}
    for scheme, m, seconds in rows:
        by_scheme.setdefault(scheme, {})[m] = seconds
    print_table(
        ["Methods \\ Number"] + [str(m) for m in sizes],
        [
            (scheme, *(by_scheme[scheme][m] for m in sizes))
            for scheme in ("MFG-CP", "RR", "MPC")
        ],
    )

    # MFG-CP: flat in M (within noise).
    mfg = np.array([by_scheme["MFG-CP"][m] for m in sizes])
    assert mfg.max() < 2.5 * mfg.min(), f"MFG-CP should be ~flat in M: {mfg}"

    # RR and MPC: cost grows with the population.
    for scheme in ("RR", "MPC"):
        series = np.array([by_scheme[scheme][m] for m in sizes])
        assert series[-1] > 2.0 * series[0], f"{scheme} should scale with M: {series}"

    # Scaling comparison: RR's M=300/M=50 growth factor dwarfs MFG-CP's.
    rr_growth = by_scheme["RR"][300] / by_scheme["RR"][50]
    mfg_growth = by_scheme["MFG-CP"][300] / by_scheme["MFG-CP"][50]
    print(f"  growth factors M=50 -> 300: RR x{rr_growth:.1f}, MFG-CP x{mfg_growth:.1f}")
    assert rr_growth > 2.0 * mfg_growth
