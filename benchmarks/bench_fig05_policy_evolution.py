"""Fig. 5 — evolution of the optimal caching policy at equilibrium.

Paper claims reproduced here:
* at a fixed time the optimal caching rate increases with the caching
  state (more remaining space => cache more);
* over time the caching rate decreases when the remaining space is
  small (e.g. q = 10 MB), while it stays high while space is ample.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig5_policy_evolution(benchmark, equilibrium):
    data = run_once(
        benchmark, experiments.fig5_policy_evolution, result=equilibrium
    )
    times, q_axis = data["time"], data["q"]

    print("\nFig. 5 — equilibrium caching policy x*(t, q)")
    profile = data["policy_q_profile_t0"]
    stride = max(1, len(q_axis) // 8)
    print_table(
        ["q (MB)", "x*(t=0, q)", "x*(t=T/2, q)"],
        [
            (f"{q_axis[i]:.0f}", profile[i], data["policy_q_profile_mid"][i])
            for i in range(0, len(q_axis), stride)
        ],
    )

    # Increasing in q at t=0 (weakly, away from the boundary rows).
    interior = profile[1:-1]
    assert np.all(np.diff(interior) >= -0.05), (
        f"policy should increase with caching state, got {interior}"
    )
    assert interior[-1] > interior[0], "policy must grow from low q to high q"

    # Over time: the small-state policy decays toward zero.
    q10 = data["q=10"]
    stride_t = max(1, len(times) // 6)
    print_table(
        ["t"] + [f"x* @q={q:g}" for q in (10, 30, 50)],
        [
            (f"{times[i]:.2f}", data["q=10"][i], data["q=30"][i], data["q=50"][i])
            for i in range(0, len(times), stride_t)
        ],
    )
    assert q10[-1] <= 0.05, "terminal policy must vanish (V(T)=0)"
    assert q10.max() > 0.2, "early policy at q=10 should be active"
