"""Fig. 7 — mean-field heat map with a tighter initial distribution.

Paper claims reproduced here:
* decreasing the initial standard deviation from 0.1 to 0.05 makes the
  heat map "more concentrated" — the caching states among EDPs stay
  closer together;
* the trend across ``Q_k`` matches Fig. 6.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def _density_spread(series) -> float:
    """Std of the final marginal density over q."""
    q = series["q"]
    density = series["density"][-1]
    dq = q[1] - q[0]
    mass = density.sum() * dq
    mean = (q * density).sum() * dq / mass
    var = ((q - mean) ** 2 * density).sum() * dq / mass
    return float(np.sqrt(var))


def test_fig7_heatmap_std(benchmark):
    def both_stds():
        return {
            0.1: experiments.fig67_heatmap(
                content_sizes=(80.0, 100.0), initial_std_fraction=0.1
            ),
            0.05: experiments.fig67_heatmap(
                content_sizes=(80.0, 100.0), initial_std_fraction=0.05
            ),
        }

    data = run_once(benchmark, both_stds)

    print("\nFig. 7 — heat map concentration under initial std 0.1 vs 0.05")
    rows = []
    for std, per_qk in sorted(data.items()):
        for q_size, series in sorted(per_qk.items()):
            rows.append(
                (f"{std:g}", f"{q_size:.0f}", series["mean_q"][-1],
                 _density_spread(series))
            )
    print_table(["lambda(0) std", "Q_k (MB)", "final mean q", "final density std"], rows)

    # Tighter initial distribution => more concentrated final density.
    for q_size in (80.0, 100.0):
        wide = _density_spread(data[0.1][q_size])
        tight = _density_spread(data[0.05][q_size])
        assert tight < wide, (
            f"Q_k={q_size}: std 0.05 should concentrate the heat map "
            f"(got tight={tight:.2f} vs wide={wide:.2f})"
        )

    # Same Fig. 6 trend across Q_k under the tighter initial law.
    finals = [data[0.05][q]["mean_q"][-1] for q in (80.0, 100.0)]
    assert finals[1] > finals[0]
