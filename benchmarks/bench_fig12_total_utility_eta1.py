"""Fig. 12 — total utility and trading income vs eta1, five schemes.

Paper claims reproduced here:
* improving ``eta1`` reduces the total utility for every scheme;
* MFG-CP's total utility surpasses MFG, UDCS, MPC and RR throughout;
* MFG-CP's total trading income is lower than MFG's (MFG EDPs sell
  whole cloud downloads instead of sharing), yet MFG's staleness cost
  makes its utility lower.
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig12_total_utility_vs_eta1(benchmark):
    eta1_values = (1e-3, 2e-3, 3e-3, 4e-3)
    rows = run_once(
        benchmark,
        experiments.fig12_total_vs_eta1,
        eta1_values=eta1_values,
        n_edps=60,
    )

    print("\nFig. 12 — total utility / trading income vs eta1")
    print_table(
        ["eta1", "scheme", "total utility", "total trading income"],
        [(f"{e:g}", s, u, inc) for e, s, u, inc in rows],
    )

    by_eta = {}
    for eta1, scheme, utility, income in rows:
        by_eta.setdefault(eta1, {})[scheme] = (utility, income)

    for eta1, per_scheme in by_eta.items():
        # MFG-CP wins on utility at every eta1.
        best = max(per_scheme, key=lambda s: per_scheme[s][0])
        assert best == "MFG-CP", f"eta1={eta1}: winner was {best}"
        # ... with a trading income at or below MFG's.
        assert per_scheme["MFG-CP"][1] <= per_scheme["MFG"][1] * 1.05, (
            eta1,
            per_scheme["MFG-CP"][1],
            per_scheme["MFG"][1],
        )

    # Utility decreases in eta1 for the market-driven schemes.
    for scheme in ("MFG-CP", "MFG"):
        utils = [by_eta[e][scheme][0] for e in eta1_values]
        assert all(np.diff(utils) < 0), f"{scheme}: {utils}"
