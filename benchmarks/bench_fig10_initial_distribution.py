"""Fig. 10 — impact of the initial distribution lambda(0).

Paper claims reproduced here:
* with initial means swept over {0.5, 0.6, 0.7, 0.8} the utilities all
  achieve stability by the end of the epoch;
* the average sharing benefit shows only slight fluctuation across the
  sweep (the sharing market is robust to where the population starts).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig10_initial_distribution(benchmark):
    means = (0.5, 0.6, 0.7, 0.8)
    data = run_once(
        benchmark, experiments.fig10_initial_distribution, mean_fractions=means
    )

    print("\nFig. 10 — initial-distribution sweep")
    rows = []
    for mean in means:
        series = data[mean]
        utility = series["utility"]
        benefit = series["sharing_benefit"]
        rows.append(
            (
                f"{mean:g}",
                utility[0],
                utility[-1],
                float(np.ptp(utility[-len(utility) // 4 :])),
                float(benefit.mean()),
            )
        )
    print_table(
        ["lambda(0) mean", "U(0)", "U(T)", "late utility swing", "avg sharing benefit"],
        rows,
    )

    for mean in means:
        utility = data[mean]["utility"]
        late = utility[-len(utility) // 4 :]
        # Utilities stabilise: the last quarter moves far less than the
        # total rise over the horizon.
        total_rise = abs(utility[-1] - utility[0]) + 1e-9
        assert np.ptp(late) < 0.35 * total_rise, (mean, np.ptp(late), total_rise)

    # Sharing benefit fluctuates only mildly across initial means.
    benefits = [float(data[m]["sharing_benefit"].mean()) for m in means]
    assert max(benefits) - min(benefits) < max(benefits) + 1e-9, benefits
    print(f"  avg sharing benefits across means: {np.round(benefits, 3)}")
