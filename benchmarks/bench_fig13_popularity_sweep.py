"""Fig. 13 — utility and staleness cost vs content popularity.

Paper claims reproduced here:
* MFG-CP exhibits a higher utility than the baselines across
  popularity in [0.3, 0.7];
* UDCS shows the smallest variation in its caching decisions across
  popularity (its cost-only objective ignores the market — the paper's
  "minimal variations ... and ignores the staleness cost");
* a higher popularity brings a higher utility (more requests, more
  income).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig13_popularity_sweep(benchmark):
    pops = (0.3, 0.5, 0.7)
    rows = run_once(
        benchmark,
        experiments.fig13_popularity_sweep,
        popularity_values=pops,
        n_edps=60,
    )

    print("\nFig. 13 — popularity sweep: utility and staleness cost")
    print_table(
        ["popularity", "scheme", "utility", "staleness cost", "mean control"],
        [(f"{p:g}", s, u, c, m) for p, s, u, c, m in rows],
    )

    by_pop = {}
    for pop, scheme, utility, staleness, control in rows:
        by_pop.setdefault(pop, {})[scheme] = (utility, staleness, control)

    for pop, per_scheme in by_pop.items():
        winner = max(per_scheme, key=lambda s: per_scheme[s][0])
        assert winner == "MFG-CP", f"pop={pop}: winner was {winner}"

    # Higher popularity => higher utility for MFG-CP.
    utils = [by_pop[p]["MFG-CP"][0] for p in pops]
    assert utils[-1] > utils[0], utils

    # UDCS's decisions react least to the popularity-driven market
    # shift: its mean caching rate varies less than the market-aware
    # mean-field schemes'.
    def control_span(scheme: str) -> float:
        return float(np.ptp([by_pop[p][scheme][2] for p in pops]))

    assert control_span("UDCS") <= control_span("MFG-CP") + 1e-9, (
        control_span("UDCS"),
        control_span("MFG-CP"),
    )
    assert control_span("UDCS") <= control_span("MFG") + 1e-9, (
        control_span("UDCS"),
        control_span("MFG"),
    )
