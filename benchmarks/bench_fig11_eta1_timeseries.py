"""Fig. 11 — impact of the conversion parameter eta1 over time.

Paper claims reproduced here:
* the utility gradually increases over the epoch while the trading
  income decreases (EDPs finish caching and the market cools);
* a larger ``eta1`` yields a smaller utility and a lower trading
  income (competition depresses the price harder, Eq. (5)).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_fig11_eta1_timeseries(benchmark):
    eta1_values = (1e-3, 2e-3, 3e-3, 4e-3)
    data = run_once(
        benchmark, experiments.fig11_eta1_timeseries, eta1_values=eta1_values
    )

    times = data[eta1_values[0]]["time"]
    stride = max(1, len(times) // 6)
    print("\nFig. 11 — eta1 sweep: utility and trading income over time")
    print_table(
        ["t"] + [f"U(t) eta1={e:g}" for e in eta1_values],
        [
            (f"{times[i]:.2f}", *(data[e]["utility"][i] for e in eta1_values))
            for i in range(0, len(times), stride)
        ],
    )
    print_table(
        ["t"] + [f"income eta1={e:g}" for e in eta1_values],
        [
            (f"{times[i]:.2f}", *(data[e]["trading_income"][i] for e in eta1_values))
            for i in range(0, len(times), stride)
        ],
    )

    for eta1 in eta1_values:
        utility = data[eta1]["utility"]
        income = data[eta1]["trading_income"]
        # Utility rises over the horizon; income falls from its peak.
        assert utility[-1] > utility[0], f"eta1={eta1}: utility should rise"
        assert income[-1] < income.max(), f"eta1={eta1}: income should decay"

    # Larger eta1 => lower accumulated utility and income.
    accum_util = [float(np.mean(data[e]["utility"])) for e in eta1_values]
    accum_income = [float(np.mean(data[e]["trading_income"])) for e in eta1_values]
    assert all(np.diff(accum_util) < 0), accum_util
    assert all(np.diff(accum_income) < 0), accum_income
