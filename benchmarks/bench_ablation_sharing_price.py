"""Ablation — usage-based sharing price p_bar.

Design-choice study: the paper fixes a uniform sharing price; this
bench sweeps it to show (a) the volume of money moving through the
peer market grows with p_bar, and (b) MFG-CP's advantage over the
non-sharing MFG baseline persists across the sweep (the advantage is
mostly the avoided case-3 delay, not the transfer payments, which net
out inside a homogeneous population).
"""

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import print_table
from conftest import run_once


def test_ablation_sharing_price(benchmark):
    prices = (0.0, 0.15, 0.3, 0.6)
    rows = run_once(
        benchmark, experiments.ablation_sharing_price, sharing_prices=prices,
        n_edps=60,
    )

    print("\nAblation — sharing price p_bar")
    print_table(
        ["p_bar", "MFG-CP utility", "MFG utility", "MFG-CP sharing benefit"],
        rows,
    )

    benefits = [r[3] for r in rows]
    # More expensive sharing moves more money through the peer market.
    assert benefits[-1] > benefits[0], benefits
    # At p_bar = 0 no money moves at all.
    assert benefits[0] == 0.0

    # MFG-CP keeps its edge over the non-sharing baseline throughout.
    for p_bar, mfgcp, mfg, _ in rows:
        assert mfgcp > mfg, f"p_bar={p_bar}: MFG-CP {mfgcp:.1f} vs MFG {mfg:.1f}"
